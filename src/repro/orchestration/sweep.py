"""Declarative sweep grids: axes in, runnable cells out.

A :class:`SweepSpec` describes a whole experiment campaign as a base
:class:`~repro.config.ExperimentConfig` plus axes — mechanisms, scenarios,
seeds, and arbitrary parameter axes.  :meth:`SweepSpec.expand` takes the
cartesian product and resolves every point into a :class:`CellSpec`: a
fully materialised config plus a stable human-readable ``cell_id``.  Each
cell's randomness derives from its resolved ``config.seed`` through
:class:`~repro.rng.RngTree` namespaces (scenario builders and the worker's
runner stream), so cells sharing a seed axis value face an identical
environment and adding axes never perturbs other cells.

Specs round-trip through JSON (``sweep.json`` inside a campaign directory),
which is what makes campaigns resumable after a crash: the resume path
reloads the spec, re-expands the identical grid, and skips every cell the
result store already holds.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.config import ExperimentConfig
from repro.mechanisms.registry import mechanism_names

__all__ = ["SCENARIO_NAMES", "CellSpec", "SweepSpec"]

# Scenario axis values understood by the worker: which simulation substrate
# a cell runs on.  "mechanism" is economics-only (fast); "fl" attaches the
# federated-learning substrate; "energy" battery-gates the population.
SCENARIO_NAMES = ("mechanism", "energy", "fl", "fl-energy")

_CONFIG_FIELDS = frozenset(ExperimentConfig.__dataclass_fields__)


def _slug(value: Any) -> str:
    """A filesystem-safe token for one axis value."""
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", str(value))


@dataclass(frozen=True)
class CellSpec:
    """One runnable point of a sweep grid.

    ``config`` is fully resolved (mechanism name and scenario flags folded
    into it), so a worker needs nothing but this object.  The environment
    seed is ``config.seed`` — the seed axis value — so cells sharing it
    face an identical population regardless of mechanism (the pairing
    property multi-seed comparisons rely on); all per-cell streams are
    :class:`~repro.rng.RngTree` children of that seed.
    """

    cell_id: str
    mechanism: str
    scenario: str
    seed: int
    params: dict[str, Any]
    config: ExperimentConfig
    compute_regret: bool = False

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON- and pickle-friendly)."""
        return {
            "cell_id": self.cell_id,
            "mechanism": self.mechanism,
            "scenario": self.scenario,
            "seed": self.seed,
            "params": dict(self.params),
            "config": self.config.to_dict(),
            "compute_regret": self.compute_regret,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CellSpec":
        """Rebuild a cell from :meth:`to_dict` output."""
        return cls(
            cell_id=str(data["cell_id"]),
            mechanism=str(data["mechanism"]),
            scenario=str(data["scenario"]),
            seed=int(data["seed"]),
            params=dict(data["params"]),
            config=ExperimentConfig(**data["config"]),
            compute_regret=bool(data.get("compute_regret", False)),
        )


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid of (mechanism × scenario × seed × params) cells.

    Parameters
    ----------
    base:
        Config every cell starts from; axis values override its fields.
    mechanisms:
        Registry names (see :func:`repro.mechanisms.mechanism_names`).
    scenarios:
        Subset of :data:`SCENARIO_NAMES`.
    seeds:
        Environment seeds; one cell per seed per other-axis combination.
    params:
        Extra axes: field name → tuple of values.  Names matching an
        :class:`ExperimentConfig` field override that field; anything else
        lands in ``config.extras`` (e.g. ``price`` for fixed-price).
    compute_regret:
        When True every cell also solves the hindsight-optimal plan and
        stores regret (slower; off by default).
    name:
        Campaign label used in reports.
    """

    base: ExperimentConfig = field(default_factory=ExperimentConfig)
    mechanisms: tuple[str, ...] = ("lt-vcg",)
    scenarios: tuple[str, ...] = ("mechanism",)
    seeds: tuple[int, ...] = (0,)
    params: dict[str, tuple[Any, ...]] = field(default_factory=dict)
    compute_regret: bool = False
    name: str = "campaign"

    def __post_init__(self) -> None:
        if not self.mechanisms:
            raise ValueError("mechanisms axis must be non-empty")
        if not self.scenarios:
            raise ValueError("scenarios axis must be non-empty")
        if not self.seeds:
            raise ValueError("seeds axis must be non-empty")
        known = mechanism_names()
        for mechanism in self.mechanisms:
            if mechanism not in known:
                raise ValueError(
                    f"unknown mechanism {mechanism!r}; choose from {', '.join(known)}"
                )
        for scenario in self.scenarios:
            if scenario not in SCENARIO_NAMES:
                raise ValueError(
                    f"unknown scenario {scenario!r}; "
                    f"choose from {', '.join(SCENARIO_NAMES)}"
                )
        reserved = ("mechanism", "seed", "fl", "energy_constrained", "extras", "name")
        for axis, values in self.params.items():
            if axis in reserved:
                # These are owned by the dedicated axes / scenario flags; a
                # param override would desynchronise cell labels from what
                # the cell actually simulates.
                raise ValueError(
                    f"parameter axis {axis!r} is reserved — use the "
                    f"mechanisms/scenarios/seeds axes instead"
                )
            if not values:
                raise ValueError(f"parameter axis {axis!r} must be non-empty")

    @property
    def num_cells(self) -> int:
        """Grid size without expanding it."""
        count = len(self.mechanisms) * len(self.scenarios) * len(self.seeds)
        for values in self.params.values():
            count *= len(values)
        return count

    def _resolve_config(
        self, mechanism: str, scenario: str, seed: int, params: dict[str, Any]
    ) -> ExperimentConfig:
        extras = dict(self.base.extras)
        extras["mechanism"] = mechanism
        extras["fl"] = scenario in ("fl", "fl-energy")
        overrides: dict[str, Any] = {
            "seed": seed,
            "energy_constrained": scenario in ("energy", "fl-energy"),
        }
        for key, value in params.items():
            if key in _CONFIG_FIELDS:
                overrides[key] = value
            else:
                extras[key] = value
        overrides["extras"] = extras
        return self.base.with_overrides(**overrides)

    def expand(self) -> list[CellSpec]:
        """Materialise every grid point into a :class:`CellSpec`.

        Cell ids are stable across processes and spec re-loads, and every
        cell's randomness is a pure function of its resolved config —
        reordering axes or resuming a campaign never changes any cell's
        streams.
        """
        param_axes = sorted(self.params)
        param_grids = [self.params[axis] for axis in param_axes]
        cells = []
        for mechanism, scenario, seed in itertools.product(
            self.mechanisms, self.scenarios, self.seeds
        ):
            for combo in itertools.product(*param_grids):
                params = dict(zip(param_axes, combo))
                cell_id = f"{_slug(mechanism)}__{_slug(scenario)}__s{int(seed)}"
                if params:
                    cell_id += "".join(
                        f"__{_slug(axis)}-{_slug(value)}"
                        for axis, value in params.items()
                    )
                cells.append(
                    CellSpec(
                        cell_id=cell_id,
                        mechanism=mechanism,
                        scenario=scenario,
                        seed=int(seed),
                        params=params,
                        config=self._resolve_config(mechanism, scenario, seed, params),
                        compute_regret=self.compute_regret,
                    )
                )
        ids = [cell.cell_id for cell in cells]
        if len(ids) != len(set(ids)):
            raise ValueError("sweep axes produced duplicate cell ids")
        return cells

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-ready)."""
        return {
            "base": self.base.to_dict(),
            "mechanisms": list(self.mechanisms),
            "scenarios": list(self.scenarios),
            "seeds": list(self.seeds),
            "params": {axis: list(values) for axis, values in self.params.items()},
            "compute_regret": self.compute_regret,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SweepSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(
            base=ExperimentConfig(**data["base"]),
            mechanisms=tuple(data["mechanisms"]),
            scenarios=tuple(data["scenarios"]),
            seeds=tuple(int(seed) for seed in data["seeds"]),
            params={
                axis: tuple(values) for axis, values in data.get("params", {}).items()
            },
            compute_regret=bool(data.get("compute_regret", False)),
            name=str(data.get("name", "campaign")),
        )

    def save(self, path: str | Path) -> None:
        """Archive this spec as JSON (``sweep.json`` of a campaign dir)."""
        from repro.utils.serialization import save_json

        save_json(path, self.to_dict())

    @classmethod
    def load(cls, path: str | Path) -> "SweepSpec":
        """Load a spec archived with :meth:`save`."""
        from repro.utils.serialization import load_json

        return cls.from_dict(load_json(path))
