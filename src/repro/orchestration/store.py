"""Durable campaign results: SQLite index + JSONL artifact trail.

A campaign directory is self-contained::

    campaign/
      sweep.json        — the SweepSpec that generated the grid
      campaign.db       — SQLite: one row per cell (metrics, status, timing)
      results.jsonl     — append-only mirror of every recorded outcome
      cells/<cell_id>/  — per-cell artifacts (config.json, event_log.json)

The SQLite table is the queryable index the aggregation layer reads and the
checkpoint the executor resumes from (:meth:`ResultStore.completed_ids`);
the JSONL mirror is the greppable, machine-independent audit trail.  Only
the campaign's parent process writes — workers return their rows — so no
cross-process locking is needed.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.utils.serialization import to_jsonable

__all__ = ["CellResult", "ResultStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS cells (
    cell_id TEXT PRIMARY KEY,
    mechanism TEXT NOT NULL,
    scenario TEXT NOT NULL,
    seed INTEGER NOT NULL,
    params TEXT NOT NULL,
    status TEXT NOT NULL,
    metrics TEXT,
    error TEXT,
    duration_seconds REAL NOT NULL DEFAULT 0.0,
    attempts INTEGER NOT NULL DEFAULT 1,
    event_log_path TEXT
);
CREATE INDEX IF NOT EXISTS idx_cells_axes ON cells (mechanism, scenario, seed);
CREATE INDEX IF NOT EXISTS idx_cells_status ON cells (status);
"""


@dataclass(frozen=True)
class CellResult:
    """One recorded cell outcome, as read back from the store."""

    cell_id: str
    mechanism: str
    scenario: str
    seed: int
    params: dict[str, Any]
    status: str
    metrics: dict[str, Any] = field(default_factory=dict)
    error: str | None = None
    duration_seconds: float = 0.0
    attempts: int = 1
    event_log_path: str | None = None

    @property
    def completed(self) -> bool:
        """Whether this cell finished successfully."""
        return self.status == "completed"


class ResultStore:
    """Per-campaign persistent result index (context manager).

    Parameters
    ----------
    campaign_dir:
        Directory holding ``campaign.db`` and ``results.jsonl`` (created on
        first use).
    """

    DB_NAME = "campaign.db"
    JSONL_NAME = "results.jsonl"

    def __init__(self, campaign_dir: str | Path) -> None:
        self.campaign_dir = Path(campaign_dir)
        self.campaign_dir.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.campaign_dir / self.DB_NAME)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- writes ------------------------------------------------------------

    def _record(
        self,
        cell: "Any",
        *,
        status: str,
        metrics: dict[str, Any] | None,
        error: str | None,
        duration_seconds: float,
        event_log_path: str | None,
    ) -> None:
        row = self._conn.execute(
            "SELECT attempts FROM cells WHERE cell_id = ?", (cell.cell_id,)
        ).fetchone()
        attempts = (int(row[0]) + 1) if row else 1
        metrics_json = (
            json.dumps(to_jsonable(metrics), sort_keys=True)
            if metrics is not None
            else None
        )
        self._conn.execute(
            "INSERT OR REPLACE INTO cells "
            "(cell_id, mechanism, scenario, seed, params, status, metrics, error,"
            " duration_seconds, attempts, event_log_path) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                cell.cell_id,
                cell.mechanism,
                cell.scenario,
                int(cell.seed),
                json.dumps(to_jsonable(cell.params), sort_keys=True),
                status,
                metrics_json,
                error,
                float(duration_seconds),
                attempts,
                event_log_path,
            ),
        )
        self._conn.commit()
        entry = {
            "cell_id": cell.cell_id,
            "mechanism": cell.mechanism,
            "scenario": cell.scenario,
            "seed": int(cell.seed),
            "params": to_jsonable(cell.params),
            "status": status,
            "metrics": to_jsonable(metrics) if metrics is not None else None,
            "error": error,
            "duration_seconds": float(duration_seconds),
            "attempt": attempts,
            "event_log_path": event_log_path,
        }
        with open(self.campaign_dir / self.JSONL_NAME, "a") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")

    def record_success(
        self,
        cell: "Any",
        metrics: dict[str, Any],
        *,
        duration_seconds: float = 0.0,
        event_log_path: str | None = None,
    ) -> None:
        """Record a completed cell (idempotent upsert; bumps ``attempts``)."""
        self._record(
            cell,
            status="completed",
            metrics=metrics,
            error=None,
            duration_seconds=duration_seconds,
            event_log_path=event_log_path,
        )

    def record_failure(
        self, cell: "Any", error: str, *, duration_seconds: float = 0.0
    ) -> None:
        """Record a crashed cell with its traceback; the campaign goes on."""
        self._record(
            cell,
            status="failed",
            metrics=None,
            error=error,
            duration_seconds=duration_seconds,
            event_log_path=None,
        )

    # -- reads -------------------------------------------------------------

    def completed_ids(self) -> set[str]:
        """Cell ids already finished — the resume checkpoint."""
        rows = self._conn.execute(
            "SELECT cell_id FROM cells WHERE status = 'completed'"
        ).fetchall()
        return {row[0] for row in rows}

    def results(self, *, status: str | None = None) -> list[CellResult]:
        """All recorded cells (optionally filtered), ordered by cell id."""
        query = (
            "SELECT cell_id, mechanism, scenario, seed, params, status, metrics,"
            " error, duration_seconds, attempts, event_log_path FROM cells"
        )
        args: tuple[Any, ...] = ()
        if status is not None:
            query += " WHERE status = ?"
            args = (status,)
        query += " ORDER BY cell_id"

        def resolve(log_path: str | None) -> str | None:
            # Relative artifact paths are campaign-dir-relative (the
            # executor stores them that way so campaigns stay movable).
            if log_path is None or Path(log_path).is_absolute():
                return log_path
            return str(self.campaign_dir / log_path)

        return [
            CellResult(
                cell_id=row[0],
                mechanism=row[1],
                scenario=row[2],
                seed=int(row[3]),
                params=json.loads(row[4]),
                status=row[5],
                metrics=json.loads(row[6]) if row[6] else {},
                error=row[7],
                duration_seconds=float(row[8]),
                attempts=int(row[9]),
                event_log_path=resolve(row[10]),
            )
            for row in self._conn.execute(query, args).fetchall()
        ]

    def get(self, cell_id: str) -> CellResult | None:
        """One cell's recorded outcome, or None if never recorded."""
        for result in self.results():
            if result.cell_id == cell_id:
                return result
        return None

    def counts(self) -> dict[str, int]:
        """Recorded cells per status."""
        rows = self._conn.execute(
            "SELECT status, COUNT(*) FROM cells GROUP BY status"
        ).fetchall()
        return {row[0]: int(row[1]) for row in rows}
