"""Durable campaign results behind one pluggable ``StoreBackend`` seam.

A campaign directory is self-contained::

    campaign/
      sweep.json        — the SweepSpec that generated the grid
      campaign.db       — SQLite backend: one row per cell (the default)
      results.jsonl     — append-only mirror of every recorded outcome
      results.npz       — columnar backend (chosen with ``store="columnar"``)
      events.jsonl      — streaming progress trail (repro.orchestration.events)
      cells/<cell_id>/  — per-cell artifacts (config.json, event_log.json)

:class:`ResultStore` is the façade every caller sees: it speaks
record/completed_ids/results/counts and delegates to a
:class:`StoreBackend`.  Two backends ship:

* :class:`SqliteJsonlBackend` (default) — a queryable SQLite index the
  aggregation layer reads plus a greppable JSONL audit trail; the right
  tool up to ~100k cells.
* :class:`~repro.orchestration.columnar.ColumnarStoreBackend` — one
  compressed NPZ of parallel columns, for million-cell campaigns where
  per-row SQL and a JSONL mirror are pure overhead.

On resume the backend is *sniffed* from the files already in the
directory (:func:`detect_store_backend`), so ``repro.cli resume`` and
``report`` never need to be told how a campaign was stored.  Only one
process writes the store — queue workers return their rows through the
work queue's ack files — so no cross-process locking is needed.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.utils.serialization import to_jsonable

__all__ = [
    "CellResult",
    "StoreBackend",
    "SqliteJsonlBackend",
    "ResultStore",
    "STORE_BACKENDS",
    "detect_store_backend",
]

STORE_BACKENDS = ("sqlite", "columnar")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS cells (
    cell_id TEXT PRIMARY KEY,
    mechanism TEXT NOT NULL,
    scenario TEXT NOT NULL,
    seed INTEGER NOT NULL,
    params TEXT NOT NULL,
    status TEXT NOT NULL,
    metrics TEXT,
    error TEXT,
    duration_seconds REAL NOT NULL DEFAULT 0.0,
    attempts INTEGER NOT NULL DEFAULT 1,
    event_log_path TEXT,
    exception_type TEXT
);
CREATE INDEX IF NOT EXISTS idx_cells_axes ON cells (mechanism, scenario, seed);
CREATE INDEX IF NOT EXISTS idx_cells_status ON cells (status);
"""


@dataclass(frozen=True)
class CellResult:
    """One recorded cell outcome, as read back from the store."""

    cell_id: str
    mechanism: str
    scenario: str
    seed: int
    params: dict[str, Any]
    status: str
    metrics: dict[str, Any] = field(default_factory=dict)
    error: str | None = None
    duration_seconds: float = 0.0
    attempts: int = 1
    event_log_path: str | None = None
    #: Exception class name of the last failure (``None`` for successes
    #: and rows written before this column existed) — the classification
    #: the report's failure table groups on.
    exception_type: str | None = None

    @property
    def completed(self) -> bool:
        """Whether this cell finished successfully."""
        return self.status == "completed"


def resolve_event_log_path(campaign_dir: Path, log_path: str | None) -> str | None:
    """Make a stored artifact path absolute.

    Relative paths are campaign-dir-relative (the executor stores them that
    way so campaigns stay movable across cwds and machines).
    """
    if log_path is None or Path(log_path).is_absolute():
        return log_path
    return str(campaign_dir / log_path)


class StoreBackend:
    """Storage seam of a campaign's per-cell results.

    One backend instance serves one campaign directory.  The contract is
    deliberately small — exactly what the executor and the reporting layer
    consume:

    * :meth:`record` — idempotent upsert of one cell outcome
      (re-recording the same cell accumulates its attempt counter;
      ``attempts`` is the *delta* this record contributes, so a cell the
      executor retried twice before recording adds all three attempts in
      one upsert);
    * :meth:`completed_ids` — the resume checkpoint;
    * :meth:`results` — every recorded cell, ordered by cell id, with
      artifact paths resolved to absolute form;
    * :meth:`counts` — recorded cells per status;
    * :meth:`close` — release file handles (idempotent).

    Implementations must make each :meth:`record` durable before returning
    — kill-at-any-point resume is part of the contract, and the
    equivalence suite kills campaigns mid-flight on every backend.
    """

    name: str = "abstract"

    def record(
        self,
        cell: Any,
        *,
        status: str,
        metrics: dict[str, Any] | None,
        error: str | None,
        duration_seconds: float,
        event_log_path: str | None,
        attempts: int = 1,
        exception_type: str | None = None,
    ) -> None:
        raise NotImplementedError

    def completed_ids(self) -> set[str]:
        raise NotImplementedError

    def results(self, *, status: str | None = None) -> list[CellResult]:
        raise NotImplementedError

    def counts(self) -> dict[str, int]:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class SqliteJsonlBackend(StoreBackend):
    """SQLite index plus append-only JSONL mirror (the default backend).

    The SQLite table is the queryable index the aggregation layer reads
    and the checkpoint the executor resumes from; the JSONL mirror is the
    greppable, machine-independent audit trail.
    """

    name = "sqlite"
    DB_NAME = "campaign.db"
    JSONL_NAME = "results.jsonl"

    def __init__(self, campaign_dir: str | Path) -> None:
        self.campaign_dir = Path(campaign_dir)
        self.campaign_dir.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.campaign_dir / self.DB_NAME)
        self._conn.executescript(_SCHEMA)
        # Schema migration for campaigns written before exception_type
        # existed (CREATE IF NOT EXISTS leaves the old table untouched).
        columns = {
            row[1]
            for row in self._conn.execute("PRAGMA table_info(cells)").fetchall()
        }
        if "exception_type" not in columns:
            self._conn.execute("ALTER TABLE cells ADD COLUMN exception_type TEXT")
        self._conn.commit()

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def record(
        self,
        cell: Any,
        *,
        status: str,
        metrics: dict[str, Any] | None,
        error: str | None,
        duration_seconds: float,
        event_log_path: str | None,
        attempts: int = 1,
        exception_type: str | None = None,
    ) -> None:
        row = self._conn.execute(
            "SELECT attempts FROM cells WHERE cell_id = ?", (cell.cell_id,)
        ).fetchone()
        total_attempts = (int(row[0]) if row else 0) + max(1, int(attempts))
        metrics_json = (
            json.dumps(to_jsonable(metrics), sort_keys=True)
            if metrics is not None
            else None
        )
        self._conn.execute(
            "INSERT OR REPLACE INTO cells "
            "(cell_id, mechanism, scenario, seed, params, status, metrics, error,"
            " duration_seconds, attempts, event_log_path, exception_type) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                cell.cell_id,
                cell.mechanism,
                cell.scenario,
                int(cell.seed),
                json.dumps(to_jsonable(cell.params), sort_keys=True),
                status,
                metrics_json,
                error,
                float(duration_seconds),
                total_attempts,
                event_log_path,
                exception_type,
            ),
        )
        self._conn.commit()
        entry = {
            "cell_id": cell.cell_id,
            "mechanism": cell.mechanism,
            "scenario": cell.scenario,
            "seed": int(cell.seed),
            "params": to_jsonable(cell.params),
            "status": status,
            "metrics": to_jsonable(metrics) if metrics is not None else None,
            "error": error,
            "duration_seconds": float(duration_seconds),
            "attempt": total_attempts,
            "event_log_path": event_log_path,
            "exception_type": exception_type,
        }
        with open(self.campaign_dir / self.JSONL_NAME, "a") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")

    def completed_ids(self) -> set[str]:
        rows = self._conn.execute(
            "SELECT cell_id FROM cells WHERE status = 'completed'"
        ).fetchall()
        return {row[0] for row in rows}

    def results(self, *, status: str | None = None) -> list[CellResult]:
        query = (
            "SELECT cell_id, mechanism, scenario, seed, params, status, metrics,"
            " error, duration_seconds, attempts, event_log_path, exception_type"
            " FROM cells"
        )
        args: tuple[Any, ...] = ()
        if status is not None:
            query += " WHERE status = ?"
            args = (status,)
        query += " ORDER BY cell_id"
        return [
            CellResult(
                cell_id=row[0],
                mechanism=row[1],
                scenario=row[2],
                seed=int(row[3]),
                params=json.loads(row[4]),
                status=row[5],
                metrics=json.loads(row[6]) if row[6] else {},
                error=row[7],
                duration_seconds=float(row[8]),
                attempts=int(row[9]),
                event_log_path=resolve_event_log_path(self.campaign_dir, row[10]),
                exception_type=row[11],
            )
            for row in self._conn.execute(query, args).fetchall()
        ]

    def counts(self) -> dict[str, int]:
        rows = self._conn.execute(
            "SELECT status, COUNT(*) FROM cells GROUP BY status"
        ).fetchall()
        return {row[0]: int(row[1]) for row in rows}


def detect_store_backend(campaign_dir: str | Path) -> str | None:
    """Which store backend's files live in a campaign directory, if any.

    This is how resume/report/watch pick the right backend without being
    told: a ``campaign.db`` marks SQLite, a ``results.npz`` marks the
    columnar store.  ``None`` means no store has recorded anything yet.
    """
    from repro.orchestration.columnar import ColumnarStoreBackend

    campaign_dir = Path(campaign_dir)
    if (campaign_dir / SqliteJsonlBackend.DB_NAME).exists():
        return "sqlite"
    if (campaign_dir / ColumnarStoreBackend.NPZ_NAME).exists():
        return "columnar"
    if (campaign_dir / ColumnarStoreBackend.BAK_NAME).exists():
        # The snapshot was torn/lost but its predecessor survives: still
        # a columnar campaign, and the backend will recover from the .bak.
        return "columnar"
    return None


def build_store_backend(campaign_dir: str | Path, name: str) -> StoreBackend:
    """Construct a named backend over a campaign directory."""
    if name == "sqlite":
        return SqliteJsonlBackend(campaign_dir)
    if name == "columnar":
        from repro.orchestration.columnar import ColumnarStoreBackend

        return ColumnarStoreBackend(campaign_dir)
    raise ValueError(
        f"unknown store backend {name!r}; choose from {', '.join(STORE_BACKENDS)}"
    )


class ResultStore:
    """Per-campaign persistent result index (context manager).

    Parameters
    ----------
    campaign_dir:
        Directory holding the store files (created on first use).
    backend:
        ``"sqlite"`` (default for new campaigns), ``"columnar"``, a
        ready-made :class:`StoreBackend` instance, or ``None`` to sniff
        the backend from the files already present
        (:func:`detect_store_backend`) — the resume path's behaviour, so
        a campaign is always reopened with the store that wrote it.
    """

    # Kept for callers that check for a campaign's store files directly.
    DB_NAME = SqliteJsonlBackend.DB_NAME
    JSONL_NAME = SqliteJsonlBackend.JSONL_NAME

    def __init__(
        self,
        campaign_dir: str | Path,
        *,
        backend: str | StoreBackend | None = None,
    ) -> None:
        self.campaign_dir = Path(campaign_dir)
        self.campaign_dir.mkdir(parents=True, exist_ok=True)
        if isinstance(backend, StoreBackend):
            self._backend = backend
        else:
            existing = detect_store_backend(self.campaign_dir)
            if backend is None:
                backend = existing or "sqlite"
            elif existing is not None and existing != backend:
                # Building a second, empty store next to the existing one
                # would fork the campaign's results: writes land in the
                # new store while resume/report keep reading the old.
                raise ValueError(
                    f"{self.campaign_dir} already holds a {existing!r} "
                    f"result store; it cannot be reopened as {backend!r} — "
                    f"use a new directory"
                )
            self._backend = build_store_backend(self.campaign_dir, backend)

    @property
    def backend(self) -> StoreBackend:
        """The live storage backend (exposes its ``name``)."""
        return self._backend

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close the underlying backend (idempotent)."""
        self._backend.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- writes ------------------------------------------------------------

    def record_success(
        self,
        cell: Any,
        metrics: dict[str, Any],
        *,
        duration_seconds: float = 0.0,
        event_log_path: str | None = None,
        attempts: int = 1,
    ) -> None:
        """Record a completed cell (idempotent upsert; accumulates ``attempts``)."""
        self._backend.record(
            cell,
            status="completed",
            metrics=metrics,
            error=None,
            duration_seconds=duration_seconds,
            event_log_path=event_log_path,
            attempts=attempts,
        )

    def record_failure(
        self,
        cell: Any,
        error: str,
        *,
        duration_seconds: float = 0.0,
        attempts: int = 1,
        exception_type: str | None = None,
    ) -> None:
        """Record a crashed cell with its traceback; the campaign goes on.

        ``attempts`` is how many attempts this failure consumed (the
        executor's in-flight retries land as one record); the exception
        class name makes failure classes greppable from the store.
        """
        self._backend.record(
            cell,
            status="failed",
            metrics=None,
            error=error,
            duration_seconds=duration_seconds,
            event_log_path=None,
            attempts=attempts,
            exception_type=exception_type,
        )

    # -- reads -------------------------------------------------------------

    def completed_ids(self) -> set[str]:
        """Cell ids already finished — the resume checkpoint."""
        return self._backend.completed_ids()

    def results(self, *, status: str | None = None) -> list[CellResult]:
        """All recorded cells (optionally filtered), ordered by cell id."""
        return self._backend.results(status=status)

    def get(self, cell_id: str) -> CellResult | None:
        """One cell's recorded outcome, or None if never recorded."""
        for result in self.results():
            if result.cell_id == cell_id:
                return result
        return None

    def counts(self) -> dict[str, int]:
        """Recorded cells per status."""
        return self._backend.counts()
