"""Per-cell execution: one grid point in, one metrics row out.

Everything here is a module-level function so a cell can be shipped to a
:class:`concurrent.futures.ProcessPoolExecutor` worker as a plain dict
(:func:`run_cell` is the pool entry point).  A cell run

1. rebuilds its :class:`~repro.orchestration.sweep.CellSpec`,
2. builds the scenario named by the spec and the mechanism from the
   registry, seeding the runner from an :class:`~repro.rng.RngTree`
   namespace of the cell's resolved ``config.seed``,
3. simulates, computes the summary metrics the paper's tables need
   (welfare, payments, budget compliance, fairness, accuracy, optionally
   regret, plus wall-clock throughput), and
4. archives the resolved config and full event log under the cell's
   artifact directory.

Failures never propagate: a crashed cell returns a ``failed`` payload
carrying its traceback so the campaign records it and moves on.
"""

from __future__ import annotations

import json
import time
import traceback
from pathlib import Path
from typing import Any

from repro import telemetry
from repro.faults import fault_point
from repro.analysis.budget import budget_report
from repro.analysis.fairness import jain_index, participation_rates
from repro.analysis.welfare import welfare_summary
from repro.config import ExperimentConfig
from repro.mechanisms.registry import build_mechanism
from repro.orchestration.events import EventWriter, metric_snapshot
from repro.rng import RngTree
from repro.simulation.events import EventLog
from repro.simulation.replay import save_event_log
from repro.simulation.runner import SimulationRunner
from repro.simulation.scenarios import (
    Scenario,
    build_fl_scenario,
    build_mechanism_scenario,
)

__all__ = ["build_scenario", "summarize_log", "execute_config", "run_cell"]

EVENT_LOG_NAME = "event_log.json"
TELEMETRY_SNAPSHOT_NAME = "telemetry.json"


def build_scenario(config: ExperimentConfig) -> Scenario:
    """Build the simulation substrate a config asks for.

    ``config.extras['fl']`` selects the FL substrate; the
    ``energy_constrained`` field battery-gates the population.  Both flags
    are folded in by :meth:`~repro.orchestration.sweep.SweepSpec.expand`,
    so CLI single runs and sweep cells resolve scenarios identically.  The
    ``staleness_boost`` extra passes through to the FL scenario builder
    (the coverage signal the E10 non-IID ablation sweeps).
    """
    if bool(config.extras.get("fl", False)):
        return build_fl_scenario(
            config.num_clients,
            seed=config.seed,
            num_samples=config.num_samples,
            dirichlet_alpha=config.dirichlet_alpha,
            model=config.model,
            local_steps=config.local_steps,
            batch_size=config.batch_size,
            learning_rate=config.learning_rate,
            eval_every=config.eval_every,
            energy_constrained=config.energy_constrained,
            staleness_boost=float(config.extras.get("staleness_boost", 0.0)),
        )
    return build_mechanism_scenario(
        config.num_clients,
        seed=config.seed,
        energy_constrained=config.energy_constrained,
    )


def summarize_log(
    log: EventLog, config: ExperimentConfig, *, compute_regret: bool = False
) -> dict[str, Any]:
    """The per-cell metrics row stored by the result store."""
    summary = welfare_summary(log)
    budget = budget_report(log, config.budget_per_round)
    rates = list(participation_rates(log, list(range(config.num_clients))).values())
    metrics: dict[str, Any] = {
        "mechanism": str(config.extras.get("mechanism", "lt-vcg")),
        "rounds": len(log),
        "total_welfare": summary.total_welfare,
        "average_welfare": summary.average_welfare,
        "total_payment": summary.total_payment,
        "average_payment": summary.average_payment,
        "spend_over_budget": budget.final_overspend_ratio,
        "budget_compliant": budget.compliant,
        "violating_prefix_fraction": budget.violating_prefix_fraction,
        "winners_per_round": summary.winners_per_round,
        "jain_index": jain_index(rates),
    }
    xs, accuracies = log.accuracy_series()
    if accuracies:
        metrics["final_accuracy"] = accuracies[-1]
        metrics["best_accuracy"] = max(accuracies)
    if compute_regret:
        from repro.analysis.regret import regret_against_plan

        point = regret_against_plan(
            log,
            budget_per_round=config.budget_per_round,
            max_winners=config.max_winners,
        )
        metrics["regret"] = point.regret
        metrics["per_round_regret"] = point.per_round_regret
    return metrics


def _round_batch_for(config: ExperimentConfig, mechanism, scenario) -> int | None:
    """How many rounds to feed the mechanism per batch (None = sequential).

    A whole cell's rounds go through one
    :meth:`~repro.core.mechanism.Mechanism.run_rounds` batch when that is
    provably equivalent to the sequential loop: the mechanism is stateless
    (vectorised stacked solves, bit-identical by contract) and the scenario
    is history-free (bids/values never react to outcomes).  The
    ``round_batch`` extra overrides the choice: ``0`` forces sequential, a
    positive integer forces that window size.
    """
    override = config.extras.get("round_batch")
    if override is not None:
        size = int(override)
        return size if size > 1 else None
    if mechanism.stateless and scenario.fl is None and bool(
        scenario.metadata.get("history_free")
    ):
        # Window cap bounds peak memory: a batch materialises
        # O(window x num_clients) arrays plus every prepared round, and the
        # runner flushes window by window anyway.
        return min(config.num_rounds, 1024)
    return None


def execute_config(
    config: ExperimentConfig,
    out_dir: Path | None,
    *,
    compute_regret: bool = False,
) -> dict[str, Any]:
    """Run one resolved config end to end; returns its metrics row.

    The runner's own randomness (presence dropouts) is seeded from an
    :class:`~repro.rng.RngTree` namespace of ``config.seed``, independent of
    the scenario's streams, so runs are reproducible from the config alone.
    When ``out_dir`` is given, the resolved config and the full event log
    are archived there.  Cells pairing a stateless mechanism with a
    history-free scenario run batched (see :func:`_round_batch_for`).
    """
    if telemetry.enabled():
        # Per-run capture: aggregates always describe exactly this config.
        telemetry.reset()
    mechanism = build_mechanism(config)
    scenario = build_scenario(config)
    runner = SimulationRunner(
        mechanism,
        scenario.clients,
        scenario.valuation,
        presence=scenario.presence,
        network=scenario.network,
        fl=scenario.fl,
        seed=RngTree(config.seed).child_seed("orchestration/runner"),
    )
    batch_rounds = _round_batch_for(config, mechanism, scenario)
    started = time.perf_counter()
    log = runner.run(config.num_rounds, batch_rounds=batch_rounds)
    elapsed = time.perf_counter() - started

    metrics = summarize_log(log, config, compute_regret=compute_regret)
    metrics["sim_seconds"] = elapsed
    metrics["rounds_per_second"] = len(log) / elapsed if elapsed > 0 else float("inf")

    if out_dir is not None:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        config.save(out_dir / "config.json")
        save_event_log(out_dir / EVENT_LOG_NAME, log)
        if telemetry.enabled():
            (out_dir / TELEMETRY_SNAPSHOT_NAME).write_text(
                json.dumps(telemetry.snapshot(), sort_keys=True)
            )
    return metrics


def run_cell(payload: dict[str, Any]) -> dict[str, Any]:
    """Worker entry point (every execution backend): run one cell, never raise.

    ``payload`` is ``{"cell": CellSpec.to_dict(), "cell_dir": str | None,
    "events_path": str | None, "telemetry": str | None,
    "telemetry_path": str | None}`` plus, on retried cells, ``attempt``
    (1-based) and ``not_before`` (a unix-time backoff deadline honoured
    before execution).  Returns ``{"cell_id", "status", "metrics" |
    "error", "duration_seconds", "attempt", "event_log_path"}`` — a
    crashed cell reports ``status="failed"`` with its formatted
    traceback, its exception class name, and a ``transient`` retryability
    classification instead of killing the campaign.

    When ``events_path`` is present the run is narrated onto the campaign
    event trail: ``cell_started`` at entry, then ``cell_finished`` (with
    the scalar metric snapshot) or ``cell_failed`` — this is what ``repro
    .cli watch`` dashboards and the successive-halving scheduler consume.

    The ``telemetry`` key carries the coordinator's instrumentation level
    into this worker (process pools and remote ``repro.cli work`` drainers
    alike; it overrides the drainer's own env).  With spans enabled, the
    cell's telemetry snapshot is appended to the campaign's
    ``telemetry.jsonl`` trail at ``telemetry_path`` and a compact
    decision-latency record rides on the ``cell_finished`` event so live
    dashboards can fold per-round latency percentiles across cells.
    """
    from repro.orchestration.retry import classify_transient
    from repro.orchestration.sweep import CellSpec

    started = time.perf_counter()
    # Retried cells carry a backoff deadline: honour it here (in the
    # worker, off the coordinator's critical path) so a re-queued cell is
    # not re-attempted while whatever hurt it is plausibly still hurting.
    not_before = payload.get("not_before")
    if not_before is not None:
        delay = float(not_before) - time.time()
        if delay > 0:
            time.sleep(min(delay, 30.0))
    attempt = int(payload.get("attempt", 1))
    if payload.get("telemetry") is not None:
        telemetry.set_telemetry_level(payload["telemetry"])
    cell_dir = Path(payload["cell_dir"]) if payload.get("cell_dir") else None
    events = EventWriter(payload.get("events_path"))
    cell_id = str(payload.get("cell", {}).get("cell_id", "?"))
    events.emit("cell_started", cell_id=cell_id, attempt=attempt)
    try:
        cell = CellSpec.from_dict(payload["cell"])
        fault_point("worker.run_cell")
        metrics = execute_config(
            cell.config, cell_dir, compute_regret=cell.compute_regret
        )
        duration = time.perf_counter() - started
        extra: dict[str, Any] = {}
        if telemetry.enabled():
            snap = telemetry.snapshot()
            trail_path = payload.get("telemetry_path")
            if trail_path is None and payload.get("events_path"):
                # Drainer-side opt-in (repro.cli work --telemetry): the
                # coordinator sent no trail path, so write next to the
                # campaign's event trail.
                trail_path = str(
                    Path(payload["events_path"]).parent
                    / telemetry.TELEMETRY_TRAIL_NAME
                )
            telemetry.TelemetryTrail(trail_path).append(
                snap, cell_id=cell.cell_id, duration_seconds=duration
            )
            decision = telemetry.decision_latency(snap)
            if decision is not None:
                extra["telemetry"] = decision
        events.emit(
            "cell_finished",
            cell_id=cell.cell_id,
            duration_seconds=duration,
            metrics=metric_snapshot(metrics),
            **extra,
        )
        return {
            "cell_id": cell.cell_id,
            "status": "completed",
            "metrics": metrics,
            "duration_seconds": duration,
            "attempt": attempt,
            "event_log_path": (
                str(cell_dir / EVENT_LOG_NAME) if cell_dir is not None else None
            ),
        }
    except Exception as exc:
        duration = time.perf_counter() - started
        error = traceback.format_exc()
        transient = classify_transient(exc)
        events.emit(
            "cell_failed",
            cell_id=cell_id,
            duration_seconds=duration,
            error=error.strip().splitlines()[-1],
            exception_type=type(exc).__name__,
            transient=transient,
            attempt=attempt,
        )
        return {
            "cell_id": cell_id,
            "status": "failed",
            "error": error,
            "duration_seconds": duration,
            "attempt": attempt,
            "exception_type": type(exc).__name__,
            "transient": transient,
            "event_log_path": None,
        }
