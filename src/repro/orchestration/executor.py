"""Campaign execution: fan a sweep grid across worker processes.

:func:`run_campaign` is the one entry point.  It expands the grid, skips
every cell the campaign's :class:`~repro.orchestration.store.ResultStore`
already holds (checkpoint/resume), and dispatches the remainder to a
:class:`concurrent.futures.ProcessPoolExecutor` — or runs them inline with
``max_workers=0``, which keeps tests and debuggers single-process.

Results are persisted *as each cell completes*, so killing a campaign at
any point loses at most the in-flight cells: rerunning the same command (or
``python -m repro.cli resume <dir>``) picks up where it stopped.  A cell
that crashes records its traceback and the campaign keeps going; the
failure surfaces in the summary and the report instead of as a dead
process.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.logging_utils import get_logger
from repro.orchestration.store import ResultStore
from repro.orchestration.sweep import CellSpec, SweepSpec
from repro.orchestration.worker import run_cell

__all__ = ["CampaignSummary", "run_campaign", "resume_campaign"]

_LOGGER = get_logger("orchestration.executor")

SWEEP_SPEC_NAME = "sweep.json"
CELLS_DIR_NAME = "cells"

ProgressCallback = Callable[[dict[str, Any], int, int], None]


@dataclass(frozen=True)
class CampaignSummary:
    """Outcome of one :func:`run_campaign` invocation."""

    campaign_dir: Path
    total_cells: int
    executed: int
    skipped: int
    failed: int

    @property
    def completed(self) -> int:
        """Cells that finished successfully in this invocation."""
        return self.executed - self.failed


def _payload(cell: CellSpec, campaign_dir: Path) -> dict[str, Any]:
    cell_dir = campaign_dir / CELLS_DIR_NAME / cell.cell_id
    return {"cell": cell.to_dict(), "cell_dir": str(cell_dir)}


def _record(store: ResultStore, cell: CellSpec, outcome: dict[str, Any]) -> None:
    if outcome["status"] == "completed":
        # Store the artifact path relative to the campaign directory so the
        # directory stays self-contained (movable across cwds/machines);
        # ResultStore.results() resolves it back to an absolute path.
        log_path = outcome["event_log_path"]
        if log_path is not None:
            try:
                log_path = str(
                    Path(log_path).relative_to(store.campaign_dir)
                )
            except ValueError:
                pass  # outside the campaign dir: keep as given
        store.record_success(
            cell,
            outcome["metrics"],
            duration_seconds=outcome["duration_seconds"],
            event_log_path=log_path,
        )
    else:
        _LOGGER.warning("cell %s failed:\n%s", cell.cell_id, outcome.get("error"))
        store.record_failure(
            cell, outcome.get("error", "unknown error"),
            duration_seconds=outcome["duration_seconds"],
        )


def run_campaign(
    spec: SweepSpec,
    campaign_dir: str | Path,
    *,
    max_workers: int | None = None,
    resume: bool = True,
    progress: ProgressCallback | None = None,
) -> CampaignSummary:
    """Run (or resume) a sweep campaign; returns the invocation summary.

    Parameters
    ----------
    spec:
        The grid to run.  It is archived as ``sweep.json`` inside the
        campaign directory so ``resume``/``report`` need only the path.
    campaign_dir:
        Where the result store and per-cell artifacts live.  Reusing a
        directory resumes it (completed cells are skipped) as long as
        ``resume`` stays True.
    max_workers:
        Process-pool width; defaults to ``os.cpu_count()`` capped by the
        number of pending cells.  ``0`` runs cells inline in this process.
    resume:
        When False, every cell is re-executed even if already recorded.
    progress:
        Optional ``(outcome_dict, done_so_far, total_pending)`` callback,
        invoked after each cell's result is persisted.
    """
    campaign_dir = Path(campaign_dir)
    campaign_dir.mkdir(parents=True, exist_ok=True)
    spec_path = campaign_dir / SWEEP_SPEC_NAME
    if resume and spec_path.exists():
        existing = SweepSpec.load(spec_path)
        if existing != spec:
            # Cell ids encode only the axis values, not the base config, so
            # resuming a different spec would silently present the old
            # campaign's stored results as this spec's numbers.
            raise ValueError(
                f"{campaign_dir} already holds a different campaign "
                f"({existing.name!r}); use a new directory, or resume=False "
                f"(--fresh) to re-run every cell under the new spec"
            )
    spec.save(spec_path)

    cells = spec.expand()
    with ResultStore(campaign_dir) as store:
        done = store.completed_ids() if resume else set()
        pending = [cell for cell in cells if cell.cell_id not in done]
        skipped = len(cells) - len(pending)
        if skipped:
            _LOGGER.info("resume: skipping %d completed cells", skipped)

        failed = 0
        executed = 0
        if not pending:
            return CampaignSummary(campaign_dir, len(cells), 0, skipped, 0)

        if max_workers == 0:
            for cell in pending:
                outcome = run_cell(_payload(cell, campaign_dir))
                executed += 1
                failed += outcome["status"] != "completed"
                _record(store, cell, outcome)
                if progress is not None:
                    progress(outcome, executed, len(pending))
        else:
            if max_workers is None:
                max_workers = os.cpu_count() or 1
            max_workers = max(1, min(max_workers, len(pending)))
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures = {
                    pool.submit(run_cell, _payload(cell, campaign_dir)): cell
                    for cell in pending
                }
                try:
                    remaining = set(futures)
                    while remaining:
                        finished, remaining = wait(
                            remaining, return_when=FIRST_COMPLETED
                        )
                        for future in finished:
                            cell = futures[future]
                            error = future.exception()
                            if error is not None:
                                # Infrastructure failure (e.g. a worker died
                                # hard); attribute it to the cell and go on.
                                outcome = {
                                    "cell_id": cell.cell_id,
                                    "status": "failed",
                                    "error": repr(error),
                                    "duration_seconds": 0.0,
                                    "event_log_path": None,
                                }
                            else:
                                outcome = future.result()
                            executed += 1
                            failed += outcome["status"] != "completed"
                            _record(store, cell, outcome)
                            if progress is not None:
                                progress(outcome, executed, len(pending))
                except KeyboardInterrupt:
                    # Completed cells are already persisted; drop the rest
                    # so the campaign can resume from the checkpoint.
                    for future in remaining:
                        future.cancel()
                    raise

    return CampaignSummary(campaign_dir, len(cells), executed, skipped, failed)


def resume_campaign(
    campaign_dir: str | Path,
    *,
    max_workers: int | None = None,
    progress: ProgressCallback | None = None,
) -> CampaignSummary:
    """Resume a campaign from its directory alone (re-reads ``sweep.json``)."""
    campaign_dir = Path(campaign_dir)
    spec_path = campaign_dir / SWEEP_SPEC_NAME
    if not spec_path.exists():
        raise FileNotFoundError(
            f"{spec_path} not found — is {campaign_dir} a campaign directory?"
        )
    spec = SweepSpec.load(spec_path)
    return run_campaign(
        spec, campaign_dir, max_workers=max_workers, resume=True, progress=progress
    )
