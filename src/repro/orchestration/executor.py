"""Campaign execution: fan a sweep grid across a pluggable backend.

:func:`run_campaign` is the one entry point.  It expands the grid, skips
every cell the campaign's :class:`~repro.orchestration.store.ResultStore`
already holds (checkpoint/resume), and hands the remainder to an
:class:`~repro.orchestration.backends.ExecutionBackend` — inline, thread
pool, process pool (the default), or the durable work queue that external
``python -m repro.cli work <dir>`` drainers share.  The result store is
equally pluggable (``store="sqlite" | "columnar"``) and sniffed
automatically on resume, so a campaign is always reopened the way it was
written.

Results are persisted *as each cell completes*, so killing a campaign at
any point loses at most the in-flight cells: rerunning the same command (or
``python -m repro.cli resume <dir>``) picks up where it stopped — on every
backend, including mid-drain work queues.  A cell that crashes records its
traceback and the campaign keeps going; the failure surfaces in the
summary and the report, and such cells are only re-queued when
``retry_failed`` (the CLI's ``--retry-failed``) asks for it.  Progress
streams onto the campaign's event trail
(:mod:`repro.orchestration.events`) for ``repro.cli watch`` dashboards and
adaptive schedulers.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.faults import fault_point
from repro.logging_utils import get_logger, telemetry_enabled, telemetry_level
from repro.orchestration.backends import ExecutionBackend, resolve_backend
from repro.orchestration.events import EVENTS_NAME, EventWriter
from repro.orchestration.retry import (
    RetryPolicy,
    clear_quarantine,
    quarantine_cell,
    quarantined_ids,
)
from repro.telemetry import TELEMETRY_TRAIL_NAME
from repro.orchestration.store import ResultStore, StoreBackend
from repro.orchestration.sweep import CellSpec, SweepSpec

__all__ = ["CampaignSummary", "run_campaign", "resume_campaign"]

_LOGGER = get_logger("orchestration.executor")

SWEEP_SPEC_NAME = "sweep.json"
CELLS_DIR_NAME = "cells"

ProgressCallback = Callable[[dict[str, Any], int, int], None]


@dataclass(frozen=True)
class CampaignSummary:
    """Outcome of one :func:`run_campaign` invocation."""

    campaign_dir: Path
    total_cells: int
    executed: int
    skipped: int
    failed: int
    skipped_failed: int = 0
    #: Transient-failure re-queues performed during this invocation (a
    #: cell retried twice counts twice; retries are not in ``executed``).
    retried: int = 0
    #: Cells currently dead-lettered under ``quarantine/`` — counted from
    #: disk at summary time, so it includes poison cells from earlier
    #: invocations, not just this one's failures.
    quarantined: int = 0

    @property
    def completed(self) -> int:
        """Cells that finished successfully in this invocation."""
        return self.executed - self.failed


def _payload(
    cell: CellSpec, campaign_dir: Path, *, events: bool
) -> dict[str, Any]:
    cell_dir = campaign_dir / CELLS_DIR_NAME / cell.cell_id
    # When the coordinator enables telemetry, its level rides in the
    # payload so every backend's workers — forked pools and remote
    # work-queue drainers — instrument identically and append their
    # snapshots to the campaign trail.  Payloads from an uninstrumented
    # coordinator carry None, leaving each drainer's own setting in force.
    enabled = telemetry_enabled()
    return {
        "cell": cell.to_dict(),
        "cell_dir": str(cell_dir),
        "events_path": str(campaign_dir / EVENTS_NAME) if events else None,
        "telemetry": telemetry_level() if enabled else None,
        "telemetry_path": (
            str(campaign_dir / TELEMETRY_TRAIL_NAME) if enabled else None
        ),
        "attempt": 1,
    }


def _record(store: ResultStore, cell: CellSpec, outcome: dict[str, Any]) -> None:
    attempts = int(outcome.get("attempt", 1))
    if outcome["status"] == "completed":
        # Store the artifact path relative to the campaign directory so the
        # directory stays self-contained (movable across cwds/machines);
        # ResultStore.results() resolves it back to an absolute path.
        log_path = outcome["event_log_path"]
        if log_path is not None:
            try:
                log_path = str(
                    Path(log_path).relative_to(store.campaign_dir)
                )
            except ValueError:
                pass  # outside the campaign dir: keep as given
        store.record_success(
            cell,
            outcome["metrics"],
            duration_seconds=outcome["duration_seconds"],
            event_log_path=log_path,
            attempts=attempts,
        )
    else:
        _LOGGER.warning("cell %s failed:\n%s", cell.cell_id, outcome.get("error"))
        store.record_failure(
            cell, outcome.get("error", "unknown error"),
            duration_seconds=outcome["duration_seconds"],
            attempts=attempts,
            exception_type=outcome.get("exception_type"),
        )


def run_campaign(
    spec: SweepSpec,
    campaign_dir: str | Path,
    *,
    max_workers: int | None = None,
    resume: bool = True,
    progress: ProgressCallback | None = None,
    backend: str | ExecutionBackend | None = None,
    store: str | StoreBackend | None = None,
    retry_failed: bool = False,
    events: bool = True,
    retry: RetryPolicy | None = None,
) -> CampaignSummary:
    """Run (or resume) a sweep campaign; returns the invocation summary.

    Parameters
    ----------
    spec:
        The grid to run.  It is archived as ``sweep.json`` inside the
        campaign directory so ``resume``/``report`` need only the path.
    campaign_dir:
        Where the result store and per-cell artifacts live.  Reusing a
        directory resumes it (completed cells are skipped) as long as
        ``resume`` stays True.
    max_workers:
        Worker width for the parallel backends; defaults to
        ``os.cpu_count()`` capped by the number of pending cells.  ``0``
        selects the inline backend (single-process; tests and debuggers).
    resume:
        When False, every cell is re-executed even if already recorded.
    progress:
        Optional ``(outcome_dict, done_so_far, total_pending)`` callback,
        invoked after each cell's result is persisted.
    backend:
        Execution backend: ``"inline"``, ``"thread"``, ``"process"``,
        ``"work-queue"``, or a ready
        :class:`~repro.orchestration.backends.ExecutionBackend`.  ``None``
        keeps the historical default (process pool; inline when
        ``max_workers == 0``).  Per-cell results are identical across
        backends.
    store:
        Result-store backend: ``"sqlite"`` (default), ``"columnar"``, or a
        ready :class:`~repro.orchestration.store.StoreBackend`.  ``None``
        sniffs an existing campaign's store and only then falls back to
        SQLite, so resume never switches formats mid-campaign.
    retry_failed:
        Re-queue cells previously recorded as ``failed``.  Off by
        default: a deterministic cell that crashed once will crash again,
        so failures stay visible in the report instead of burning time
        every resume; pass True (CLI ``--retry-failed``) after fixing the
        cause.
    events:
        Stream progress events to ``events.jsonl`` (the ``watch``
        dashboard / scheduler feed).  On by default; costs one appended
        line per cell transition.
    retry:
        In-flight retry policy (distinct from ``retry_failed``, which
        re-queues cells recorded as failed by *previous* invocations).
        Defaults to :class:`~repro.orchestration.retry.RetryPolicy`
        (3 total attempts): a cell whose failure classifies as transient
        — ``OSError`` and friends — is re-queued with exponential backoff
        + jitter instead of being recorded failed; a cell that fails
        deterministically, or exhausts its attempts, is recorded failed
        and dead-lettered under ``quarantine/``.  Pass
        ``RetryPolicy(max_attempts=1)`` to disable retries.
    """
    campaign_dir = Path(campaign_dir)
    campaign_dir.mkdir(parents=True, exist_ok=True)
    spec_path = campaign_dir / SWEEP_SPEC_NAME
    if resume and spec_path.exists():
        existing = SweepSpec.load(spec_path)
        if existing != spec:
            # Cell ids encode only the axis values, not the base config, so
            # resuming a different spec would silently present the old
            # campaign's stored results as this spec's numbers.
            raise ValueError(
                f"{campaign_dir} already holds a different campaign "
                f"({existing.name!r}); use a new directory, or resume=False "
                f"(--fresh) to re-run every cell under the new spec"
            )
    spec.save(spec_path)

    cells = spec.expand()
    with ResultStore(campaign_dir, backend=store) as result_store:
        skipped_failed = 0
        if resume:
            done = result_store.completed_ids()
            if not retry_failed:
                failed_ids = {
                    result.cell_id
                    for result in result_store.results(status="failed")
                }
                skipped_failed = len(failed_ids)
                done = done | failed_ids
        else:
            done = set()
        pending = [cell for cell in cells if cell.cell_id not in done]
        skipped = len(cells) - len(pending)
        if skipped:
            _LOGGER.info(
                "resume: skipping %d recorded cells (%d failed; "
                "--retry-failed re-queues those)",
                skipped, skipped_failed,
            )

        policy = retry if retry is not None else RetryPolicy()
        failed = 0
        executed = 0
        retried = 0
        if not pending:
            return CampaignSummary(
                campaign_dir, len(cells), 0, skipped, 0, skipped_failed,
                0, len(quarantined_ids(campaign_dir)),
            )

        bus = EventWriter((campaign_dir / EVENTS_NAME) if events else None)
        execution = resolve_backend(
            backend, campaign_dir=campaign_dir, max_workers=max_workers
        )
        bus.emit(
            "campaign_started",
            name=spec.name,
            backend=execution.name,
            store=result_store.backend.name,
            total_cells=len(cells),
            pending=len(pending),
            skipped=skipped,
        )
        by_id = {cell.cell_id: cell for cell in pending}
        payloads = {
            cell.cell_id: _payload(cell, campaign_dir, events=events)
            for cell in pending
        }
        try:
            if not resume:
                # --fresh re-executes everything: durable backends must
                # not replay stale queued payloads or acked outcomes.
                execution.reset()
            execution.submit(list(payloads.values()))
            for outcome in execution.as_completed():
                cell_id = str(outcome["cell_id"])
                cell = by_id[cell_id]
                if outcome["status"] != "completed":
                    # A worker-classified transient failure (or an
                    # infrastructure one — a died worker carries no
                    # classification and is presumed transient) gets a
                    # fresh attempt with backoff instead of a store row.
                    attempt = int(outcome.get("attempt", 1))
                    transient = bool(outcome.get("transient", True))
                    if policy.should_retry(attempt, transient=transient):
                        backoff = policy.backoff_seconds(cell_id, attempt)
                        retried += 1
                        bus.emit(
                            "cell_retry",
                            cell_id=cell_id,
                            attempt=attempt,
                            backoff_seconds=backoff,
                            exception_type=outcome.get("exception_type"),
                            transient=transient,
                            error=_error_tail(outcome),
                        )
                        _LOGGER.warning(
                            "cell %s attempt %d failed (%s); retrying in %.2fs",
                            cell_id, attempt,
                            outcome.get("exception_type") or "worker died",
                            backoff,
                        )
                        requeue = dict(payloads[cell_id])
                        requeue["attempt"] = attempt + 1
                        requeue["not_before"] = time.time() + backoff
                        execution.submit([requeue])
                        continue
                    classification = (
                        "transient-exhausted" if transient else "deterministic"
                    )
                    quarantine_cell(
                        campaign_dir,
                        cell_id,
                        payload=payloads[cell_id],
                        attempts=attempt,
                        classification=classification,
                        exception_type=outcome.get("exception_type"),
                        error=outcome.get("error"),
                    )
                    bus.emit(
                        "cell_quarantined",
                        cell_id=cell_id,
                        attempts=attempt,
                        classification=classification,
                        exception_type=outcome.get("exception_type"),
                    )
                    failed += 1
                executed += 1
                fault_point("executor.record")
                _record(result_store, cell, outcome)
                if outcome["status"] == "completed":
                    # A cell dead-lettered by an earlier invocation that
                    # now succeeded (e.g. --retry-failed after a fix) is
                    # no longer poison.
                    clear_quarantine(campaign_dir, cell_id)
                if progress is not None:
                    progress(outcome, executed, len(pending))
        except (KeyboardInterrupt, GeneratorExit):
            # Completed cells are already persisted; drop the rest so the
            # campaign can resume from the checkpoint.
            bus.emit("campaign_interrupted", executed=executed, failed=failed)
            raise
        finally:
            execution.shutdown()
        quarantined = len(quarantined_ids(campaign_dir))
        bus.emit(
            "campaign_finished",
            executed=executed,
            failed=failed,
            skipped=skipped,
            retried=retried,
            quarantined=quarantined,
        )

    return CampaignSummary(
        campaign_dir, len(cells), executed, skipped, failed, skipped_failed,
        retried, quarantined,
    )


def _error_tail(outcome: dict[str, Any]) -> str | None:
    error = outcome.get("error")
    if not error:
        return None
    return str(error).strip().splitlines()[-1]


def resume_campaign(
    campaign_dir: str | Path,
    *,
    max_workers: int | None = None,
    progress: ProgressCallback | None = None,
    backend: str | ExecutionBackend | None = None,
    store: str | StoreBackend | None = None,
    retry_failed: bool = False,
    retry: RetryPolicy | None = None,
) -> CampaignSummary:
    """Resume a campaign from its directory alone (re-reads ``sweep.json``).

    The store backend is sniffed from the directory unless given, so a
    columnar campaign resumes columnar; ``retry_failed`` re-queues cells
    recorded as failed (they are otherwise skipped and reported).
    """
    campaign_dir = Path(campaign_dir)
    spec_path = campaign_dir / SWEEP_SPEC_NAME
    if not spec_path.exists():
        raise FileNotFoundError(
            f"{spec_path} not found — is {campaign_dir} a campaign directory?"
        )
    spec = SweepSpec.load(spec_path)
    return run_campaign(
        spec,
        campaign_dir,
        max_workers=max_workers,
        resume=True,
        progress=progress,
        backend=backend,
        store=store,
        retry_failed=retry_failed,
        retry=retry,
    )
