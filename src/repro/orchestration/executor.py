"""Campaign execution: fan a sweep grid across a pluggable backend.

:func:`run_campaign` is the one entry point.  It expands the grid, skips
every cell the campaign's :class:`~repro.orchestration.store.ResultStore`
already holds (checkpoint/resume), and hands the remainder to an
:class:`~repro.orchestration.backends.ExecutionBackend` — inline, thread
pool, process pool (the default), or the durable work queue that external
``python -m repro.cli work <dir>`` drainers share.  The result store is
equally pluggable (``store="sqlite" | "columnar"``) and sniffed
automatically on resume, so a campaign is always reopened the way it was
written.

Results are persisted *as each cell completes*, so killing a campaign at
any point loses at most the in-flight cells: rerunning the same command (or
``python -m repro.cli resume <dir>``) picks up where it stopped — on every
backend, including mid-drain work queues.  A cell that crashes records its
traceback and the campaign keeps going; the failure surfaces in the
summary and the report, and such cells are only re-queued when
``retry_failed`` (the CLI's ``--retry-failed``) asks for it.  Progress
streams onto the campaign's event trail
(:mod:`repro.orchestration.events`) for ``repro.cli watch`` dashboards and
adaptive schedulers.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.logging_utils import get_logger, telemetry_enabled, telemetry_level
from repro.orchestration.backends import ExecutionBackend, resolve_backend
from repro.orchestration.events import EVENTS_NAME, EventWriter
from repro.telemetry import TELEMETRY_TRAIL_NAME
from repro.orchestration.store import ResultStore, StoreBackend
from repro.orchestration.sweep import CellSpec, SweepSpec

__all__ = ["CampaignSummary", "run_campaign", "resume_campaign"]

_LOGGER = get_logger("orchestration.executor")

SWEEP_SPEC_NAME = "sweep.json"
CELLS_DIR_NAME = "cells"

ProgressCallback = Callable[[dict[str, Any], int, int], None]


@dataclass(frozen=True)
class CampaignSummary:
    """Outcome of one :func:`run_campaign` invocation."""

    campaign_dir: Path
    total_cells: int
    executed: int
    skipped: int
    failed: int
    skipped_failed: int = 0

    @property
    def completed(self) -> int:
        """Cells that finished successfully in this invocation."""
        return self.executed - self.failed


def _payload(
    cell: CellSpec, campaign_dir: Path, *, events: bool
) -> dict[str, Any]:
    cell_dir = campaign_dir / CELLS_DIR_NAME / cell.cell_id
    # When the coordinator enables telemetry, its level rides in the
    # payload so every backend's workers — forked pools and remote
    # work-queue drainers — instrument identically and append their
    # snapshots to the campaign trail.  Payloads from an uninstrumented
    # coordinator carry None, leaving each drainer's own setting in force.
    enabled = telemetry_enabled()
    return {
        "cell": cell.to_dict(),
        "cell_dir": str(cell_dir),
        "events_path": str(campaign_dir / EVENTS_NAME) if events else None,
        "telemetry": telemetry_level() if enabled else None,
        "telemetry_path": (
            str(campaign_dir / TELEMETRY_TRAIL_NAME) if enabled else None
        ),
    }


def _record(store: ResultStore, cell: CellSpec, outcome: dict[str, Any]) -> None:
    if outcome["status"] == "completed":
        # Store the artifact path relative to the campaign directory so the
        # directory stays self-contained (movable across cwds/machines);
        # ResultStore.results() resolves it back to an absolute path.
        log_path = outcome["event_log_path"]
        if log_path is not None:
            try:
                log_path = str(
                    Path(log_path).relative_to(store.campaign_dir)
                )
            except ValueError:
                pass  # outside the campaign dir: keep as given
        store.record_success(
            cell,
            outcome["metrics"],
            duration_seconds=outcome["duration_seconds"],
            event_log_path=log_path,
        )
    else:
        _LOGGER.warning("cell %s failed:\n%s", cell.cell_id, outcome.get("error"))
        store.record_failure(
            cell, outcome.get("error", "unknown error"),
            duration_seconds=outcome["duration_seconds"],
        )


def run_campaign(
    spec: SweepSpec,
    campaign_dir: str | Path,
    *,
    max_workers: int | None = None,
    resume: bool = True,
    progress: ProgressCallback | None = None,
    backend: str | ExecutionBackend | None = None,
    store: str | StoreBackend | None = None,
    retry_failed: bool = False,
    events: bool = True,
) -> CampaignSummary:
    """Run (or resume) a sweep campaign; returns the invocation summary.

    Parameters
    ----------
    spec:
        The grid to run.  It is archived as ``sweep.json`` inside the
        campaign directory so ``resume``/``report`` need only the path.
    campaign_dir:
        Where the result store and per-cell artifacts live.  Reusing a
        directory resumes it (completed cells are skipped) as long as
        ``resume`` stays True.
    max_workers:
        Worker width for the parallel backends; defaults to
        ``os.cpu_count()`` capped by the number of pending cells.  ``0``
        selects the inline backend (single-process; tests and debuggers).
    resume:
        When False, every cell is re-executed even if already recorded.
    progress:
        Optional ``(outcome_dict, done_so_far, total_pending)`` callback,
        invoked after each cell's result is persisted.
    backend:
        Execution backend: ``"inline"``, ``"thread"``, ``"process"``,
        ``"work-queue"``, or a ready
        :class:`~repro.orchestration.backends.ExecutionBackend`.  ``None``
        keeps the historical default (process pool; inline when
        ``max_workers == 0``).  Per-cell results are identical across
        backends.
    store:
        Result-store backend: ``"sqlite"`` (default), ``"columnar"``, or a
        ready :class:`~repro.orchestration.store.StoreBackend`.  ``None``
        sniffs an existing campaign's store and only then falls back to
        SQLite, so resume never switches formats mid-campaign.
    retry_failed:
        Re-queue cells previously recorded as ``failed``.  Off by
        default: a deterministic cell that crashed once will crash again,
        so failures stay visible in the report instead of burning time
        every resume; pass True (CLI ``--retry-failed``) after fixing the
        cause.
    events:
        Stream progress events to ``events.jsonl`` (the ``watch``
        dashboard / scheduler feed).  On by default; costs one appended
        line per cell transition.
    """
    campaign_dir = Path(campaign_dir)
    campaign_dir.mkdir(parents=True, exist_ok=True)
    spec_path = campaign_dir / SWEEP_SPEC_NAME
    if resume and spec_path.exists():
        existing = SweepSpec.load(spec_path)
        if existing != spec:
            # Cell ids encode only the axis values, not the base config, so
            # resuming a different spec would silently present the old
            # campaign's stored results as this spec's numbers.
            raise ValueError(
                f"{campaign_dir} already holds a different campaign "
                f"({existing.name!r}); use a new directory, or resume=False "
                f"(--fresh) to re-run every cell under the new spec"
            )
    spec.save(spec_path)

    cells = spec.expand()
    with ResultStore(campaign_dir, backend=store) as result_store:
        skipped_failed = 0
        if resume:
            done = result_store.completed_ids()
            if not retry_failed:
                failed_ids = {
                    result.cell_id
                    for result in result_store.results(status="failed")
                }
                skipped_failed = len(failed_ids)
                done = done | failed_ids
        else:
            done = set()
        pending = [cell for cell in cells if cell.cell_id not in done]
        skipped = len(cells) - len(pending)
        if skipped:
            _LOGGER.info(
                "resume: skipping %d recorded cells (%d failed; "
                "--retry-failed re-queues those)",
                skipped, skipped_failed,
            )

        failed = 0
        executed = 0
        if not pending:
            return CampaignSummary(
                campaign_dir, len(cells), 0, skipped, 0, skipped_failed
            )

        bus = EventWriter((campaign_dir / EVENTS_NAME) if events else None)
        execution = resolve_backend(
            backend, campaign_dir=campaign_dir, max_workers=max_workers
        )
        bus.emit(
            "campaign_started",
            name=spec.name,
            backend=execution.name,
            store=result_store.backend.name,
            total_cells=len(cells),
            pending=len(pending),
            skipped=skipped,
        )
        by_id = {cell.cell_id: cell for cell in pending}
        try:
            if not resume:
                # --fresh re-executes everything: durable backends must
                # not replay stale queued payloads or acked outcomes.
                execution.reset()
            execution.submit(
                [_payload(cell, campaign_dir, events=events) for cell in pending]
            )
            for outcome in execution.as_completed():
                cell = by_id[str(outcome["cell_id"])]
                executed += 1
                failed += outcome["status"] != "completed"
                _record(result_store, cell, outcome)
                if progress is not None:
                    progress(outcome, executed, len(pending))
        except (KeyboardInterrupt, GeneratorExit):
            # Completed cells are already persisted; drop the rest so the
            # campaign can resume from the checkpoint.
            bus.emit("campaign_interrupted", executed=executed, failed=failed)
            raise
        finally:
            execution.shutdown()
        bus.emit(
            "campaign_finished",
            executed=executed,
            failed=failed,
            skipped=skipped,
        )

    return CampaignSummary(
        campaign_dir, len(cells), executed, skipped, failed, skipped_failed
    )


def resume_campaign(
    campaign_dir: str | Path,
    *,
    max_workers: int | None = None,
    progress: ProgressCallback | None = None,
    backend: str | ExecutionBackend | None = None,
    store: str | StoreBackend | None = None,
    retry_failed: bool = False,
) -> CampaignSummary:
    """Resume a campaign from its directory alone (re-reads ``sweep.json``).

    The store backend is sniffed from the directory unless given, so a
    columnar campaign resumes columnar; ``retry_failed`` re-queues cells
    recorded as failed (they are otherwise skipped and reported).
    """
    campaign_dir = Path(campaign_dir)
    spec_path = campaign_dir / SWEEP_SPEC_NAME
    if not spec_path.exists():
        raise FileNotFoundError(
            f"{spec_path} not found — is {campaign_dir} a campaign directory?"
        )
    spec = SweepSpec.load(spec_path)
    return run_campaign(
        spec,
        campaign_dir,
        max_workers=max_workers,
        resume=True,
        progress=progress,
        backend=backend,
        store=store,
        retry_failed=retry_failed,
    )
