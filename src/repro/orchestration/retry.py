"""Retry policy, failure classification, and poison-cell quarantine.

The coordinator decides a failed cell's fate with three inputs: whether
the failure looked *transient* (worker-side classification riding in the
outcome), how many attempts the cell has burned, and the
:class:`RetryPolicy` bounds.  Transient failures re-queue with
exponential backoff + deterministic jitter; anything still failing at
``max_attempts`` — or failing deterministically on the first try — is a
poison cell and moves to the campaign's ``quarantine/`` dead-letter
directory with its full traceback, where ``repro.cli watch`` and
``report`` surface it for a human.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "QUARANTINE_DIR_NAME",
    "TRANSIENT_EXCEPTIONS",
    "RetryPolicy",
    "classify_transient",
    "quarantine_cell",
    "clear_quarantine",
    "quarantined_ids",
    "load_quarantine_record",
]

#: Directory (under the campaign dir) holding dead-letter records.
QUARANTINE_DIR_NAME = "quarantine"

#: Exception classes treated as retryable.  OSError covers the injected
#: TransientFaultError plus the real-world class it imitates (NFS blips,
#: EINTR, disk-full); everything else — ValueError from a bad cell spec,
#: assertion failures in a mechanism — is deterministic: retrying would
#: burn compute to fail identically.
TRANSIENT_EXCEPTIONS: tuple[type[BaseException], ...] = (OSError,)


def classify_transient(exc: BaseException) -> bool:
    """True when ``exc`` is worth retrying on a fresh attempt."""
    return isinstance(exc, TRANSIENT_EXCEPTIONS)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    ``max_attempts`` counts *total* attempts, not retries: the default 3
    means one initial run plus at most two re-queues.  Jitter is seeded
    from ``(cell_id, attempt)`` so a resumed coordinator computes the
    same schedule — no wall-clock or global RNG involved.
    """

    max_attempts: int = 3
    backoff_base_seconds: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 5.0
    jitter_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def should_retry(self, attempt: int, *, transient: bool) -> bool:
        """Decide the fate of attempt number ``attempt`` (1-based)."""
        return transient and attempt < self.max_attempts

    def backoff_seconds(self, cell_id: str, attempt: int) -> float:
        """Delay before attempt ``attempt + 1`` of ``cell_id``."""
        delay = self.backoff_base_seconds * (
            self.backoff_factor ** max(0, attempt - 1)
        )
        delay = min(delay, self.backoff_max_seconds)
        token = f"{cell_id}:{attempt}".encode()
        unit = (zlib.crc32(token) % 10_000) / 10_000.0
        return delay * (1.0 + self.jitter_fraction * (2.0 * unit - 1.0))


def _quarantine_dir(campaign_dir: str | Path) -> Path:
    return Path(campaign_dir) / QUARANTINE_DIR_NAME


def quarantine_cell(
    campaign_dir: str | Path,
    cell_id: str,
    *,
    payload: dict | None = None,
    attempts: int = 1,
    classification: str = "deterministic",
    exception_type: str | None = None,
    error: str | None = None,
) -> Path:
    """Write a dead-letter record for a poison cell (tmp+rename, atomic)."""
    directory = _quarantine_dir(campaign_dir)
    directory.mkdir(parents=True, exist_ok=True)
    record = {
        "cell_id": cell_id,
        "attempts": attempts,
        "classification": classification,
        "exception_type": exception_type,
        "error": error,
        "quarantined_at": time.time(),
        "payload": payload,
    }
    final = directory / f"{cell_id}.json"
    fd, tmp = tempfile.mkstemp(prefix=f".{cell_id}.", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, default=str)
        os.replace(tmp, final)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return final


def clear_quarantine(campaign_dir: str | Path, cell_id: str) -> bool:
    """Drop a cell's dead-letter record (it later succeeded); True if one existed."""
    try:
        (_quarantine_dir(campaign_dir) / f"{cell_id}.json").unlink()
        return True
    except FileNotFoundError:
        return False


def quarantined_ids(campaign_dir: str | Path) -> set[str]:
    """Cell IDs currently dead-lettered under ``campaign_dir``."""
    directory = _quarantine_dir(campaign_dir)
    if not directory.is_dir():
        return set()
    return {
        path.stem
        for path in directory.glob("*.json")
        if not path.name.startswith(".")
    }


def load_quarantine_record(campaign_dir: str | Path, cell_id: str) -> dict | None:
    """Read one dead-letter record, or None if absent/unreadable."""
    path = _quarantine_dir(campaign_dir) / f"{cell_id}.json"
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None
