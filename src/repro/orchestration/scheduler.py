"""Adaptive sweeps: successive halving over a campaign grid.

A full-factorial campaign spends the same round budget on every grid arm,
including the ones that are clearly dominated after a fraction of the
rounds.  :func:`run_successive_halving` instead runs the grid in *rungs*:
every surviving arm (a (mechanism, scenario, params) combination, with the
seed axis as its replicates) gets a short budget first, the
:class:`SuccessiveHalvingScheduler` ranks arms on a stored metric and
keeps the top ``1/eta`` fraction, and each survivor's round budget grows
``eta``-fold in the next rung — dominated arms are early-stopped and their
budget reallocated to the contenders, classic successive halving
(Karnin et al. 2013 / Hyperband's inner loop).

The scheduler deliberately ranks from the **campaign event trail**
(``cell_finished`` events carry scalar metric snapshots), not from the
result store: the event bus is the streaming seam every execution backend
already feeds — local pools and remote ``repro.cli work`` drainers alike —
so adaptive decisions need no store round-trip and work on any backend.
Each rung is an ordinary resumable campaign in its own subdirectory
(``rungs/<r>/<arm>``), so a killed adaptive sweep resumes mid-rung like
any other campaign.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.logging_utils import get_logger
from repro.orchestration.events import EVENTS_NAME, read_events
from repro.orchestration.executor import run_campaign
from repro.orchestration.sweep import SweepSpec

__all__ = [
    "ArmScore",
    "HalvingRung",
    "HalvingResult",
    "SuccessiveHalvingScheduler",
    "run_successive_halving",
]

_LOGGER = get_logger("orchestration.scheduler")


def _slug(value: Any) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", str(value))


@dataclass(frozen=True)
class ArmScore:
    """One arm's standing after a rung."""

    mechanism: str
    scenario: str
    params: dict[str, Any]
    score: float
    cells: int

    @property
    def label(self) -> str:
        parts = [self.mechanism, self.scenario]
        parts += [f"{key}-{_slug(val)}" for key, val in sorted(self.params.items())]
        return "__".join(_slug(part) for part in parts)


@dataclass(frozen=True)
class HalvingRung:
    """What one rung ran and decided."""

    index: int
    num_rounds: int
    scores: tuple[ArmScore, ...]  # ranked best-first
    survivors: tuple[str, ...]  # labels advancing to the next rung


@dataclass(frozen=True)
class HalvingResult:
    """Outcome of :func:`run_successive_halving`.

    The per-rung ranking trail lives in ``rungs``; ``winner`` is the
    best-ranked arm of the final rung.
    """

    rungs: tuple[HalvingRung, ...]
    winner: ArmScore
    metric: str
    total_cells: int = 0


class SuccessiveHalvingScheduler:
    """Ranks arms from the event trail and picks rung survivors.

    Parameters
    ----------
    metric:
        Key of the scalar metric snapshot to rank on (e.g.
        ``total_welfare``, ``final_accuracy``).
    mode:
        ``"max"`` (default) or ``"min"``.
    eta:
        Halving rate: the top ``1/eta`` of arms survive each rung and the
        round budget multiplies by ``eta``.
    """

    def __init__(
        self, *, metric: str = "total_welfare", mode: str = "max", eta: int = 2
    ) -> None:
        if mode not in ("max", "min"):
            raise ValueError(f"mode must be 'max' or 'min', got {mode!r}")
        if eta < 2:
            raise ValueError(f"eta must be >= 2, got {eta}")
        self.metric = metric
        self.mode = mode
        self.eta = int(eta)

    def score_arm(self, arm_dir: str | Path) -> tuple[float, int]:
        """``(mean metric, finished cells)`` from one arm campaign's trail.

        Averages the metric over the arm's cells (the seed replicates),
        keeping each cell's *latest* ``cell_finished`` event — the trail
        is append-only, so a cell interrupted and re-run on resume
        appears twice and must not be double-weighted.  Arms whose cells
        never report the metric score ``nan`` and rank last.
        """
        values: dict[str, float] = {}
        for event in read_events(Path(arm_dir) / EVENTS_NAME):
            if event.type != "cell_finished" or event.cell_id is None:
                continue
            value = event.data.get("metrics", {}).get(self.metric)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                values[event.cell_id] = float(value)
        if not values:
            return float("nan"), 0
        return sum(values.values()) / len(values), len(values)

    def rank(self, scores: list[ArmScore]) -> list[ArmScore]:
        """Best-first order under the configured metric/mode (NaNs last)."""
        sign = -1.0 if self.mode == "max" else 1.0

        def sort_key(arm: ArmScore):
            return (math.isnan(arm.score), sign * arm.score, arm.label)

        return sorted(scores, key=sort_key)

    def survivors(self, ranked: list[ArmScore]) -> list[ArmScore]:
        """The top ``1/eta`` fraction (at least one arm)."""
        keep = max(1, math.ceil(len(ranked) / self.eta))
        return list(ranked[:keep])


def _arms_of(spec: SweepSpec) -> list[tuple[str, str, dict[str, Any]]]:
    """Every (mechanism, scenario, params) combination, seeds collapsed."""
    seen = {}
    for cell in spec.expand():
        key = (cell.mechanism, cell.scenario, tuple(sorted(cell.params.items())))
        if key not in seen:
            seen[key] = (cell.mechanism, cell.scenario, dict(cell.params))
    return list(seen.values())


def _arm_spec(
    spec: SweepSpec, arm: tuple[str, str, dict[str, Any]], num_rounds: int
) -> SweepSpec:
    mechanism, scenario, params = arm
    return SweepSpec(
        base=spec.base.with_overrides(num_rounds=num_rounds),
        mechanisms=(mechanism,),
        scenarios=(scenario,),
        seeds=spec.seeds,
        params={key: (value,) for key, value in params.items()},
        compute_regret=spec.compute_regret,
        name=f"{spec.name}-halving",
    )


def run_successive_halving(
    spec: SweepSpec,
    campaign_dir: str | Path,
    *,
    scheduler: SuccessiveHalvingScheduler | None = None,
    num_rungs: int = 3,
    min_rounds: int = 25,
    backend: str | None = None,
    store: str | None = None,
    max_workers: int | None = None,
    progress=None,
) -> HalvingResult:
    """Run ``spec``'s grid as a successive-halving tournament.

    Rung ``r`` runs every surviving arm for ``min_rounds * eta**r`` rounds
    (all seed replicates), then the scheduler early-stops the dominated
    fraction.  Any execution/store backend works — each arm rung is a
    plain :func:`~repro.orchestration.executor.run_campaign` under
    ``<campaign_dir>/rungs/<r>/<arm>`` and resumes like one.

    Returns the per-rung ranking trail and the winning arm at the final
    rung's budget.
    """
    if num_rungs < 1:
        raise ValueError(f"num_rungs must be >= 1, got {num_rungs}")
    if min_rounds < 1:
        raise ValueError(f"min_rounds must be >= 1, got {min_rounds}")
    scheduler = scheduler or SuccessiveHalvingScheduler()
    campaign_dir = Path(campaign_dir)
    arms = _arms_of(spec)
    rungs: list[HalvingRung] = []
    total_cells = 0

    for rung_index in range(num_rungs):
        num_rounds = min_rounds * scheduler.eta**rung_index
        scores = []
        for arm in arms:
            mechanism, scenario, params = arm
            arm_label = ArmScore(mechanism, scenario, params, 0.0, 0).label
            arm_dir = campaign_dir / "rungs" / str(rung_index) / arm_label
            summary = run_campaign(
                _arm_spec(spec, arm, num_rounds),
                arm_dir,
                backend=backend,
                store=store,
                max_workers=max_workers,
                progress=progress,
            )
            total_cells += summary.executed
            score, cells = scheduler.score_arm(arm_dir)
            scores.append(ArmScore(mechanism, scenario, params, score, cells))
        ranked = scheduler.rank(scores)
        keep = scheduler.survivors(ranked)
        rungs.append(
            HalvingRung(
                index=rung_index,
                num_rounds=num_rounds,
                scores=tuple(ranked),
                survivors=tuple(arm.label for arm in keep),
            )
        )
        _LOGGER.info(
            "rung %d (%d rounds): %d arms -> %d survive",
            rung_index, num_rounds, len(ranked), len(keep),
        )
        # A single survivor still runs every remaining rung, so the
        # winner's score is always measured at the final-rung budget.
        kept_labels = {arm.label for arm in keep}
        arms = [
            arm
            for arm in arms
            if ArmScore(arm[0], arm[1], arm[2], 0.0, 0).label in kept_labels
        ]

    winner = rungs[-1].scores[0]
    return HalvingResult(
        rungs=tuple(rungs),
        winner=winner,
        metric=scheduler.metric,
        total_cells=total_cells,
    )
