"""Pluggable campaign execution: the ``ExecutionBackend`` protocol.

:func:`~repro.orchestration.executor.run_campaign` no longer owns *how*
cells execute — it expands the grid, hands the pending payloads to an
:class:`ExecutionBackend`, and records outcomes as the backend yields
them.  The protocol is three calls and a capability declaration:

* :meth:`ExecutionBackend.submit` — accept the pending cell payloads;
* :meth:`ExecutionBackend.as_completed` — yield outcome dicts as cells
  finish, in completion order;
* :meth:`ExecutionBackend.shutdown` — release workers (idempotent; also
  called on interrupt, so it must tolerate unfinished work).

Four implementations ship, selected by name through
:func:`resolve_backend` (``run_campaign(backend=...)`` / the CLI's
``--backend`` flag):

========== ===================================================================
inline     this process, one cell at a time — debuggers, tests, determinism
thread     a thread pool — parallel I/O-light cells without process spawn cost
process    a process pool — the default; today's single-host behaviour
work-queue a durable on-disk queue (lease/ack) drained by N independent
           worker processes: local children and/or external
           ``python -m repro.cli work <dir>`` drainers on any host sharing
           the filesystem
========== ===================================================================

Every backend runs the same :func:`~repro.orchestration.worker.run_cell`
payloads and reports the same outcome dicts, so per-cell results are
identical across all four (the equivalence suite pins this), and
checkpoint/resume works the same way everywhere — the work-queue backend
additionally survives losing *workers* mid-cell via lease reclaim.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections.abc import Iterator, Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.logging_utils import get_logger
from repro.orchestration.queue import WorkQueue
from repro.orchestration.worker import run_cell

__all__ = [
    "EXECUTION_BACKENDS",
    "BackendCapabilities",
    "ExecutionBackend",
    "InlineBackend",
    "ThreadBackend",
    "ProcessBackend",
    "WorkQueueBackend",
    "resolve_backend",
]

EXECUTION_BACKENDS = ("inline", "thread", "process", "work-queue")

_LOGGER = get_logger("orchestration.backends")


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can do, for callers that must choose or warn.

    Attributes
    ----------
    parallel:
        Cells may execute concurrently.
    distributed:
        Workers outside the coordinator process tree can join the
        campaign (today: the work queue's external drainers).
    durable_dispatch:
        Submitted-but-unfinished work survives the coordinator dying
        (a re-run re-submits idempotently either way; durable dispatch
        means already-queued cells keep draining meanwhile).
    """

    parallel: bool
    distributed: bool = False
    durable_dispatch: bool = False


def _local_drain(campaign_dir: str, index: int, lease_seconds: float) -> None:
    """Worker-process entry point for coordinator-spawned drainers.

    The label is stamped *inside* the child so its pid is the drainer's
    own — that pid is what lease-release checks probe for liveness.
    """
    from repro.orchestration.queue import drain_queue

    drain_queue(
        campaign_dir,
        worker=(
            f"{WorkQueueBackend.LOCAL_WORKER_PREFIX}{index}"
            f"@{os.uname().nodename}:{os.getpid()}"
        ),
        lease_seconds=lease_seconds,
    )


def _infrastructure_failure(
    cell_id: str,
    error: BaseException,
    *,
    attempt: int = 1,
    transient: bool | None = None,
) -> dict[str, Any]:
    """The outcome attributed to a cell whose worker died hard.

    By default carries no ``transient`` classification: the executor
    presumes a died-worker failure transient and retries it, and
    ``attempt`` (echoed from the payload) is what stops a cell whose
    worker dies *every* time from being retried forever.  Pass
    ``transient=False`` for failures the backend has already exhausted
    its own recovery for.
    """
    outcome = {
        "cell_id": cell_id,
        "status": "failed",
        "error": repr(error),
        "duration_seconds": 0.0,
        "attempt": int(attempt),
        "exception_type": type(error).__name__,
        "event_log_path": None,
    }
    if transient is not None:
        outcome["transient"] = transient
    return outcome


class ExecutionBackend:
    """Protocol for executing a campaign's pending cells (see module doc).

    Lifecycle: one campaign invocation per instance —
    ``submit(payloads)``, iterate ``as_completed()`` to exhaustion
    (or until interrupted), ``shutdown()`` always.  ``submit`` may be
    called again *while* ``as_completed`` is being iterated: that is how
    the executor re-queues transient failures for another attempt, so
    every backend tracks outstanding work in instance state rather than
    a snapshot taken when iteration starts.
    """

    name: str = "abstract"
    capabilities = BackendCapabilities(parallel=False)

    def submit(self, payloads: Sequence[dict[str, Any]]) -> None:
        raise NotImplementedError

    def as_completed(self) -> Iterator[dict[str, Any]]:
        raise NotImplementedError

    def shutdown(self) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Discard any dispatch state a previous run left behind.

        Called before ``submit`` when a campaign runs with
        ``resume=False``: a fresh run promises every cell re-executes, so
        backends with durable dispatch (the work queue) must not replay
        stale queued payloads or acked outcomes.  A no-op for backends
        whose dispatch dies with the process.
        """


class InlineBackend(ExecutionBackend):
    """Run cells in this process, one at a time, as the iterator is pulled.

    The reference backend: no concurrency, no serialisation, exceptions
    and debuggers behave exactly as in a plain loop.  ``max_workers=0``
    and ``--workers 0`` map here.
    """

    name = "inline"
    capabilities = BackendCapabilities(parallel=False)

    def __init__(self) -> None:
        self._payloads: list[dict[str, Any]] = []

    def submit(self, payloads: Sequence[dict[str, Any]]) -> None:
        self._payloads.extend(payloads)

    def as_completed(self) -> Iterator[dict[str, Any]]:
        # Index loop, not a list iterator: the executor may submit retry
        # payloads between yields, growing the list mid-iteration.
        index = 0
        while index < len(self._payloads):
            payload = self._payloads[index]
            index += 1
            yield run_cell(payload)

    def shutdown(self) -> None:
        self._payloads.clear()


class _PoolBackend(ExecutionBackend):
    """Shared submit/drain logic of the thread and process pool backends."""

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = int(max_workers)
        self._pool = None
        self._futures: dict[Future, dict[str, Any]] = {}
        self._unfinished: set[Future] = set()

    def _make_pool(self, width: int):
        raise NotImplementedError

    def submit(self, payloads: Sequence[dict[str, Any]]) -> None:
        if self._pool is None:
            width = max(1, min(self.max_workers, len(payloads) or 1))
            self._pool = self._make_pool(width)
        for payload in payloads:
            try:
                future = self._pool.submit(run_cell, payload)
            except BrokenExecutor:
                # A worker's hard death (os._exit, OOM kill) breaks the
                # whole pool: every in-flight future fails and further
                # submits are refused.  Those failures are already on
                # their way to the executor as retries — rebuild the pool
                # so the retries have somewhere to run.
                _LOGGER.warning("execution pool broken; rebuilding")
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = self._make_pool(
                    max(1, min(self.max_workers, len(payloads)))
                )
                future = self._pool.submit(run_cell, payload)
            self._futures[future] = payload
            self._unfinished.add(future)

    def as_completed(self) -> Iterator[dict[str, Any]]:
        while self._unfinished:
            finished, _ = wait(self._unfinished, return_when=FIRST_COMPLETED)
            for future in finished:
                self._unfinished.discard(future)
                payload = self._futures.pop(future)
                error = future.exception()
                if error is not None:
                    # Infrastructure failure (e.g. a pool worker died
                    # hard); attribute it to the cell and go on.
                    yield _infrastructure_failure(
                        str(payload["cell"]["cell_id"]),
                        error,
                        attempt=int(payload.get("attempt", 1)),
                    )
                else:
                    yield future.result()

    def shutdown(self) -> None:
        if self._pool is not None:
            for future in self._futures:
                future.cancel()
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._futures.clear()
        self._unfinished.clear()


class ThreadBackend(_PoolBackend):
    """A thread pool in the coordinator process.

    Cells share the interpreter (numpy releases the GIL inside its
    kernels, so simulation-heavy cells still overlap usefully) and skip
    process-spawn and pickling costs entirely — the right middle ground
    for many small cells on one host.
    """

    name = "thread"
    capabilities = BackendCapabilities(parallel=True)

    def _make_pool(self, width: int):
        return ThreadPoolExecutor(
            max_workers=width, thread_name_prefix="repro-cell"
        )


class ProcessBackend(_PoolBackend):
    """A single-host process pool — the default backend."""

    name = "process"
    capabilities = BackendCapabilities(parallel=True)

    def _make_pool(self, width: int):
        return ProcessPoolExecutor(max_workers=width)


class WorkQueueBackend(ExecutionBackend):
    """Drain cells through the durable on-disk queue.

    ``submit`` enqueues payloads under ``<campaign>/queue/`` (idempotent:
    cells already pending, leased, or done are left alone);
    ``as_completed`` spawns ``num_workers`` local drainer processes and
    then *collects* — polling acked outcomes, reclaiming expired leases —
    until every submitted cell is accounted for.  External drainers
    (``python -m repro.cli work <dir>`` on any machine sharing the
    filesystem) join and leave freely at any point; ``num_workers=0``
    relies on them entirely.

    The queue files, not the worker processes, are the source of truth:
    killing the coordinator loses nothing (outcomes keep accumulating in
    ``done/`` and the next ``resume`` ingests them), and killing a worker
    mid-cell only delays that cell until its lease expires.

    One coordinator per campaign: collection consumes the ``done/`` files,
    so two concurrent ``sweep``/``resume`` coordinators over one directory
    would race for each other's outcomes.  Drainers may be legion;
    coordinators may not.
    """

    name = "work-queue"
    capabilities = BackendCapabilities(
        parallel=True, distributed=True, durable_dispatch=True
    )

    def __init__(
        self,
        campaign_dir: str | Path,
        *,
        num_workers: int | None = None,
        lease_seconds: float = 600.0,
        poll_interval: float = 0.05,
    ) -> None:
        if num_workers is not None and num_workers < 0:
            raise ValueError(f"num_workers must be >= 0, got {num_workers}")
        self.campaign_dir = Path(campaign_dir)
        self.num_workers = (
            num_workers if num_workers is not None else (os.cpu_count() or 1)
        )
        self.poll_interval = float(poll_interval)
        self.queue = WorkQueue(self.campaign_dir, lease_seconds=lease_seconds)
        self._outstanding: set[str] = set()
        self._payloads: dict[str, dict[str, Any]] = {}
        self._requeued: set[str] = set()
        self._processes: list[multiprocessing.Process] = []
        self._repaired = False

    LOCAL_WORKER_PREFIX = "local-"

    @staticmethod
    def _label_pid(worker: str) -> int | None:
        """The drainer pid out of a ``local-<i>@<host>:<pid>`` label.

        ``None`` for labels that are not local drainers of *this host* —
        external drainers and other hosts' locals are never touched by
        pid-based release.
        """
        if not worker.startswith(WorkQueueBackend.LOCAL_WORKER_PREFIX):
            return None
        _, separator, host_pid = worker.rpartition("@")
        host, _, pid_text = host_pid.rpartition(":")
        if not separator or host != os.uname().nodename:
            return None
        try:
            return int(pid_text)
        except ValueError:
            return None

    def _is_own_worker(self, worker: str) -> bool:
        pid = self._label_pid(worker)
        return pid is not None and pid in {
            process.pid for process in self._processes
        }

    def _is_dead_local_worker(self, worker: str) -> bool:
        """A local drainer on this host whose process no longer exists.

        Only provably-dead workers qualify — a second live coordinator's
        drainers (or an external drainer with a look-alike label) keep
        their leases.
        """
        pid = self._label_pid(worker)
        if pid is None or pid == os.getpid():
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except PermissionError:
            pass  # exists under another uid: alive
        return False

    def reset(self) -> None:
        self.queue.purge()

    def submit(self, payloads: Sequence[dict[str, Any]]) -> None:
        if not self._repaired:
            # Startup crash-consistency pass: a previous coordinator or
            # drainer may have died mid-write, leaving orphaned claim
            # sidecars or torn JSON that would poison the scans below.
            self.queue.repair()
            self._repaired = True
        self.queue.enqueue(list(payloads))
        for payload in payloads:
            cell_id = str(payload["cell"]["cell_id"])
            self._payloads[cell_id] = payload
            self._outstanding.add(cell_id)
        # Hand back leases left by a dead previous coordinator's local
        # drainers instead of waiting out their expiry.
        self.queue.release_worker_leases(self._is_dead_local_worker)

    def _spawn_workers(self) -> None:
        # fork where available: workers inherit the warm interpreter
        # instead of re-importing numpy, which is what makes short
        # campaigns scale with worker count.
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = multiprocessing.get_context()
        width = max(0, min(self.num_workers, len(self._outstanding)))
        for index in range(width):
            process = context.Process(
                target=_local_drain,
                args=(
                    str(self.campaign_dir), index, self.queue.lease_seconds
                ),
                daemon=True,
            )
            process.start()
            self._processes.append(process)

    def as_completed(self) -> Iterator[dict[str, Any]]:
        self._spawn_workers()
        # self._outstanding, not a snapshot: the executor re-submits
        # transient failures between yields, and those must keep the
        # collection loop alive until their fresh outcomes land.
        last_reclaim = time.monotonic()
        while self._outstanding:
            drained = False
            for outcome in self.queue.pop_outcomes():
                cell_id = str(outcome["cell_id"])
                if cell_id in self._outstanding:
                    self._outstanding.discard(cell_id)
                    drained = True
                    yield outcome
            if not self._outstanding:
                break
            now = time.monotonic()
            if now - last_reclaim > self.queue.lease_seconds / 4:
                try:
                    self.queue.reclaim_expired()
                except OSError:
                    pass  # transient; an expired lease waits one interval
                last_reclaim = now
            if not drained:
                if self.num_workers > 0 and not any(
                    process.is_alive() for process in self._processes
                ):
                    # All local workers exited with cells still
                    # unaccounted for.  With no external drainers the
                    # queue would now stall forever, so spin up
                    # replacements for whatever remains.  A crashed local
                    # drainer's lease is provably stale (its pid is gone)
                    # — release it now rather than waiting out the full
                    # lease_seconds expiry.
                    self.queue.release_worker_leases(self._is_dead_local_worker)
                    self.queue.reclaim_expired()
                    if self.queue.counts()["pending"]:
                        self._processes = [
                            p for p in self._processes if p.is_alive()
                        ]
                        self._spawn_workers()
                    elif self.queue.is_drained() and not self.queue.counts()["done"]:
                        # Nothing pending, nothing leased, nothing acked,
                        # yet cells are unaccounted: they vanished from
                        # the queue (manual surgery, or a second
                        # coordinator racing for this one's outcomes —
                        # unsupported, see the class docstring).  Give
                        # each lost cell one re-enqueue before failing it:
                        # re-running a deterministic cell is recoverable,
                        # a bogus failure clobbering a completed result in
                        # the store is not.
                        retry = sorted(self._outstanding - self._requeued)
                        if retry:
                            _LOGGER.warning(
                                "%d cells vanished from the work queue; "
                                "re-enqueueing them once", len(retry),
                            )
                            self._requeued.update(retry)
                            self.queue.enqueue(
                                [self._payloads[cell_id] for cell_id in retry]
                            )
                            self._processes = [
                                p for p in self._processes if p.is_alive()
                            ]
                            self._spawn_workers()
                        else:
                            for cell_id in sorted(self._outstanding):
                                yield _infrastructure_failure(
                                    cell_id,
                                    RuntimeError("cell lost from work queue"),
                                    attempt=int(
                                        self._payloads[cell_id].get("attempt", 1)
                                    ),
                                    # The one-shot re-enqueue above was this
                                    # backend's own retry; don't let the
                                    # executor spin more attempts into a
                                    # queue nobody is collecting.
                                    transient=False,
                                )
                            self._outstanding.clear()
                            return
                time.sleep(self.poll_interval)

    def shutdown(self) -> None:
        terminated = False
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                terminated = True
        for process in self._processes:
            process.join(timeout=5.0)
        if terminated:
            # A worker killed mid-cell leaves its lease behind; hand those
            # cells back now so the next resume re-runs them immediately
            # instead of waiting out the lease.  Only this coordinator's
            # own workers qualify — other coordinators' live on.  (Release
            # before forgetting the processes: _is_own_worker matches on
            # their pids.)
            self.queue.release_worker_leases(self._is_own_worker)
        self._processes.clear()


def resolve_backend(
    backend: str | ExecutionBackend | None,
    *,
    campaign_dir: str | Path,
    max_workers: int | None = None,
) -> ExecutionBackend:
    """Turn a backend selection into a live instance.

    ``None`` keeps the historical behaviour: a process pool sized by
    ``max_workers``, or the inline backend when ``max_workers == 0``.
    String names come from :data:`EXECUTION_BACKENDS`; a ready-made
    :class:`ExecutionBackend` instance passes through untouched.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        backend = "inline" if max_workers == 0 else "process"
    # An explicit 0 must not silently widen to cpu_count: the pool
    # backends reject it (inline is the zero-worker execution mode).
    width = max_workers if max_workers is not None else (os.cpu_count() or 1)
    if backend == "inline":
        return InlineBackend()
    if backend == "thread":
        return ThreadBackend(width)
    if backend == "process":
        return ProcessBackend(width)
    if backend == "work-queue":
        return WorkQueueBackend(campaign_dir, num_workers=max_workers)
    raise ValueError(
        f"unknown execution backend {backend!r}; "
        f"choose from {', '.join(EXECUTION_BACKENDS)}"
    )
