"""Durable on-disk work queue: lease/ack cell distribution for campaigns.

The queue is a directory protocol under ``<campaign>/queue/`` that lets any
number of independent worker processes — local children of the
coordinator, or ``python -m repro.cli work <dir>`` drainers started by hand
on any machine sharing the filesystem — drain one campaign without a
broker:

* ``tasks/<cell_id>.json`` — a pending cell payload, exactly what
  :func:`~repro.orchestration.worker.run_cell` consumes;
* ``leases/<cell_id>.json`` — a claimed cell.  Claiming is one atomic
  :func:`os.rename` from ``tasks/`` to ``leases/``, so two workers racing
  for the same cell cannot both win: the loser's rename raises and it
  moves on.  A sidecar ``<cell_id>.claim.json`` records who holds the
  lease and since when;
* ``done/<cell_id>.json`` — the acked outcome, written tmp-then-rename so
  readers never see a torn file.  Acking also releases the lease.

A worker that dies mid-cell leaves its lease behind; anyone calling
:meth:`WorkQueue.reclaim_expired` (the coordinator does, and so do idle
workers) moves leases older than ``lease_seconds`` back to ``tasks/``, so
the cell is re-run by someone else instead of being lost.  Outcomes are
consumed by the coordinator (:meth:`WorkQueue.pop_outcomes`), which
records them into the result store — workers never touch the store, so
the single-writer store contract holds no matter how many drainers run.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from pathlib import Path
from typing import Any

from repro.faults import fault_point, torn_write_point
from repro.logging_utils import get_logger
from repro.orchestration.events import EVENTS_NAME, EventWriter, default_worker_label

__all__ = ["CORRUPT_DIR_NAME", "QUEUE_DIR_NAME", "WorkQueue", "drain_queue"]

QUEUE_DIR_NAME = "queue"

#: Subdirectory of ``queue/`` where unreadable task/lease/outcome files are
#: parked by :meth:`WorkQueue.repair` instead of poisoning every scan.
CORRUPT_DIR_NAME = "corrupt"

_LOGGER = get_logger("orchestration.queue")

#: Stamped into claim sidecars so expiry can tell whether the sidecar's
#: monotonic reading came from this host's clock.
_HOSTNAME = socket.gethostname()


class WorkQueue:
    """One campaign's durable cell queue (see module docstring).

    Parameters
    ----------
    campaign_dir:
        The campaign directory; the queue lives in its ``queue/`` subdir.
    lease_seconds:
        How long a claimed cell may go without finishing before
        :meth:`reclaim_expired` hands it back to the pending pool.  Must
        comfortably exceed the slowest cell's runtime.
    """

    def __init__(
        self, campaign_dir: str | Path, *, lease_seconds: float = 600.0
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be > 0, got {lease_seconds}")
        self.campaign_dir = Path(campaign_dir)
        self.queue_dir = self.campaign_dir / QUEUE_DIR_NAME
        self.lease_seconds = float(lease_seconds)
        self.tasks_dir = self.queue_dir / "tasks"
        self.leases_dir = self.queue_dir / "leases"
        self.done_dir = self.queue_dir / "done"
        for directory in (self.tasks_dir, self.leases_dir, self.done_dir):
            directory.mkdir(parents=True, exist_ok=True)
        # Pending-task names this instance has listed but not yet tried to
        # claim; refilled from the directory only when exhausted, so a
        # full drain lists tasks/ O(N/batch) times instead of once per
        # claim (N^2 directory scans hurt at large N, brutally so on NFS).
        self._claim_candidates: list[str] = []

    # -- producing ---------------------------------------------------------

    def enqueue(self, payloads: list[dict[str, Any]]) -> int:
        """Add pending cell payloads; already-known cells are skipped.

        A cell is "known" when it is pending, leased, or done — re-running
        ``sweep``/``resume`` against a live queue must not duplicate work
        that is already in flight.
        """
        added = 0
        for payload in payloads:
            cell_id = str(payload["cell"]["cell_id"])
            name = f"{cell_id}.json"
            if (
                (self.tasks_dir / name).exists()
                or (self.leases_dir / name).exists()
                or (self.done_dir / name).exists()
            ):
                continue
            self._write_json(self.tasks_dir / name, payload)
            torn_write_point("queue.enqueue", self.tasks_dir / name)
            added += 1
        return added

    # -- claiming ----------------------------------------------------------

    def claim(self, worker: str) -> dict[str, Any] | None:
        """Atomically claim one pending cell, or None when none are pending.

        The claim is the ``tasks/ -> leases/`` rename; losing a race for a
        particular cell just moves on to the next one.
        """
        for attempt in range(2):
            while self._claim_candidates:
                name = self._claim_candidates.pop()
                task_path = self.tasks_dir / name
                lease_path = self.leases_dir / name
                try:
                    # Refresh the mtime *before* renaming: rename preserves
                    # it, and the sidecar-less expiry fallback must age the
                    # lease from the claim, not from enqueue time.
                    os.utime(task_path)
                    os.rename(task_path, lease_path)
                except FileNotFoundError:
                    continue  # another worker won this cell
                claim_path = self.leases_dir / f"{task_path.stem}.claim.json"
                try:
                    self._write_json(claim_path, self._claim_record(worker))
                    fault_point("queue.claim")
                    with open(lease_path) as handle:
                        return json.load(handle)
                except FileNotFoundError:
                    # The lease vanished between rename and read — someone
                    # reclaimed it out from under us (clock skew on a
                    # shared filesystem).  Drop our sidecar and move on.
                    claim_path.unlink(missing_ok=True)
                    continue
                except ValueError:
                    # Torn payload (the enqueuer died mid-write on a
                    # filesystem without atomic rename semantics, or the
                    # file was corrupted at rest).  A poison payload must
                    # not kill every drainer that touches it: park it in
                    # corrupt/ and keep claiming.
                    self._quarantine_corrupt(lease_path)
                    claim_path.unlink(missing_ok=True)
                    continue
            if attempt == 0:
                # Reverse-sorted so list.pop() (O(1), from the end) hands
                # out cells in ascending name order.
                self._claim_candidates = sorted(
                    (
                        entry.name
                        for entry in os.scandir(self.tasks_dir)
                        if entry.name.endswith(".json")
                    ),
                    reverse=True,
                )
        return None

    def extend_lease(self, cell_id: str, worker: str) -> bool:
        """Refresh a held lease's heartbeat; False when the lease is lost.

        The refresh only lands if ``worker`` still owns the lease: a
        stalled worker whose lease was reclaimed (and possibly re-claimed
        by someone else) must not resurrect it with a late heartbeat.  A
        False return tells the caller its execution is now speculative —
        abort rather than ack, or the cell could run twice.
        """
        claim_path = self.leases_dir / f"{cell_id}.claim.json"
        if not self.owns_lease(cell_id, worker):
            return False
        self._write_json(claim_path, self._claim_record(worker))
        # Between the ownership check and the write a reclaimer may have
        # moved the lease back to tasks/; re-check so a heartbeat that
        # lost that race reports the loss instead of leaving an orphaned
        # sidecar pinning a nonexistent lease.
        if not (self.leases_dir / f"{cell_id}.json").exists():
            claim_path.unlink(missing_ok=True)
            return False
        return True

    def owns_lease(self, cell_id: str, worker: str) -> bool:
        """True while ``worker`` holds a live lease on ``cell_id``."""
        if not (self.leases_dir / f"{cell_id}.json").exists():
            return False
        try:
            with open(self.leases_dir / f"{cell_id}.claim.json") as handle:
                return str(json.load(handle).get("worker")) == worker
        except (OSError, ValueError):
            return False

    @staticmethod
    def _claim_record(worker: str) -> dict[str, Any]:
        """A lease heartbeat: wall clock plus a monotonic reading.

        ``claimed_at`` (wall time) is what remote hosts compare against;
        ``monotonic``/``host`` let expiry checks on the *claiming* host use
        :func:`time.monotonic`, immune to NTP steps and manual clock
        changes that would otherwise expire (or immortalise) live leases.
        """
        return {
            "worker": worker,
            "claimed_at": time.time(),
            "monotonic": time.monotonic(),
            "host": _HOSTNAME,
        }

    @staticmethod
    def _lease_age(claim: dict[str, Any]) -> float:
        """Seconds since the claim heartbeat, preferring the monotonic clock.

        The monotonic reading is only meaningful on the host that wrote it
        and only while that host has not rebooted (a reboot restarts the
        monotonic clock, showing up as a negative age); in both of those
        cases the wall-clock timestamp is the fallback.
        """
        monotonic = claim.get("monotonic")
        if monotonic is not None and claim.get("host") == _HOSTNAME:
            age = time.monotonic() - float(monotonic)
            if age >= 0:
                return age
        return time.time() - float(claim["claimed_at"])

    def reclaim_expired(self) -> int:
        """Move leases past their deadline back to pending; returns count.

        Safe to run concurrently from any number of coordinators/workers:
        the reclaim itself is one atomic rename, so when two sweeps race
        over the same expired lease exactly one rename succeeds and the
        loser's ``FileNotFoundError`` is swallowed — a lease is never
        requeued twice.
        """
        fault_point("queue.reclaim")
        reclaimed = 0
        for lease_path in sorted(self.leases_dir.glob("*.json")):
            if lease_path.name.endswith(".claim.json"):
                continue
            claim_path = self.leases_dir / f"{lease_path.stem}.claim.json"
            try:
                with open(claim_path) as handle:
                    age = self._lease_age(json.load(handle))
            except (OSError, ValueError, KeyError, TypeError):
                # No readable claim sidecar (claimer died between renaming
                # and writing it): age the lease on the file's own mtime.
                try:
                    age = time.time() - lease_path.stat().st_mtime
                except OSError:
                    continue
            if age <= self.lease_seconds:
                continue
            try:
                os.rename(lease_path, self.tasks_dir / lease_path.name)
            except FileNotFoundError:
                continue  # acked (or reclaimed) by someone else meanwhile
            claim_path.unlink(missing_ok=True)
            reclaimed += 1
            _LOGGER.warning("reclaimed expired lease for %s", lease_path.stem)
        return reclaimed

    def release_worker_leases(self, should_release) -> int:
        """Hand leases held by matching workers back to the pending pool.

        ``should_release`` maps a worker label to True when its leases are
        known-stale.  The coordinator calls this for spawned local
        drainers it can *prove* dead — its own just-terminated workers at
        shutdown, and same-host workers whose pid no longer exists at
        startup.  External drainers' leases are never touched; a crashed
        external worker is covered by :meth:`reclaim_expired` instead.
        """
        released = 0
        for claim_path in sorted(self.leases_dir.glob("*.claim.json")):
            try:
                with open(claim_path) as handle:
                    worker = str(json.load(handle)["worker"])
            except (OSError, ValueError, KeyError):
                continue
            if not should_release(worker):
                continue
            lease_path = self.leases_dir / claim_path.name.replace(
                ".claim.json", ".json"
            )
            try:
                os.rename(lease_path, self.tasks_dir / lease_path.name)
            except FileNotFoundError:
                pass  # acked meanwhile; just drop the stale sidecar
            else:
                released += 1
                _LOGGER.info("released lease %s held by %s", lease_path.stem, worker)
            claim_path.unlink(missing_ok=True)
        return released

    # -- finishing ---------------------------------------------------------

    def ack(self, cell_id: str, outcome: dict[str, Any]) -> None:
        """Durably record a cell's outcome and release its lease."""
        self._write_json(self.done_dir / f"{cell_id}.json", outcome)
        torn_write_point("queue.ack", self.done_dir / f"{cell_id}.json")
        (self.leases_dir / f"{cell_id}.json").unlink(missing_ok=True)
        (self.leases_dir / f"{cell_id}.claim.json").unlink(missing_ok=True)

    def ack_owned(self, cell_id: str, worker: str, outcome: dict[str, Any]) -> bool:
        """Ack only if ``worker`` still holds the lease; False if it lost it.

        This is the fencing check that makes stalled workers safe: a
        worker that slept past its lease (and whose cell was reclaimed
        and re-run elsewhere) discovers here that its result is stale and
        must be discarded — acking anyway could overwrite the live
        holder's in-flight work or double-deliver the outcome.
        """
        fault_point("queue.ack")
        if not self.owns_lease(cell_id, worker):
            return False
        self.ack(cell_id, outcome)
        return True

    def pop_outcomes(self) -> list[dict[str, Any]]:
        """Consume every acked outcome (coordinator side; removes the files)."""
        outcomes = []
        for done_path in sorted(self.done_dir.glob("*.json")):
            try:
                with open(done_path) as handle:
                    outcomes.append(json.load(handle))
            except (OSError, ValueError):
                continue  # written this very instant; next poll gets it
            done_path.unlink(missing_ok=True)
        return outcomes

    def purge(self) -> None:
        """Drop every queued task, lease, and acked outcome.

        The ``resume=False`` (``--fresh``) path calls this before
        re-submitting: a fresh run promises every cell re-executes, so
        stale acked outcomes must not be replayed into the store and
        stale payloads must not shadow the new ones.
        """
        for directory in (self.tasks_dir, self.leases_dir, self.done_dir):
            for path in directory.glob("*.json"):
                path.unlink(missing_ok=True)
        self._claim_candidates = []

    # -- crash-consistency repair ------------------------------------------

    def repair(self) -> dict[str, int]:
        """Recover the queue from a crash: run before (re)submitting work.

        Three kinds of wreckage a dead process can leave behind:

        * **Orphaned claim sidecars** — a worker that crashed between
          acking (which removed the lease) and the sidecar unlink, or
          whose lease was reclaimed.  The sidecar pins nothing; drop it.
        * **Torn task/lease payloads** — unreadable JSON that would
          otherwise poison every claim scan.  Parked in ``corrupt/``.
        * **Torn acked outcomes** — an ack that died mid-truncation.
          If the lease still exists the cell will be reclaimed and re-run
          (the fresh ack overwrites the torn file), so leave it; only a
          torn outcome with *no* lease is unrecoverable and parked, after
          which the coordinator's vanished-cell logic re-enqueues it.
        """
        repaired = {"orphaned_claims": 0, "corrupt": 0}
        for claim_path in list(self.leases_dir.glob("*.claim.json")):
            lease_name = claim_path.name.replace(".claim.json", ".json")
            if not (self.leases_dir / lease_name).exists():
                claim_path.unlink(missing_ok=True)
                repaired["orphaned_claims"] += 1
        for directory in (self.tasks_dir, self.leases_dir, self.done_dir):
            for path in list(directory.glob("*.json")):
                if path.name.endswith(".claim.json"):
                    continue
                try:
                    with open(path) as handle:
                        json.load(handle)
                except ValueError:
                    if (
                        directory is self.done_dir
                        and (self.leases_dir / path.name).exists()
                    ):
                        continue  # lease holder (or a reclaim) will re-ack
                    self._quarantine_corrupt(path)
                    repaired["corrupt"] += 1
                except OSError:
                    continue
        if repaired["orphaned_claims"] or repaired["corrupt"]:
            _LOGGER.warning(
                "queue repair: dropped %d orphaned claim(s), parked %d corrupt file(s)",
                repaired["orphaned_claims"],
                repaired["corrupt"],
            )
        return repaired

    def _quarantine_corrupt(self, path: Path) -> None:
        """Move an unreadable queue file into ``queue/corrupt/``."""
        corrupt_dir = self.queue_dir / CORRUPT_DIR_NAME
        corrupt_dir.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(path, corrupt_dir / f"{path.name}.{int(time.time())}")
            _LOGGER.warning("parked corrupt queue file %s", path)
        except OSError:
            pass

    # -- introspection -----------------------------------------------------

    def counts(self) -> dict[str, int]:
        """``{"pending", "leased", "done"}`` file counts."""
        return {
            "pending": sum(1 for _ in self.tasks_dir.glob("*.json")),
            "leased": sum(
                1
                for path in self.leases_dir.glob("*.json")
                if not path.name.endswith(".claim.json")
            ),
            "done": sum(1 for _ in self.done_dir.glob("*.json")),
        }

    def is_drained(self) -> bool:
        """True when nothing is pending or in flight."""
        counts = self.counts()
        return counts["pending"] == 0 and counts["leased"] == 0

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _write_json(path: Path, payload: dict[str, Any]) -> None:
        """tmp-then-rename write so readers never observe a torn file."""
        tmp_path = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        with open(tmp_path, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, path)


class _LeaseHeartbeat:
    """Daemon ticker that keeps a claimed cell's lease fresh mid-execution.

    Ticks every ``lease_seconds / 4``, so ``lease_seconds`` can sit near
    the *median* cell cost instead of padding for the slowest tail.  If a
    heartbeat ever fails — the lease was reclaimed out from under a
    stalled worker, or the filesystem went away — ``lost`` latches True
    and the drainer must treat its in-flight execution as speculative:
    finish (it cannot safely interrupt the cell) but never ack.
    """

    def __init__(self, queue: WorkQueue, cell_id: str, worker: str) -> None:
        self._queue = queue
        self._cell_id = cell_id
        self._worker = worker
        self._stop = threading.Event()
        self._lost = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"lease-heartbeat-{cell_id}", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        interval = max(0.05, self._queue.lease_seconds / 4)
        while not self._stop.wait(interval):
            try:
                alive = self._queue.extend_lease(self._cell_id, self._worker)
            except OSError:
                continue  # transient I/O: the next tick retries
            if not alive:
                self._lost.set()
                return

    def stop(self) -> bool:
        """Stop ticking; returns True while the lease was never lost."""
        self._stop.set()
        self._thread.join(timeout=5.0)
        return not self._lost.is_set()


def drain_queue(
    campaign_dir: str | Path,
    *,
    worker: str | None = None,
    lease_seconds: float = 600.0,
    poll_interval: float = 0.2,
    idle_timeout: float | None = None,
    max_cells: int | None = None,
    heartbeat: bool = True,
    progress=None,
) -> int:
    """Run cells from a campaign's queue until it is drained; returns count.

    This is the body of ``python -m repro.cli work <dir>`` and of the
    local workers :class:`~repro.orchestration.backends.WorkQueueBackend`
    spawns.  The loop claims a cell, executes it via
    :func:`~repro.orchestration.worker.run_cell` (which never raises), and
    acks the outcome; when nothing is pending it reclaims expired leases,
    then exits once the queue is fully drained (or after ``idle_timeout``
    seconds without work — for workers started before the coordinator has
    enqueued anything).

    Every cell execution also feeds the campaign's event trail (the
    payloads carry ``events_path``), plus ``worker_started`` /
    ``worker_finished`` markers from this drainer itself.
    """
    from repro.orchestration.worker import run_cell

    queue = WorkQueue(campaign_dir, lease_seconds=lease_seconds)
    worker = worker or default_worker_label()
    events = EventWriter(Path(campaign_dir) / EVENTS_NAME, worker=worker)
    events.emit("worker_started")
    executed = 0
    idle_since: float | None = None
    # Reclaim is a full leases/ scan (every claim sidecar read); doing it
    # on every idle poll would be a metadata storm on shared filesystems,
    # so idle drainers throttle it the way the coordinator does.
    reclaim_interval = max(1.0, lease_seconds / 4)
    last_reclaim = 0.0
    try:
        while max_cells is None or executed < max_cells:
            try:
                payload = queue.claim(worker)
            except OSError:
                # Transient filesystem failure mid-claim: any half-taken
                # lease will expire and be reclaimed; just poll again.
                payload = None
            if payload is None:
                if time.monotonic() - last_reclaim >= reclaim_interval:
                    try:
                        queue.reclaim_expired()
                    except OSError:
                        pass
                    last_reclaim = time.monotonic()
                # With an idle timeout the worker lingers even on a fully
                # drained queue (it may have been started before the
                # coordinator enqueued, or more waves may be coming);
                # without one, a drained queue means the job is over.
                if idle_timeout is None and queue.is_drained():
                    break
                now = time.time()
                idle_since = idle_since if idle_since is not None else now
                if idle_timeout is not None and now - idle_since > idle_timeout:
                    break
                time.sleep(poll_interval)
                continue
            idle_since = None
            cell_id = str(payload["cell"]["cell_id"])
            ticker = _LeaseHeartbeat(queue, cell_id, worker) if heartbeat else None
            outcome = run_cell(payload)
            owns = ticker.stop() if ticker is not None else True
            if not owns:
                # The lease was reclaimed mid-cell (we stalled past it, or
                # the clock was yanked): someone else owns this cell now.
                # Acking would double-deliver; drop the result.
                events.emit("cell_lease_lost", cell_id=cell_id)
                _LOGGER.warning(
                    "lost lease on %s mid-execution; discarding result", cell_id
                )
                continue
            try:
                acked = queue.ack_owned(cell_id, worker, outcome)
            except OSError:
                acked = False
            if not acked:
                events.emit("cell_lease_lost", cell_id=cell_id)
                _LOGGER.warning(
                    "lease on %s gone at ack time; discarding result", cell_id
                )
                continue
            executed += 1
            if progress is not None:
                progress(outcome, executed)
    finally:
        events.emit("worker_finished", cells=executed)
    return executed
