"""Durable on-disk work queue: lease/ack cell distribution for campaigns.

The queue is a directory protocol under ``<campaign>/queue/`` that lets any
number of independent worker processes — local children of the
coordinator, or ``python -m repro.cli work <dir>`` drainers started by hand
on any machine sharing the filesystem — drain one campaign without a
broker:

* ``tasks/<cell_id>.json`` — a pending cell payload, exactly what
  :func:`~repro.orchestration.worker.run_cell` consumes;
* ``leases/<cell_id>.json`` — a claimed cell.  Claiming is one atomic
  :func:`os.rename` from ``tasks/`` to ``leases/``, so two workers racing
  for the same cell cannot both win: the loser's rename raises and it
  moves on.  A sidecar ``<cell_id>.claim.json`` records who holds the
  lease and since when;
* ``done/<cell_id>.json`` — the acked outcome, written tmp-then-rename so
  readers never see a torn file.  Acking also releases the lease.

A worker that dies mid-cell leaves its lease behind; anyone calling
:meth:`WorkQueue.reclaim_expired` (the coordinator does, and so do idle
workers) moves leases older than ``lease_seconds`` back to ``tasks/``, so
the cell is re-run by someone else instead of being lost.  Outcomes are
consumed by the coordinator (:meth:`WorkQueue.pop_outcomes`), which
records them into the result store — workers never touch the store, so
the single-writer store contract holds no matter how many drainers run.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Any

from repro.logging_utils import get_logger
from repro.orchestration.events import EVENTS_NAME, EventWriter, default_worker_label

__all__ = ["QUEUE_DIR_NAME", "WorkQueue", "drain_queue"]

QUEUE_DIR_NAME = "queue"

_LOGGER = get_logger("orchestration.queue")

#: Stamped into claim sidecars so expiry can tell whether the sidecar's
#: monotonic reading came from this host's clock.
_HOSTNAME = socket.gethostname()


class WorkQueue:
    """One campaign's durable cell queue (see module docstring).

    Parameters
    ----------
    campaign_dir:
        The campaign directory; the queue lives in its ``queue/`` subdir.
    lease_seconds:
        How long a claimed cell may go without finishing before
        :meth:`reclaim_expired` hands it back to the pending pool.  Must
        comfortably exceed the slowest cell's runtime.
    """

    def __init__(
        self, campaign_dir: str | Path, *, lease_seconds: float = 600.0
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be > 0, got {lease_seconds}")
        self.campaign_dir = Path(campaign_dir)
        self.queue_dir = self.campaign_dir / QUEUE_DIR_NAME
        self.lease_seconds = float(lease_seconds)
        self.tasks_dir = self.queue_dir / "tasks"
        self.leases_dir = self.queue_dir / "leases"
        self.done_dir = self.queue_dir / "done"
        for directory in (self.tasks_dir, self.leases_dir, self.done_dir):
            directory.mkdir(parents=True, exist_ok=True)
        # Pending-task names this instance has listed but not yet tried to
        # claim; refilled from the directory only when exhausted, so a
        # full drain lists tasks/ O(N/batch) times instead of once per
        # claim (N^2 directory scans hurt at large N, brutally so on NFS).
        self._claim_candidates: list[str] = []

    # -- producing ---------------------------------------------------------

    def enqueue(self, payloads: list[dict[str, Any]]) -> int:
        """Add pending cell payloads; already-known cells are skipped.

        A cell is "known" when it is pending, leased, or done — re-running
        ``sweep``/``resume`` against a live queue must not duplicate work
        that is already in flight.
        """
        added = 0
        for payload in payloads:
            cell_id = str(payload["cell"]["cell_id"])
            name = f"{cell_id}.json"
            if (
                (self.tasks_dir / name).exists()
                or (self.leases_dir / name).exists()
                or (self.done_dir / name).exists()
            ):
                continue
            self._write_json(self.tasks_dir / name, payload)
            added += 1
        return added

    # -- claiming ----------------------------------------------------------

    def claim(self, worker: str) -> dict[str, Any] | None:
        """Atomically claim one pending cell, or None when none are pending.

        The claim is the ``tasks/ -> leases/`` rename; losing a race for a
        particular cell just moves on to the next one.
        """
        for attempt in range(2):
            while self._claim_candidates:
                name = self._claim_candidates.pop()
                task_path = self.tasks_dir / name
                lease_path = self.leases_dir / name
                try:
                    # Refresh the mtime *before* renaming: rename preserves
                    # it, and the sidecar-less expiry fallback must age the
                    # lease from the claim, not from enqueue time.
                    os.utime(task_path)
                    os.rename(task_path, lease_path)
                except FileNotFoundError:
                    continue  # another worker won this cell
                claim_path = self.leases_dir / f"{task_path.stem}.claim.json"
                try:
                    self._write_json(claim_path, self._claim_record(worker))
                    with open(lease_path) as handle:
                        return json.load(handle)
                except FileNotFoundError:
                    # The lease vanished between rename and read — someone
                    # reclaimed it out from under us (clock skew on a
                    # shared filesystem).  Drop our sidecar and move on.
                    claim_path.unlink(missing_ok=True)
                    continue
            if attempt == 0:
                # Reverse-sorted so list.pop() (O(1), from the end) hands
                # out cells in ascending name order.
                self._claim_candidates = sorted(
                    (
                        entry.name
                        for entry in os.scandir(self.tasks_dir)
                        if entry.name.endswith(".json")
                    ),
                    reverse=True,
                )
        return None

    def extend_lease(self, cell_id: str, worker: str) -> None:
        """Refresh a held lease's heartbeat (long-running cells)."""
        claim_path = self.leases_dir / f"{cell_id}.claim.json"
        self._write_json(claim_path, self._claim_record(worker))

    @staticmethod
    def _claim_record(worker: str) -> dict[str, Any]:
        """A lease heartbeat: wall clock plus a monotonic reading.

        ``claimed_at`` (wall time) is what remote hosts compare against;
        ``monotonic``/``host`` let expiry checks on the *claiming* host use
        :func:`time.monotonic`, immune to NTP steps and manual clock
        changes that would otherwise expire (or immortalise) live leases.
        """
        return {
            "worker": worker,
            "claimed_at": time.time(),
            "monotonic": time.monotonic(),
            "host": _HOSTNAME,
        }

    @staticmethod
    def _lease_age(claim: dict[str, Any]) -> float:
        """Seconds since the claim heartbeat, preferring the monotonic clock.

        The monotonic reading is only meaningful on the host that wrote it
        and only while that host has not rebooted (a reboot restarts the
        monotonic clock, showing up as a negative age); in both of those
        cases the wall-clock timestamp is the fallback.
        """
        monotonic = claim.get("monotonic")
        if monotonic is not None and claim.get("host") == _HOSTNAME:
            age = time.monotonic() - float(monotonic)
            if age >= 0:
                return age
        return time.time() - float(claim["claimed_at"])

    def reclaim_expired(self) -> int:
        """Move leases past their deadline back to pending; returns count."""
        reclaimed = 0
        for lease_path in sorted(self.leases_dir.glob("*.json")):
            if lease_path.name.endswith(".claim.json"):
                continue
            claim_path = self.leases_dir / f"{lease_path.stem}.claim.json"
            try:
                with open(claim_path) as handle:
                    age = self._lease_age(json.load(handle))
            except (OSError, ValueError, KeyError, TypeError):
                # No readable claim sidecar (claimer died between renaming
                # and writing it): age the lease on the file's own mtime.
                try:
                    age = time.time() - lease_path.stat().st_mtime
                except OSError:
                    continue
            if age <= self.lease_seconds:
                continue
            try:
                os.rename(lease_path, self.tasks_dir / lease_path.name)
            except FileNotFoundError:
                continue  # acked (or reclaimed) by someone else meanwhile
            claim_path.unlink(missing_ok=True)
            reclaimed += 1
            _LOGGER.warning("reclaimed expired lease for %s", lease_path.stem)
        return reclaimed

    def release_worker_leases(self, should_release) -> int:
        """Hand leases held by matching workers back to the pending pool.

        ``should_release`` maps a worker label to True when its leases are
        known-stale.  The coordinator calls this for spawned local
        drainers it can *prove* dead — its own just-terminated workers at
        shutdown, and same-host workers whose pid no longer exists at
        startup.  External drainers' leases are never touched; a crashed
        external worker is covered by :meth:`reclaim_expired` instead.
        """
        released = 0
        for claim_path in sorted(self.leases_dir.glob("*.claim.json")):
            try:
                with open(claim_path) as handle:
                    worker = str(json.load(handle)["worker"])
            except (OSError, ValueError, KeyError):
                continue
            if not should_release(worker):
                continue
            lease_path = self.leases_dir / claim_path.name.replace(
                ".claim.json", ".json"
            )
            try:
                os.rename(lease_path, self.tasks_dir / lease_path.name)
            except FileNotFoundError:
                pass  # acked meanwhile; just drop the stale sidecar
            else:
                released += 1
                _LOGGER.info("released lease %s held by %s", lease_path.stem, worker)
            claim_path.unlink(missing_ok=True)
        return released

    # -- finishing ---------------------------------------------------------

    def ack(self, cell_id: str, outcome: dict[str, Any]) -> None:
        """Durably record a cell's outcome and release its lease."""
        self._write_json(self.done_dir / f"{cell_id}.json", outcome)
        (self.leases_dir / f"{cell_id}.json").unlink(missing_ok=True)
        (self.leases_dir / f"{cell_id}.claim.json").unlink(missing_ok=True)

    def pop_outcomes(self) -> list[dict[str, Any]]:
        """Consume every acked outcome (coordinator side; removes the files)."""
        outcomes = []
        for done_path in sorted(self.done_dir.glob("*.json")):
            try:
                with open(done_path) as handle:
                    outcomes.append(json.load(handle))
            except (OSError, ValueError):
                continue  # written this very instant; next poll gets it
            done_path.unlink(missing_ok=True)
        return outcomes

    def purge(self) -> None:
        """Drop every queued task, lease, and acked outcome.

        The ``resume=False`` (``--fresh``) path calls this before
        re-submitting: a fresh run promises every cell re-executes, so
        stale acked outcomes must not be replayed into the store and
        stale payloads must not shadow the new ones.
        """
        for directory in (self.tasks_dir, self.leases_dir, self.done_dir):
            for path in directory.glob("*.json"):
                path.unlink(missing_ok=True)
        self._claim_candidates = []

    # -- introspection -----------------------------------------------------

    def counts(self) -> dict[str, int]:
        """``{"pending", "leased", "done"}`` file counts."""
        return {
            "pending": sum(1 for _ in self.tasks_dir.glob("*.json")),
            "leased": sum(
                1
                for path in self.leases_dir.glob("*.json")
                if not path.name.endswith(".claim.json")
            ),
            "done": sum(1 for _ in self.done_dir.glob("*.json")),
        }

    def is_drained(self) -> bool:
        """True when nothing is pending or in flight."""
        counts = self.counts()
        return counts["pending"] == 0 and counts["leased"] == 0

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _write_json(path: Path, payload: dict[str, Any]) -> None:
        """tmp-then-rename write so readers never observe a torn file."""
        tmp_path = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        with open(tmp_path, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, path)


def drain_queue(
    campaign_dir: str | Path,
    *,
    worker: str | None = None,
    lease_seconds: float = 600.0,
    poll_interval: float = 0.2,
    idle_timeout: float | None = None,
    max_cells: int | None = None,
    progress=None,
) -> int:
    """Run cells from a campaign's queue until it is drained; returns count.

    This is the body of ``python -m repro.cli work <dir>`` and of the
    local workers :class:`~repro.orchestration.backends.WorkQueueBackend`
    spawns.  The loop claims a cell, executes it via
    :func:`~repro.orchestration.worker.run_cell` (which never raises), and
    acks the outcome; when nothing is pending it reclaims expired leases,
    then exits once the queue is fully drained (or after ``idle_timeout``
    seconds without work — for workers started before the coordinator has
    enqueued anything).

    Every cell execution also feeds the campaign's event trail (the
    payloads carry ``events_path``), plus ``worker_started`` /
    ``worker_finished`` markers from this drainer itself.
    """
    from repro.orchestration.worker import run_cell

    queue = WorkQueue(campaign_dir, lease_seconds=lease_seconds)
    worker = worker or default_worker_label()
    events = EventWriter(Path(campaign_dir) / EVENTS_NAME, worker=worker)
    events.emit("worker_started")
    executed = 0
    idle_since: float | None = None
    # Reclaim is a full leases/ scan (every claim sidecar read); doing it
    # on every idle poll would be a metadata storm on shared filesystems,
    # so idle drainers throttle it the way the coordinator does.
    reclaim_interval = max(1.0, lease_seconds / 4)
    last_reclaim = 0.0
    try:
        while max_cells is None or executed < max_cells:
            payload = queue.claim(worker)
            if payload is None:
                if time.monotonic() - last_reclaim >= reclaim_interval:
                    queue.reclaim_expired()
                    last_reclaim = time.monotonic()
                # With an idle timeout the worker lingers even on a fully
                # drained queue (it may have been started before the
                # coordinator enqueued, or more waves may be coming);
                # without one, a drained queue means the job is over.
                if idle_timeout is None and queue.is_drained():
                    break
                now = time.time()
                idle_since = idle_since if idle_since is not None else now
                if idle_timeout is not None and now - idle_since > idle_timeout:
                    break
                time.sleep(poll_interval)
                continue
            idle_since = None
            outcome = run_cell(payload)
            queue.ack(str(outcome["cell_id"]), outcome)
            executed += 1
            if progress is not None:
                progress(outcome, executed)
    finally:
        events.emit("worker_finished", cells=executed)
    return executed
