"""The campaign event bus: a typed JSONL trail from workers to observers.

Every campaign appends progress events to ``events.jsonl`` inside its
directory: the coordinator announces the campaign (``campaign_started`` /
``campaign_finished``), each worker announces every cell it touches
(``cell_started``, then ``cell_finished`` or ``cell_failed`` carrying the
wall-clock duration and a scalar metric snapshot).  The trail is the
streaming seam between execution and observation:

* ``python -m repro.cli watch <dir>`` tails it into a live terminal
  dashboard while the campaign runs (any backend, any host sharing the
  filesystem);
* :class:`~repro.orchestration.scheduler.SuccessiveHalvingScheduler`
  consumes ``cell_finished`` snapshots to rank arms and reallocate budget;
* post-hoc, the trail is a greppable timing log (who ran what, where,
  how long) that the result store deliberately does not duplicate.

Writes are one ``O_APPEND`` line per event, so workers in different
processes (local pool workers, ``repro.cli work`` drainers on other
machines sharing the directory) interleave without locks; lines are far
below ``PIPE_BUF`` except for pathological metric payloads, and the reader
side skips any line that fails to parse rather than dying mid-tail.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.faults import fault_point, torn_write_point
from repro.logging_utils import get_logger

_LOGGER = get_logger("orchestration.events")

__all__ = [
    "EVENTS_NAME",
    "CampaignEvent",
    "EventWriter",
    "read_events",
    "follow_events",
    "metric_snapshot",
]

EVENTS_NAME = "events.jsonl"


@dataclass(frozen=True)
class CampaignEvent:
    """One typed entry of the campaign event trail.

    Attributes
    ----------
    type:
        ``campaign_started``, ``cell_started``, ``cell_finished``,
        ``cell_failed``, ``cell_retry``, ``cell_quarantined``,
        ``campaign_finished``; ``worker_started`` / ``worker_finished``
        / ``cell_lease_lost`` for queue drainers.
    timestamp:
        Unix time the event was emitted.
    cell_id:
        The cell concerned, when the event is cell-scoped.
    worker:
        Emitting worker label (``host:pid`` by default).
    data:
        Event-specific payload: durations, counts, metric snapshots.
    """

    type: str
    timestamp: float
    cell_id: str | None = None
    worker: str | None = None
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        entry: dict[str, Any] = {"type": self.type, "timestamp": self.timestamp}
        if self.cell_id is not None:
            entry["cell_id"] = self.cell_id
        if self.worker is not None:
            entry["worker"] = self.worker
        if self.data:
            entry["data"] = self.data
        return entry

    @classmethod
    def from_dict(cls, entry: dict[str, Any]) -> "CampaignEvent":
        return cls(
            type=str(entry["type"]),
            timestamp=float(entry["timestamp"]),
            cell_id=entry.get("cell_id"),
            worker=entry.get("worker"),
            data=dict(entry.get("data", {})),
        )


def default_worker_label() -> str:
    """``host:pid`` — unique enough to attribute events across machines."""
    return f"{os.uname().nodename}:{os.getpid()}"


def metric_snapshot(metrics: dict[str, Any]) -> dict[str, Any]:
    """The scalar slice of a metrics row — what cell events carry.

    Series-valued metrics (``per_round_regret`` and friends) stay in the
    result store; the event trail only needs numbers a dashboard or a
    scheduler can rank on.
    """
    return {
        key: value
        for key, value in metrics.items()
        if isinstance(value, (int, float, bool, str))
    }


class EventWriter:
    """Appends :class:`CampaignEvent` lines to a campaign's trail.

    Safe to construct in any process; each emit opens, appends one line,
    and closes, so concurrent writers never interleave partial lines
    (``O_APPEND`` semantics).  A ``None`` path makes every emit a no-op,
    which is how event emission is disabled without branching at call
    sites.
    """

    def __init__(self, path: str | Path | None, *, worker: str | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self.worker = worker if worker is not None else default_worker_label()
        self._warned = False

    def emit(
        self,
        type: str,
        *,
        cell_id: str | None = None,
        **data: Any,
    ) -> None:
        """Append one event (no-op when the writer is disabled).

        The trail is observability, not correctness: if the append fails
        (disk full, the directory went away) the event is dropped with a
        one-time warning rather than turning a healthy cell execution
        into a failed one.
        """
        if self.path is None:
            return
        event = CampaignEvent(
            type=type,
            timestamp=time.time(),
            cell_id=cell_id,
            worker=self.worker,
            data=data,
        )
        line = json.dumps(event.to_dict(), sort_keys=True)
        try:
            fault_point("events.emit")
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a") as handle:
                handle.write(line + "\n")
        except OSError as error:
            if not self._warned:
                self._warned = True
                _LOGGER.warning(
                    "dropping campaign events (%s): %s", self.path, error
                )
            return
        # The torn-write probe sits after a *successful* append and only
        # tears within this event's own line, so chaos runs exercise the
        # readers' torn-line tolerance without rewriting history.
        torn_write_point("events.emit", self.path, tail_bytes=len(line))


def read_events(path: str | Path) -> list[CampaignEvent]:
    """Parse a whole event trail; a missing file is an empty trail.

    Unparseable lines (a torn write from a worker killed mid-append) are
    skipped — observers must keep working against a trail that is being
    written this instant.
    """
    path = Path(path)
    if not path.exists():
        return []
    events = []
    with open(path) as handle:
        for line in handle:
            try:
                events.append(CampaignEvent.from_dict(json.loads(line)))
            except (ValueError, KeyError):
                continue
    return events


def follow_events(
    path: str | Path,
    *,
    poll_interval: float = 0.25,
    from_start: bool = True,
    stop: Any | None = None,
) -> Iterator[CampaignEvent]:
    """``tail -f`` over an event trail (yields events as they are appended).

    Starts before the file exists (the campaign may not have begun) and
    never returns on its own; pass ``stop`` (any object with a truthy
    ``is_set()``, e.g. ``threading.Event``) to break the loop, or close the
    generator.  ``from_start=False`` skips the existing backlog and yields
    only events appended after the call.

    A line still being appended is never parsed: bytes after the last
    newline stay buffered until the terminating ``\\n`` lands, then the
    completed event is yielded — the tailer drops nothing a slow or
    interrupted writer eventually finishes.  Reads are *binary* with
    per-line decoding, so a read boundary falling inside a multi-byte
    character cannot corrupt the line the way a text-mode read would.
    A shrinking file (trail truncated or rotated underneath the tailer)
    resets the follower to the new beginning instead of wedging it past
    the end forever.
    """
    path = Path(path)
    position = 0
    if not from_start and path.exists():
        position = path.stat().st_size
    buffer = b""
    while True:
        try:
            size = path.stat().st_size
        except OSError:
            size = None
        if size is not None:
            if size < position:
                # Truncated/rotated underneath us: start over from the
                # top of whatever the file is now (any half-line we were
                # buffering belonged to the old incarnation).
                position = 0
                buffer = b""
            if size > position:
                with open(path, "rb") as handle:
                    handle.seek(position)
                    chunk = handle.read()
                    position = handle.tell()
                buffer += chunk
                while b"\n" in buffer:
                    raw, buffer = buffer.split(b"\n", 1)
                    try:
                        line = raw.decode("utf-8")
                        yield CampaignEvent.from_dict(json.loads(line))
                    except (ValueError, KeyError):
                        continue
        if stop is not None and stop.is_set():
            return
        time.sleep(poll_interval)
