"""Columnar NPZ result store for million-cell campaigns.

The SQLite+JSONL default backend pays per-row costs three times per record
(SQL upsert, commit fsync, JSONL append) and stores every metric value as
JSON text.  That is the right trade for thousand-cell campaigns a human
greps through; at millions of cells the campaign's result store becomes a
columnar dataset and should be stored like one.

:class:`ColumnarStoreBackend` keeps the whole result set as parallel
arrays and persists them as one compressed ``results.npz``:

* identity/status columns (``cell_id``, ``mechanism``, ``scenario``,
  ``seed``, ``status``, ``duration_seconds``, ``attempts``) are plain
  typed arrays;
* float-valued metrics are packed into one ``(cells, keys)`` float64
  matrix plus a presence mask — 8 bytes per number instead of JSON text,
  and aggregation reads (:meth:`metric_column`) are a single masked
  column slice;
* everything non-float (int counters, bools, strings, series diagnostics)
  rides in a small residual JSON column, so metric dicts round-trip
  *exactly* — the backend-equivalence suite pins columnar reads equal to
  SQLite reads bit for bit.

Writes go through an atomic tmp-file + :func:`os.replace`, so a campaign
killed mid-record resumes from the last complete snapshot.  Each flush
rewrites the whole snapshot, so the default cadence is *adaptive*: every
record flushes while the store is small (kill-anywhere durability, like
SQLite), and once the row count grows the flush amortises to every
``rows/256`` records — total rewrite work stays linear in the campaign
size, and a kill re-runs at most that sliver of recent cells (cells are
deterministic, so resume converges to identical results regardless).
Pass an explicit ``flush_every`` to pin the cadence instead.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

import numpy as np

from repro.faults import torn_write_point
from repro.logging_utils import get_logger
from repro.orchestration.store import (
    CellResult,
    StoreBackend,
    resolve_event_log_path,
)
from repro.utils.serialization import to_jsonable

__all__ = ["ColumnarStoreBackend"]

_LOGGER = get_logger("orchestration.columnar")


def _is_float_metric(value: Any) -> bool:
    # bool is an int subclass but never a float; keep exact types so the
    # rebuilt metrics dict compares equal to what SQLite round-trips.
    return isinstance(value, float)


class ColumnarStoreBackend(StoreBackend):
    """One compressed NPZ of parallel columns per campaign.

    Rows live in memory (a million rows of scalars is tens of MB) and are
    snapshotted to ``results.npz`` atomically.  See the module docstring
    for the layout and the durability trade.
    """

    name = "columnar"
    NPZ_NAME = "results.npz"
    #: Previous good snapshot, rotated on every flush.  The crash window
    #: of the snapshot dance (torn tmp write, or death between the two
    #: renames) therefore never loses more than one flush interval: the
    #: load chain falls back ``results.npz`` → ``results.npz.bak`` →
    #: empty, and deterministic cells re-run to identical rows.
    BAK_NAME = "results.npz.bak"

    def __init__(
        self, campaign_dir: str | Path, *, flush_every: int | None = None
    ) -> None:
        if flush_every is not None and flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.campaign_dir = Path(campaign_dir)
        self.campaign_dir.mkdir(parents=True, exist_ok=True)
        self.flush_every = int(flush_every) if flush_every is not None else None
        self._path = self.campaign_dir / self.NPZ_NAME
        self._bak_path = self.campaign_dir / self.BAK_NAME
        self._rows: dict[str, dict[str, Any]] = {}
        self._dirty = 0
        self._closed = False
        self._recover_and_load()

    # -- persistence -------------------------------------------------------

    def _recover_and_load(self) -> None:
        """Open the snapshot, falling back to the ``.bak`` on a torn file."""
        if self._path.exists():
            try:
                self._load(self._path)
                return
            except Exception:
                # A torn or otherwise unreadable snapshot (np.load surfaces
                # truncation as BadZipFile/OSError/ValueError depending on
                # where the tear landed).  Park it for post-mortems and
                # fall through to the rotated predecessor.
                corrupt = self._path.with_suffix(".npz.corrupt")
                _LOGGER.warning(
                    "torn columnar snapshot %s; recovering from %s",
                    self._path,
                    self._bak_path if self._bak_path.exists() else "empty",
                )
                try:
                    os.replace(self._path, corrupt)
                except OSError:
                    pass
        if self._bak_path.exists():
            try:
                self._load(self._bak_path)
            except Exception:
                _LOGGER.warning(
                    "backup snapshot %s also unreadable; starting empty",
                    self._bak_path,
                )
                self._rows = {}

    def _load(self, path: Path) -> None:
        with np.load(path, allow_pickle=False) as archive:
            cell_ids = archive["cell_id"]
            metric_keys = [str(key) for key in archive["metric_keys"]]
            values = archive["metric_values"]
            mask = archive["metric_mask"]
            for row_index in range(cell_ids.shape[0]):
                metrics: dict[str, Any] | None = json.loads(
                    str(archive["residual_metrics"][row_index])
                )
                if metrics is not None:
                    for key_index, key in enumerate(metric_keys):
                        if mask[row_index, key_index]:
                            metrics[key] = float(values[row_index, key_index])
                cell_id = str(cell_ids[row_index])
                self._rows[cell_id] = {
                    "cell_id": cell_id,
                    "mechanism": str(archive["mechanism"][row_index]),
                    "scenario": str(archive["scenario"][row_index]),
                    "seed": int(archive["seed"][row_index]),
                    "params": json.loads(str(archive["params"][row_index])),
                    "status": str(archive["status"][row_index]),
                    "metrics": metrics,
                    "error": json.loads(str(archive["error"][row_index])),
                    "duration_seconds": float(
                        archive["duration_seconds"][row_index]
                    ),
                    "attempts": int(archive["attempts"][row_index]),
                    "event_log_path": json.loads(
                        str(archive["event_log_path"][row_index])
                    ),
                    # Archives written before this column existed load as
                    # None everywhere.
                    "exception_type": (
                        json.loads(str(archive["exception_type"][row_index]))
                        if "exception_type" in archive.files
                        else None
                    ),
                }

    def flush(self) -> None:
        """Snapshot every row to ``results.npz`` (atomic replace)."""
        rows = [self._rows[cell_id] for cell_id in sorted(self._rows)]
        metric_keys = sorted(
            {
                key
                for row in rows
                if row["metrics"] is not None
                for key, value in row["metrics"].items()
                if _is_float_metric(value)
            }
        )
        key_index = {key: i for i, key in enumerate(metric_keys)}
        values = np.zeros((len(rows), len(metric_keys)))
        mask = np.zeros((len(rows), len(metric_keys)), dtype=bool)
        residuals = []
        for row_index, row in enumerate(rows):
            metrics = row["metrics"]
            if metrics is None:
                residuals.append(json.dumps(None))
                continue
            residual = {}
            for key, value in metrics.items():
                if _is_float_metric(value):
                    column = key_index[key]
                    values[row_index, column] = value
                    mask[row_index, column] = True
                else:
                    residual[key] = value
            residuals.append(json.dumps(to_jsonable(residual), sort_keys=True))

        columns = {
            "cell_id": np.array([row["cell_id"] for row in rows], dtype=str),
            "mechanism": np.array([row["mechanism"] for row in rows], dtype=str),
            "scenario": np.array([row["scenario"] for row in rows], dtype=str),
            "seed": np.array([row["seed"] for row in rows], dtype=np.int64),
            "params": np.array(
                [json.dumps(to_jsonable(row["params"]), sort_keys=True) for row in rows],
                dtype=str,
            ),
            "status": np.array([row["status"] for row in rows], dtype=str),
            "metric_keys": np.array(metric_keys, dtype=str),
            "metric_values": values,
            "metric_mask": mask,
            "residual_metrics": np.array(residuals, dtype=str),
            "error": np.array(
                [json.dumps(row["error"]) for row in rows], dtype=str
            ),
            "duration_seconds": np.array(
                [row["duration_seconds"] for row in rows], dtype=np.float64
            ),
            "attempts": np.array([row["attempts"] for row in rows], dtype=np.int64),
            "event_log_path": np.array(
                [json.dumps(row["event_log_path"]) for row in rows], dtype=str
            ),
            "exception_type": np.array(
                [json.dumps(row.get("exception_type")) for row in rows], dtype=str
            ),
        }
        handle, tmp_path = tempfile.mkstemp(
            dir=self.campaign_dir, prefix=".results-", suffix=".npz.tmp"
        )
        try:
            with os.fdopen(handle, "wb") as tmp:
                np.savez_compressed(tmp, **columns)
            # Rotate before replacing: if the process dies between these
            # two renames the final is briefly absent, but the .bak it
            # just became is a complete snapshot and the load chain (and
            # detect_store_backend) know to use it.
            if self._path.exists():
                os.replace(self._path, self._bak_path)
            os.replace(tmp_path, self._path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        self._dirty = 0
        torn_write_point("store.flush", self._path)

    def close(self) -> None:
        if self._closed:
            return
        if self._dirty:
            self.flush()
        self._closed = True

    # -- StoreBackend ------------------------------------------------------

    def record(
        self,
        cell: Any,
        *,
        status: str,
        metrics: dict[str, Any] | None,
        error: str | None,
        duration_seconds: float,
        event_log_path: str | None,
        attempts: int = 1,
        exception_type: str | None = None,
    ) -> None:
        previous = self._rows.get(cell.cell_id)
        total_attempts = (previous["attempts"] if previous else 0) + max(
            1, int(attempts)
        )
        self._rows[cell.cell_id] = {
            "cell_id": cell.cell_id,
            "mechanism": cell.mechanism,
            "scenario": cell.scenario,
            "seed": int(cell.seed),
            "params": to_jsonable(cell.params),
            "status": status,
            "metrics": to_jsonable(metrics) if metrics is not None else None,
            "error": error,
            "duration_seconds": float(duration_seconds),
            "attempts": total_attempts,
            "event_log_path": event_log_path,
            "exception_type": exception_type,
        }
        self._dirty += 1
        # Adaptive default: per-record durability while cheap, amortised
        # (every rows/256 records) once each flush rewrites a large
        # snapshot — see the module docstring for the trade.
        threshold = (
            self.flush_every
            if self.flush_every is not None
            else max(1, len(self._rows) // 256)
        )
        if self._dirty >= threshold:
            self.flush()

    def completed_ids(self) -> set[str]:
        return {
            cell_id
            for cell_id, row in self._rows.items()
            if row["status"] == "completed"
        }

    def results(self, *, status: str | None = None) -> list[CellResult]:
        rows = [self._rows[cell_id] for cell_id in sorted(self._rows)]
        return [
            CellResult(
                cell_id=row["cell_id"],
                mechanism=row["mechanism"],
                scenario=row["scenario"],
                seed=row["seed"],
                params=row["params"],
                status=row["status"],
                metrics=row["metrics"] if row["metrics"] is not None else {},
                error=row["error"],
                duration_seconds=row["duration_seconds"],
                attempts=row["attempts"],
                event_log_path=resolve_event_log_path(
                    self.campaign_dir, row["event_log_path"]
                ),
                exception_type=row.get("exception_type"),
            )
            for row in rows
            if status is None or row["status"] == status
        ]

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for row in self._rows.values():
            counts[row["status"]] = counts.get(row["status"], 0) + 1
        return counts

    # -- columnar extras ---------------------------------------------------

    def metric_column(self, metric: str) -> tuple[np.ndarray, np.ndarray]:
        """``(cell_ids, values)`` of one float metric across completed cells.

        The aggregation fast path for huge campaigns: no per-row dict
        materialisation, just the cells that carry the metric, in cell-id
        order.
        """
        cell_ids = []
        values = []
        for cell_id in sorted(self._rows):
            row = self._rows[cell_id]
            metrics = row["metrics"]
            if metrics is not None and _is_float_metric(metrics.get(metric)):
                cell_ids.append(cell_id)
                values.append(metrics[metric])
        return np.array(cell_ids, dtype=str), np.array(values, dtype=float)
