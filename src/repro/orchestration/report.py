"""Campaign aggregation: stored cells in, paper-style tables out.

Two complementary views of a finished (or partially finished) campaign:

* **Metric aggregation** — group the result store's per-cell metric rows by
  any axes and summarise each group across seeds with
  :func:`repro.analysis.stats.summarize` (mean ± CI).  This is how the
  paper's multi-seed comparison tables (E2/E11 style) are regenerated
  without re-simulating anything.
* **Event-log slices** — reload the archived per-cell event logs of one
  (scenario, seed) slice and hand them to
  :mod:`repro.analysis.reporting`, reproducing the single-run headline
  tables exactly as the benchmarks print them.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.analysis.reporting import mechanism_comparison_table, payment_table
from repro.analysis.stats import SummaryStatistics, summarize
from repro.config import ExperimentConfig
from repro.orchestration.store import CellResult, ResultStore, detect_store_backend
from repro.simulation.events import EventLog
from repro.telemetry import (
    TELEMETRY_TRAIL_NAME,
    merge_snapshots,
    read_trail,
    render_snapshot,
)
from repro.simulation.replay import load_event_log
from repro.utils.serialization import load_json
from repro.utils.tables import format_table

__all__ = [
    "load_results",
    "group_results",
    "aggregate_metric",
    "welfare_comparison_table",
    "throughput_table",
    "failure_table",
    "slice_event_logs",
    "event_log_tables",
    "timing_report",
    "campaign_report",
]

GroupKey = tuple[str, ...]


def load_results(campaign_dir: str | Path) -> list[CellResult]:
    """All recorded cells of a campaign directory.

    A directory without a result store yields an empty list (and is not
    created as a side effect — reporting is read-only).
    """
    campaign_dir = Path(campaign_dir)
    backend = detect_store_backend(campaign_dir)
    if backend is None:
        return []
    with ResultStore(campaign_dir, backend=backend) as store:
        return store.results()


def _key_of(result: CellResult, by: Sequence[str]) -> GroupKey:
    parts = []
    for axis in by:
        if axis == "mechanism":
            parts.append(result.mechanism)
        elif axis == "scenario":
            parts.append(result.scenario)
        elif axis == "seed":
            parts.append(str(result.seed))
        else:
            parts.append(str(result.params.get(axis, "-")))
    return tuple(parts)


def group_results(
    results: Iterable[CellResult], by: Sequence[str] = ("mechanism",)
) -> dict[GroupKey, list[CellResult]]:
    """Group completed cells by axis values (insertion-ordered)."""
    groups: dict[GroupKey, list[CellResult]] = {}
    for result in results:
        if not result.completed:
            continue
        groups.setdefault(_key_of(result, by), []).append(result)
    return groups


def aggregate_metric(
    results: Iterable[CellResult],
    metric: str,
    *,
    by: Sequence[str] = ("mechanism",),
) -> dict[GroupKey, SummaryStatistics]:
    """Mean ± CI of one stored metric per group (groups missing it skipped)."""
    aggregates = {}
    for key, members in group_results(results, by).items():
        values = [
            float(member.metrics[metric])
            for member in members
            if metric in member.metrics and member.metrics[metric] is not None
        ]
        if values:
            aggregates[key] = summarize(values)
    return aggregates


def welfare_comparison_table(
    results: Iterable[CellResult],
    *,
    by: Sequence[str] = ("mechanism", "scenario"),
    title: str = "Campaign welfare comparison",
) -> str:
    """The E2-style headline table, aggregated across seeds per group."""
    results = list(results)
    rows = []
    for key, members in group_results(results, by).items():
        welfare = summarize([m.metrics["total_welfare"] for m in members])
        spend = summarize([m.metrics["average_payment"] for m in members])
        over = summarize([m.metrics["spend_over_budget"] for m in members])
        winners = summarize([m.metrics["winners_per_round"] for m in members])
        jain = summarize([m.metrics["jain_index"] for m in members])
        compliant = sum(bool(m.metrics["budget_compliant"]) for m in members)
        rows.append(
            [
                " / ".join(key),
                welfare.mean,
                (welfare.ci_high - welfare.ci_low) / 2,
                spend.mean,
                over.mean,
                f"{compliant}/{len(members)}",
                winners.mean,
                jain.mean,
            ]
        )
    return format_table(
        [
            " × ".join(by),
            "welfare (mean)",
            "±ci",
            "avg_spend/round",
            "spend/budget",
            "compliant",
            "winners/round",
            "jain",
        ],
        rows,
        title=title,
    )


def throughput_table(
    results: Iterable[CellResult], *, title: str = "Cell throughput"
) -> str:
    """Per-group wall-clock timing: how fast the campaign simulates."""
    rows = []
    for key, members in group_results(results, ("mechanism", "scenario")).items():
        duration = summarize([m.duration_seconds for m in members])
        rps = summarize(
            [float(m.metrics.get("rounds_per_second", 0.0)) for m in members]
        )
        rows.append([" / ".join(key), len(members), duration.mean, rps.mean])
    return format_table(
        ["mechanism / scenario", "cells", "sec/cell (mean)", "rounds/sec (mean)"],
        rows,
        title=title,
    )


def failure_table(
    results: Iterable[CellResult], *, title: str = "Failed cells"
) -> str | None:
    """Crashed cells and the last line of each traceback, or None if clean."""
    rows = []
    for result in results:
        if result.status != "failed":
            continue
        last_line = (result.error or "").strip().splitlines()[-1:]
        rows.append(
            [
                result.cell_id,
                result.attempts,
                result.exception_type or "?",
                last_line[0] if last_line else "?",
            ]
        )
    if not rows:
        return None
    return format_table(
        ["cell_id", "attempts", "exception", "error"], rows, title=title
    )


def _resolve_slice(
    completed: list[CellResult], scenario: str | None, seed: int | None
) -> tuple[str | None, int | None]:
    """Default a (scenario, seed) slice to the first one present."""
    if not completed:
        return scenario, seed
    if scenario is None:
        scenario = completed[0].scenario
    if seed is None:
        seeds = sorted({r.seed for r in completed if r.scenario == scenario})
        seed = seeds[0] if seeds else None
    return scenario, seed


def slice_event_logs(
    results: Iterable[CellResult],
    *,
    scenario: str | None = None,
    seed: int | None = None,
) -> dict[str, EventLog]:
    """Reload archived event logs of one slice, keyed by mechanism name.

    Defaults to the first scenario/seed present, so a plain
    ``slice_event_logs(results)`` yields one log per mechanism from a
    mutually comparable environment.
    """
    completed = [r for r in results if r.completed and r.event_log_path]
    scenario, seed = _resolve_slice(completed, scenario, seed)
    logs: dict[str, EventLog] = {}
    for result in completed:
        if result.scenario != scenario or result.seed != seed:
            continue
        if result.mechanism in logs:  # param axes: keep the first variant
            continue
        path = Path(result.event_log_path)
        if path.exists():
            logs[result.mechanism] = load_event_log(path)
    return logs


def event_log_tables(
    campaign_dir: str | Path,
    *,
    scenario: str | None = None,
    seed: int | None = None,
) -> str | None:
    """Single-slice headline tables via :mod:`repro.analysis.reporting`.

    Reconstructs the benchmark-style mechanism-comparison and payment
    tables from the archived event logs of one (scenario, seed) slice, or
    returns None when the campaign has no reloadable logs.
    """
    campaign_dir = Path(campaign_dir)
    results = load_results(campaign_dir)
    completed = [r for r in results if r.completed and r.event_log_path]
    scenario, seed = _resolve_slice(completed, scenario, seed)
    logs = slice_event_logs(results, scenario=scenario, seed=seed)
    if not logs:
        return None
    # The config comes from a cell *inside* the slice so the budget and
    # client count match the logs being tabulated.
    sample = next(
        r
        for r in completed
        if r.scenario == scenario and r.seed == seed and r.mechanism in logs
    )
    config = ExperimentConfig(
        **load_json(campaign_dir / "cells" / sample.cell_id / "config.json")
    )
    table = mechanism_comparison_table(
        logs,
        budget_per_round=config.budget_per_round,
        client_ids=list(range(config.num_clients)),
        title=f"Mechanism comparison (scenario={scenario}, seed={seed})",
    )
    return table + "\n\n" + payment_table(logs)


def timing_report(campaign_dir: str | Path) -> str | None:
    """Span-tree timing breakdown merged from the campaign telemetry trail.

    Reads ``telemetry.jsonl`` (one snapshot line per cell executed with
    spans enabled — see :mod:`repro.telemetry`), merges every snapshot
    exactly through the histograms' bucket maps, and renders the indented
    span tree.  ``None`` when the campaign ran without span telemetry.
    """
    campaign_dir = Path(campaign_dir)
    records = read_trail(campaign_dir / TELEMETRY_TRAIL_NAME)
    if not records:
        return None
    merged = merge_snapshots([record["snapshot"] for record in records])
    workers = {record.get("worker") for record in records} - {None}
    return render_snapshot(
        merged,
        title=(
            f"Span timing ({len(records)} telemetry snapshots, "
            f"{len(workers)} workers)"
        ),
    )


def campaign_report(
    campaign_dir: str | Path,
    *,
    by: Sequence[str] = ("mechanism", "scenario"),
    include_event_logs: bool = False,
    include_timing: bool = False,
) -> str:
    """The full text report of a campaign directory."""
    from repro.orchestration.retry import load_quarantine_record, quarantined_ids

    results = load_results(campaign_dir)
    completed = [r for r in results if r.completed]
    sections = [
        f"Campaign: {Path(campaign_dir).resolve()}",
        f"cells recorded: {len(results)} ({len(completed)} completed, "
        f"{len(results) - len(completed)} failed)",
    ]
    quarantined = sorted(quarantined_ids(campaign_dir))
    if quarantined:
        rows = []
        for cell_id in quarantined:
            record = load_quarantine_record(campaign_dir, cell_id) or {}
            rows.append(
                [
                    cell_id,
                    record.get("attempts", "?"),
                    record.get("classification", "?"),
                    record.get("exception_type") or "?",
                ]
            )
        sections.append(
            format_table(
                ["cell_id", "attempts", "classification", "exception"],
                rows,
                title=(
                    f"Quarantined cells ({len(quarantined)} dead-lettered; "
                    f"full tracebacks under quarantine/)"
                ),
            )
        )
    if completed:
        sections.append(welfare_comparison_table(results, by=by))
        sections.append(throughput_table(results))
        accuracy = aggregate_metric(results, "final_accuracy", by=by)
        if accuracy:
            sections.append(
                format_table(
                    [" × ".join(by), "final_acc (mean)", "ci_low", "ci_high", "n"],
                    [
                        [" / ".join(key), s.mean, s.ci_low, s.ci_high, s.num_samples]
                        for key, s in accuracy.items()
                    ],
                    title="Learning performance",
                )
            )
    failures = failure_table(results)
    if failures is not None:
        sections.append(failures)
    if include_event_logs:
        log_tables = event_log_tables(campaign_dir)
        if log_tables is not None:
            sections.append(log_tables)
    if include_timing:
        timing = timing_report(campaign_dir)
        sections.append(
            timing
            if timing is not None
            else "No telemetry trail found (run the campaign with "
            "--telemetry spans or REPRO_TELEMETRY=spans)."
        )
    return "\n\n".join(sections)
