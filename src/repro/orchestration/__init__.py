"""Parallel experiment orchestration: sweep grids, pluggable execution.

The paper's claims rest on multi-seed, multi-mechanism sweeps; this
subsystem turns those campaigns from hand-rolled loops into declarative,
parallel, resumable runs behind three public seams:

* :class:`SweepSpec` / :class:`CellSpec` — a declarative
  (mechanism × scenario × seed × params) grid expanded from one base
  :class:`~repro.config.ExperimentConfig` (:mod:`repro.orchestration.sweep`).
* :func:`run_campaign` / :func:`resume_campaign` — fan cells across an
  :class:`ExecutionBackend` (``inline`` / ``thread`` / ``process`` /
  ``work-queue``) with deterministic per-cell seeding, per-cell timing,
  and graceful failure capture (:mod:`repro.orchestration.executor`,
  :mod:`repro.orchestration.backends`).  The work-queue backend persists
  cells on disk with lease/ack semantics so any number of
  ``python -m repro.cli work <dir>`` drainers — local or remote — share
  one campaign (:mod:`repro.orchestration.queue`).
* :class:`ResultStore` / :class:`StoreBackend` — pluggable result
  persistence: the SQLite+JSONL default or a compact columnar NPZ for
  million-cell campaigns, sniffed automatically on resume
  (:mod:`repro.orchestration.store`, :mod:`repro.orchestration.columnar`).
* :class:`CampaignEvents <repro.orchestration.events.CampaignEvent>` bus —
  workers stream typed progress events to ``events.jsonl``;
  ``repro.cli watch`` renders it live and
  :func:`run_successive_halving` consumes it to early-stop dominated arms
  (:mod:`repro.orchestration.events`, :mod:`repro.orchestration.scheduler`).
* :func:`campaign_report`, :func:`welfare_comparison_table`,
  :func:`aggregate_metric` — regenerate the paper's comparison tables from
  stored results via :mod:`repro.analysis`
  (:mod:`repro.orchestration.report`).
* :class:`RetryPolicy` + quarantine — transient cell failures are retried
  with exponential backoff and capped attempts; cells that keep failing
  are dead-lettered under ``<campaign>/quarantine/`` with their full
  traceback instead of wedging the campaign
  (:mod:`repro.orchestration.retry`).  Deterministic fault injection for
  exercising these paths lives in :mod:`repro.faults`.

Quickstart::

    from repro.config import ExperimentConfig
    from repro.orchestration import SweepSpec, run_campaign, campaign_report

    spec = SweepSpec(
        base=ExperimentConfig(num_clients=30, num_rounds=200),
        mechanisms=("lt-vcg", "myopic-vcg", "random"),
        scenarios=("mechanism", "energy"),
        seeds=(0, 1, 2),
    )
    run_campaign(spec, "results/campaign")          # parallel, resumable
    print(campaign_report("results/campaign"))      # E2-style tables

The CLI mirrors this as ``python -m repro.cli sweep | resume | report |
work | watch``.
"""

from repro.orchestration.backends import (
    EXECUTION_BACKENDS,
    BackendCapabilities,
    ExecutionBackend,
    InlineBackend,
    ProcessBackend,
    ThreadBackend,
    WorkQueueBackend,
    resolve_backend,
)
from repro.orchestration.columnar import ColumnarStoreBackend
from repro.orchestration.events import (
    EVENTS_NAME,
    CampaignEvent,
    EventWriter,
    follow_events,
    read_events,
)
from repro.orchestration.executor import (
    CampaignSummary,
    resume_campaign,
    run_campaign,
)
from repro.orchestration.queue import WorkQueue, drain_queue
from repro.orchestration.retry import (
    QUARANTINE_DIR_NAME,
    RetryPolicy,
    classify_transient,
    clear_quarantine,
    load_quarantine_record,
    quarantine_cell,
    quarantined_ids,
)
from repro.orchestration.report import (
    aggregate_metric,
    campaign_report,
    event_log_tables,
    load_results,
    timing_report,
    welfare_comparison_table,
)
from repro.orchestration.scheduler import (
    ArmScore,
    HalvingResult,
    HalvingRung,
    SuccessiveHalvingScheduler,
    run_successive_halving,
)
from repro.orchestration.store import (
    STORE_BACKENDS,
    CellResult,
    ResultStore,
    SqliteJsonlBackend,
    StoreBackend,
    detect_store_backend,
)
from repro.orchestration.sweep import SCENARIO_NAMES, CellSpec, SweepSpec
from repro.orchestration.worker import execute_config, run_cell

__all__ = [
    "EVENTS_NAME",
    "EXECUTION_BACKENDS",
    "QUARANTINE_DIR_NAME",
    "SCENARIO_NAMES",
    "STORE_BACKENDS",
    "ArmScore",
    "BackendCapabilities",
    "CampaignEvent",
    "CampaignSummary",
    "CellResult",
    "CellSpec",
    "ColumnarStoreBackend",
    "EventWriter",
    "ExecutionBackend",
    "HalvingResult",
    "HalvingRung",
    "InlineBackend",
    "ProcessBackend",
    "ResultStore",
    "RetryPolicy",
    "SqliteJsonlBackend",
    "StoreBackend",
    "SuccessiveHalvingScheduler",
    "SweepSpec",
    "ThreadBackend",
    "WorkQueue",
    "WorkQueueBackend",
    "aggregate_metric",
    "campaign_report",
    "classify_transient",
    "clear_quarantine",
    "detect_store_backend",
    "drain_queue",
    "event_log_tables",
    "execute_config",
    "follow_events",
    "load_quarantine_record",
    "load_results",
    "quarantine_cell",
    "quarantined_ids",
    "read_events",
    "resolve_backend",
    "resume_campaign",
    "run_campaign",
    "run_cell",
    "run_successive_halving",
    "timing_report",
    "welfare_comparison_table",
]
