"""Parallel experiment orchestration: sweep grids, result store, resume.

The paper's claims rest on multi-seed, multi-mechanism sweeps; this
subsystem turns those campaigns from hand-rolled loops into declarative,
parallel, resumable runs:

* :class:`SweepSpec` / :class:`CellSpec` — a declarative
  (mechanism × scenario × seed × params) grid expanded from one base
  :class:`~repro.config.ExperimentConfig` (:mod:`repro.orchestration.sweep`).
* :func:`run_campaign` / :func:`resume_campaign` — fan cells across a
  process pool with deterministic per-cell seeding, per-cell timing, and
  graceful failure capture (:mod:`repro.orchestration.executor`).
* :class:`ResultStore` / :class:`CellResult` — SQLite index plus JSONL
  audit trail and per-cell event-log artifacts under one campaign
  directory; the checkpoint resume skips from
  (:mod:`repro.orchestration.store`).
* :func:`campaign_report`, :func:`welfare_comparison_table`,
  :func:`aggregate_metric` — regenerate the paper's comparison tables from
  stored results via :mod:`repro.analysis`
  (:mod:`repro.orchestration.report`).

Quickstart::

    from repro.config import ExperimentConfig
    from repro.orchestration import SweepSpec, run_campaign, campaign_report

    spec = SweepSpec(
        base=ExperimentConfig(num_clients=30, num_rounds=200),
        mechanisms=("lt-vcg", "myopic-vcg", "random"),
        scenarios=("mechanism", "energy"),
        seeds=(0, 1, 2),
    )
    run_campaign(spec, "results/campaign")          # parallel, resumable
    print(campaign_report("results/campaign"))      # E2-style tables

The CLI mirrors this as ``python -m repro.cli sweep | resume | report``.
"""

from repro.orchestration.executor import (
    CampaignSummary,
    resume_campaign,
    run_campaign,
)
from repro.orchestration.report import (
    aggregate_metric,
    campaign_report,
    event_log_tables,
    load_results,
    welfare_comparison_table,
)
from repro.orchestration.store import CellResult, ResultStore
from repro.orchestration.sweep import SCENARIO_NAMES, CellSpec, SweepSpec
from repro.orchestration.worker import execute_config, run_cell

__all__ = [
    "SCENARIO_NAMES",
    "CampaignSummary",
    "CellResult",
    "CellSpec",
    "ResultStore",
    "SweepSpec",
    "aggregate_metric",
    "campaign_report",
    "event_log_tables",
    "execute_config",
    "load_results",
    "resume_campaign",
    "run_campaign",
    "run_cell",
    "welfare_comparison_table",
]
