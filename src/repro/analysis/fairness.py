"""Participation-fairness metrics.

Sustainability requires spread-out participation: if a handful of cheap,
always-charged clients win every round, the global model overfits their
data and the rest of the federation has no reason to stay.  Standard
indices quantify the spread:

* :func:`jain_index` — 1 for perfectly equal participation, 1/n for a
  single-client monopoly;
* :func:`gini_coefficient` — 0 for equality, →1 for monopoly;
* starvation counts — clients below a minimum participation share.
"""

from __future__ import annotations

import numpy as np

from repro.simulation.events import EventLog

__all__ = [
    "jain_index",
    "gini_coefficient",
    "participation_rates",
    "starvation_count",
]


def jain_index(values: list[float] | np.ndarray) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)`` in ``[1/n, 1]``."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return 1.0
    if np.any(values < 0):
        raise ValueError("values must be non-negative")
    square_of_sum = values.sum() ** 2
    sum_of_squares = (values**2).sum()
    if sum_of_squares == 0:
        return 1.0
    return float(square_of_sum / (values.size * sum_of_squares))


def gini_coefficient(values: list[float] | np.ndarray) -> float:
    """Gini coefficient in ``[0, 1)``; 0 = perfect equality."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return 0.0
    if np.any(values < 0):
        raise ValueError("values must be non-negative")
    total = values.sum()
    if total == 0:
        return 0.0
    sorted_values = np.sort(values)
    n = values.size
    cumulative = np.cumsum(sorted_values)
    return float((n + 1 - 2 * (cumulative / total).sum()) / n)


def participation_rates(log: EventLog, client_ids: list[int]) -> dict[int, float]:
    """Fraction of rounds each client won (0 for never-selected clients)."""
    rounds = len(log)
    counts = log.selection_counts()
    if rounds == 0:
        return {cid: 0.0 for cid in client_ids}
    return {cid: counts.get(cid, 0) / rounds for cid in client_ids}


def starvation_count(
    log: EventLog, client_ids: list[int], *, minimum_rate: float
) -> int:
    """Number of clients whose participation rate fell below ``minimum_rate``."""
    rates = participation_rates(log, client_ids)
    return sum(1 for rate in rates.values() if rate < minimum_rate)
