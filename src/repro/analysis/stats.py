"""Multi-seed statistics: means, confidence intervals, paired comparisons.

Single-seed simulation numbers are anecdotes.  These helpers turn a
per-seed metric function into mean ± confidence-interval summaries
(Student-t based, via scipy) and paired seed-by-seed comparisons between
two mechanisms, which is how EXPERIMENTS.md qualifies "A beats B" claims.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

__all__ = ["SummaryStatistics", "summarize", "run_over_seeds", "paired_comparison"]


@dataclass(frozen=True)
class SummaryStatistics:
    """Mean and a two-sided confidence interval for one metric."""

    mean: float
    std: float
    ci_low: float
    ci_high: float
    confidence: float
    num_samples: int

    def __str__(self) -> str:
        return (
            f"{self.mean:.4g} ± {(self.ci_high - self.ci_low) / 2:.2g} "
            f"({self.confidence:.0%} CI, n={self.num_samples})"
        )


def summarize(values: Sequence[float], *, confidence: float = 0.95) -> SummaryStatistics:
    """Mean, standard deviation and a Student-t confidence interval."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("need at least one value")
    mean = float(data.mean())
    if data.size == 1:
        return SummaryStatistics(mean, 0.0, mean, mean, confidence, 1)
    std = float(data.std(ddof=1))
    sem = std / np.sqrt(data.size)
    t_value = float(scipy_stats.t.ppf(0.5 + confidence / 2, df=data.size - 1))
    half_width = t_value * sem
    return SummaryStatistics(
        mean=mean,
        std=std,
        ci_low=mean - half_width,
        ci_high=mean + half_width,
        confidence=confidence,
        num_samples=int(data.size),
    )


def run_over_seeds(
    metric_fn: Callable[[int], float],
    seeds: Sequence[int],
    *,
    confidence: float = 0.95,
) -> SummaryStatistics:
    """Evaluate ``metric_fn(seed)`` for every seed and summarise."""
    if not seeds:
        raise ValueError("need at least one seed")
    return summarize([metric_fn(int(seed)) for seed in seeds], confidence=confidence)


@dataclass(frozen=True)
class PairedComparison:
    """Seed-paired comparison of two metric streams (A minus B)."""

    mean_difference: float
    ci_low: float
    ci_high: float
    p_value: float
    wins: int
    losses: int

    @property
    def significant(self) -> bool:
        """Whether the CI of the difference excludes zero."""
        return self.ci_low > 0 or self.ci_high < 0


def paired_comparison(
    metric_a: Callable[[int], float],
    metric_b: Callable[[int], float],
    seeds: Sequence[int],
    *,
    confidence: float = 0.95,
) -> PairedComparison:
    """Paired t comparison of two per-seed metrics on identical seeds."""
    if len(seeds) < 2:
        raise ValueError("need at least two seeds for a paired comparison")
    values_a = [metric_a(int(seed)) for seed in seeds]
    values_b = [metric_b(int(seed)) for seed in seeds]
    differences = np.asarray(values_a, dtype=float) - np.asarray(values_b, dtype=float)
    summary = summarize(differences.tolist(), confidence=confidence)
    if np.allclose(differences, differences[0]):
        # Degenerate case: identical differences; t-test is undefined.
        p_value = 0.0 if abs(differences[0]) > 0 else 1.0
    else:
        p_value = float(scipy_stats.ttest_rel(values_a, values_b).pvalue)
    return PairedComparison(
        mean_difference=summary.mean,
        ci_low=summary.ci_low,
        ci_high=summary.ci_high,
        p_value=p_value,
        wins=int((differences > 0).sum()),
        losses=int((differences < 0).sum()),
    )
