"""Long-term budget-compliance metrics.

The mechanism's promise is *asymptotic*: the time-average spend converges
to at most the per-round budget ``B`` while transient overspend is bounded
by the virtual-queue backlog.  :func:`budget_report` extracts everything
E3 plots from an event log: the running average spend, peak backlog proxy
(cumulative overspend), and the fraction of prefixes in violation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.events import EventLog

__all__ = ["BudgetReport", "budget_report"]


@dataclass(frozen=True)
class BudgetReport:
    """Budget-compliance summary of one run against budget ``B`` per round."""

    budget_per_round: float
    average_spend: float
    final_overspend_ratio: float
    peak_cumulative_overspend: float
    violating_prefix_fraction: float
    rounds: int

    @property
    def compliant(self) -> bool:
        """Whether the final time-average spend is within the budget (+1 %)."""
        return self.average_spend <= self.budget_per_round * 1.01


def budget_report(log: EventLog, budget_per_round: float) -> BudgetReport:
    """Compute budget compliance of a completed run.

    ``violating_prefix_fraction`` is the fraction of rounds ``t`` at which
    the *running average* spend over rounds ``0..t`` exceeded ``B`` — a
    trajectory-level compliance measure stricter than the final average.
    """
    if budget_per_round <= 0:
        raise ValueError(f"budget_per_round must be > 0, got {budget_per_round}")
    rounds = len(log)
    if rounds == 0:
        return BudgetReport(budget_per_round, 0.0, 0.0, 0.0, 0.0, 0)
    payments = np.asarray(log.payment_series())
    cumulative = np.cumsum(payments)
    round_numbers = np.arange(1, rounds + 1)
    running_average = cumulative / round_numbers
    overspend = cumulative - budget_per_round * round_numbers
    return BudgetReport(
        budget_per_round=budget_per_round,
        average_spend=float(running_average[-1]),
        final_overspend_ratio=float(running_average[-1] / budget_per_round),
        peak_cumulative_overspend=float(max(overspend.max(), 0.0)),
        violating_prefix_fraction=float(
            (running_average > budget_per_round * (1 + 1e-9)).mean()
        ),
        rounds=rounds,
    )
