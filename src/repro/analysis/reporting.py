"""Benchmark-facing tables built from event logs.

These functions produce the text tables the benchmark harness prints — the
terminal analogues of the paper's tables and figures.  All of them consume
:class:`~repro.simulation.events.EventLog` objects keyed by mechanism name,
so a benchmark's reporting section is three lines.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.analysis.budget import budget_report
from repro.analysis.fairness import gini_coefficient, jain_index, participation_rates
from repro.analysis.welfare import welfare_summary
from repro.simulation.events import EventLog
from repro.utils.tables import format_table

__all__ = ["mechanism_comparison_table", "payment_table", "accuracy_table"]


def mechanism_comparison_table(
    logs: Mapping[str, EventLog],
    *,
    budget_per_round: float,
    client_ids: list[int],
    title: str = "Mechanism comparison",
) -> str:
    """The headline table: welfare, spend, compliance, fairness per mechanism."""
    rows = []
    for name, log in logs.items():
        summary = welfare_summary(log)
        budget = budget_report(log, budget_per_round)
        rates = list(participation_rates(log, client_ids).values())
        rows.append(
            [
                name,
                summary.total_welfare,
                summary.average_payment,
                budget.final_overspend_ratio,
                summary.winners_per_round,
                jain_index(rates),
                gini_coefficient(rates),
            ]
        )
    return format_table(
        [
            "mechanism",
            "total_welfare",
            "avg_spend/round",
            "spend/budget",
            "winners/round",
            "jain",
            "gini",
        ],
        rows,
        title=title,
    )


def payment_table(
    logs: Mapping[str, EventLog], *, title: str = "Payments vs. costs"
) -> str:
    """Per-mechanism payment statistics: totals, premium over true cost."""
    rows = []
    for name, log in logs.items():
        total_payment = log.total_payment()
        total_cost = sum(
            record.true_costs[cid]
            for record in log
            for cid in record.selected
        )
        winners = sum(len(record.selected) for record in log)
        premium = (total_payment / total_cost - 1.0) if total_cost > 0 else 0.0
        rows.append(
            [
                name,
                total_payment,
                total_cost,
                premium,
                total_payment / winners if winners else 0.0,
            ]
        )
    return format_table(
        ["mechanism", "total_paid", "total_true_cost", "premium", "paid/winner"],
        rows,
        title=title,
    )


def accuracy_table(
    logs: Mapping[str, EventLog],
    *,
    targets: tuple[float, ...] = (0.4, 0.5),
    title: str = "Learning performance",
) -> str:
    """Final/best accuracy and rounds-to-target per mechanism."""
    rows = []
    for name, log in logs.items():
        xs, accuracies = log.accuracy_series()
        final = accuracies[-1] if accuracies else float("nan")
        best = max(accuracies) if accuracies else float("nan")
        row = [name, final, best]
        for target in targets:
            reached = next(
                (x for x, acc in zip(xs, accuracies) if acc >= target), None
            )
            row.append("-" if reached is None else str(reached))
        rows.append(row)
    headers = ["mechanism", "final_acc", "best_acc"] + [
        f"rounds_to_{target:.0%}" for target in targets
    ]
    return format_table(headers, rows, title=title)
