"""Welfare accounting from event logs.

*Social welfare* of a round is the sum over winners of (server value minus
the winner's **true** cost) — the quantity the mechanism tries to maximise
long-term.  The event log records true costs (which mechanisms never see),
so welfare here is ground truth even when clients bid strategically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.events import EventLog

__all__ = ["WelfareSummary", "welfare_summary"]


@dataclass(frozen=True)
class WelfareSummary:
    """Aggregates of one run's welfare and spend."""

    total_welfare: float
    average_welfare: float
    total_payment: float
    average_payment: float
    total_server_surplus: float
    rounds: int
    winners_per_round: float

    def welfare_per_unit_spend(self) -> float:
        """Welfare bought per unit of money (efficiency of spend)."""
        if self.total_payment <= 0:
            return float("inf") if self.total_welfare > 0 else 0.0
        return self.total_welfare / self.total_payment


def welfare_summary(log: EventLog) -> WelfareSummary:
    """Summarise welfare/spend of a completed run."""
    rounds = len(log)
    if rounds == 0:
        return WelfareSummary(0.0, 0.0, 0.0, 0.0, 0.0, 0, 0.0)
    welfare = log.welfare_series()
    payments = log.payment_series()
    surplus = [record.server_surplus for record in log]
    winners = [len(record.selected) for record in log]
    return WelfareSummary(
        total_welfare=float(np.sum(welfare)),
        average_welfare=float(np.mean(welfare)),
        total_payment=float(np.sum(payments)),
        average_payment=float(np.mean(payments)),
        total_server_surplus=float(np.sum(surplus)),
        rounds=rounds,
        winners_per_round=float(np.mean(winners)),
    )
