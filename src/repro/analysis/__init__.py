"""Post-simulation analysis: welfare, regret, fairness, budget, reporting."""

from repro.analysis.budget import BudgetReport, budget_report
from repro.analysis.fairness import gini_coefficient, jain_index, participation_rates
from repro.analysis.regret import RegretPoint, regret_against_plan
from repro.analysis.reporting import (
    accuracy_table,
    mechanism_comparison_table,
    payment_table,
)
from repro.analysis.convergence import (
    area_under_curve,
    moving_average,
    plateau_level,
    rounds_to_target,
)
from repro.analysis.stats import (
    PairedComparison,
    SummaryStatistics,
    paired_comparison,
    run_over_seeds,
    summarize,
)
from repro.analysis.welfare import WelfareSummary, welfare_summary

__all__ = [
    "PairedComparison",
    "area_under_curve",
    "moving_average",
    "plateau_level",
    "rounds_to_target",
    "SummaryStatistics",
    "paired_comparison",
    "run_over_seeds",
    "summarize",
    "BudgetReport",
    "RegretPoint",
    "WelfareSummary",
    "accuracy_table",
    "budget_report",
    "gini_coefficient",
    "jain_index",
    "mechanism_comparison_table",
    "participation_rates",
    "payment_table",
    "regret_against_plan",
    "welfare_summary",
]
