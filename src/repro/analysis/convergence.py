"""Learning-curve analysis: targets, plateaus, areas, smoothing.

Turns raw (round, accuracy) series into the scalar summaries experiment
tables report: rounds-to-target, final plateau level, normalised
area-under-curve (a horizon-robust "how fast and how high" score), and a
moving-average smoother for noisy curves.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rounds_to_target",
    "moving_average",
    "area_under_curve",
    "plateau_level",
]


def _validate(xs: list[int], ys: list[float]) -> tuple[np.ndarray, np.ndarray]:
    xs_arr = np.asarray(xs, dtype=float)
    ys_arr = np.asarray(ys, dtype=float)
    if xs_arr.shape != ys_arr.shape:
        raise ValueError(f"xs and ys lengths differ: {len(xs)} vs {len(ys)}")
    if xs_arr.size and np.any(np.diff(xs_arr) <= 0):
        raise ValueError("xs must be strictly increasing")
    return xs_arr, ys_arr


def rounds_to_target(xs: list[int], ys: list[float], target: float) -> int | None:
    """First x at which y reaches ``target`` (None if never)."""
    xs_arr, ys_arr = _validate(xs, ys)
    reached = np.flatnonzero(ys_arr >= target)
    if reached.size == 0:
        return None
    return int(xs_arr[reached[0]])


def moving_average(ys: list[float], window: int) -> list[float]:
    """Centred-as-possible trailing moving average (same length as input)."""
    if window <= 0:
        raise ValueError(f"window must be > 0, got {window}")
    ys_arr = np.asarray(ys, dtype=float)
    if ys_arr.size == 0:
        return []
    smoothed = np.empty_like(ys_arr)
    for index in range(ys_arr.size):
        start = max(0, index - window + 1)
        smoothed[index] = ys_arr[start : index + 1].mean()
    return smoothed.tolist()


def area_under_curve(xs: list[int], ys: list[float]) -> float:
    """Trapezoidal AUC normalised by the x-span (average height).

    A single scalar rewarding both fast convergence and a high plateau;
    comparable across runs sharing an evaluation grid.
    """
    xs_arr, ys_arr = _validate(xs, ys)
    if xs_arr.size < 2:
        return float(ys_arr[0]) if ys_arr.size else 0.0
    span = xs_arr[-1] - xs_arr[0]
    trapezoid = getattr(np, "trapezoid", None) or np.trapz  # numpy 1.x fallback
    return float(trapezoid(ys_arr, xs_arr) / span)


def plateau_level(ys: list[float], *, tail_fraction: float = 0.2) -> float:
    """Mean of the final ``tail_fraction`` of the curve (the settled level)."""
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError(f"tail_fraction must be in (0, 1], got {tail_fraction}")
    ys_arr = np.asarray(ys, dtype=float)
    if ys_arr.size == 0:
        raise ValueError("need a non-empty curve")
    tail = max(1, int(round(ys_arr.size * tail_fraction)))
    return float(ys_arr[-tail:].mean())
