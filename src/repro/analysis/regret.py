"""Regret against the hindsight-optimal plan.

Regret(T) = welfare of the offline optimum on the realised instance minus
the welfare the online mechanism actually achieved over the same T rounds.
The Lyapunov analysis predicts an O(V) additive welfare gap (so vanishing
*per-round* regret as T grows with V fixed); experiment E8 plots exactly
this.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bids import AuctionRound
from repro.mechanisms.offline_optimal import OfflineOptimalPlanner
from repro.simulation.events import EventLog

__all__ = ["RegretPoint", "regret_against_plan", "rounds_to_auction_rounds"]


@dataclass(frozen=True)
class RegretPoint:
    """Regret measurement at one horizon."""

    horizon: int
    online_welfare: float
    offline_welfare: float

    @property
    def regret(self) -> float:
        """Absolute welfare gap (offline - online)."""
        return self.offline_welfare - self.online_welfare

    @property
    def per_round_regret(self) -> float:
        """Regret divided by the horizon."""
        return self.regret / self.horizon if self.horizon else 0.0


def rounds_to_auction_rounds(log: EventLog) -> list[AuctionRound]:
    """Rebuild the auction rounds an offline planner needs from a log.

    The planner sees *true costs* as bids (it is clairvoyant), so the
    resulting rounds carry the ground truth, not the strategic bids.
    """
    from repro.core.bids import Bid

    rounds = []
    for record in log:
        bids = tuple(
            Bid(client_id=cid, cost=record.true_costs[cid])
            for cid in record.available
        )
        if bids:
            rounds.append(
                AuctionRound(
                    index=record.round_index,
                    bids=bids,
                    values={cid: record.values.get(cid, 0.0) for cid in record.available},
                )
            )
    return rounds


def regret_against_plan(
    log: EventLog,
    *,
    budget_per_round: float,
    max_winners: int | None,
) -> RegretPoint:
    """Compute regret of a completed run against its hindsight optimum.

    The offline planner gets the identical realised instance (availability,
    values, true costs) and the identical total budget ``T * B``.
    """
    horizon = len(log)
    if horizon == 0:
        return RegretPoint(horizon=0, online_welfare=0.0, offline_welfare=0.0)
    planner = OfflineOptimalPlanner(
        total_budget=budget_per_round * horizon,
        max_winners_per_round=max_winners,
    )
    plan = planner.plan(rounds_to_auction_rounds(log))
    return RegretPoint(
        horizon=horizon,
        online_welfare=log.total_welfare(),
        offline_welfare=plan.total_welfare,
    )
