"""The composite economic client the simulator drives.

:class:`EconomicClient` ties together everything client-side: the true cost
of a round (cost model), the energy state gating availability (battery +
harvesting), the declared data profile (size, quality), and the bidding
strategy.  :func:`build_population` constructs a heterogeneous population
from a seed, which is the single entry point scenarios use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bids import Bid
from repro.economics.bidding import BidContext, BiddingStrategy, TruthfulStrategy
from repro.economics.cost_models import CostProfile, LinearCostModel, sample_cost_profiles
from repro.economics.energy import (
    Battery,
    BernoulliHarvest,
    DiurnalHarvest,
    HarvestProcess,
    MarkovOnOffHarvest,
)
from repro.rng import RngTree

__all__ = ["EconomicClient", "build_population"]


@dataclass
class EconomicClient:
    """One client's economic state and behaviour.

    Attributes
    ----------
    client_id:
        Stable identity (matches the FL client id when FL is attached).
    cost_model:
        Computes the true per-round cost.
    battery / harvest:
        Energy state; ``harvest=None`` and ``battery=None`` model a mains-
        powered device that is always available.
    strategy:
        Bidding behaviour.
    declared_size / declared_quality:
        The data profile the client reports to the server.
    local_steps / batch_size:
        Local-training workload determining the true cost.
    rng:
        Private generator for strategy randomness and harvesting.
    delivery_reliability:
        Probability that a won round's update actually reaches the server
        (connectivity loss, app killed mid-upload).  Payments are
        pay-on-delivery: a failed winner drains its battery (the work
        happened) but is not paid.
    """

    client_id: int
    cost_model: LinearCostModel
    strategy: BiddingStrategy
    declared_size: int
    declared_quality: float
    local_steps: int
    batch_size: int
    rng: np.random.Generator
    battery: Battery | None = None
    harvest: HarvestProcess | None = None
    delivery_reliability: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.delivery_reliability <= 1.0:
            raise ValueError(
                f"delivery_reliability must be in [0, 1], got "
                f"{self.delivery_reliability}"
            )

    def attempt_delivery(self) -> bool:
        """Whether this round's won update reaches the server."""
        if self.delivery_reliability >= 1.0:
            return True
        return bool(self.rng.random() < self.delivery_reliability)

    def true_cost(self) -> float:
        """The client's actual cost of participating in one round."""
        return self.cost_model.round_cost(
            local_steps=self.local_steps, batch_size=self.batch_size
        )

    @property
    def energy_per_round(self) -> float:
        """Battery units one round drains."""
        return self.cost_model.profile.energy_per_round

    def is_available(self) -> bool:
        """Whether the client has enough energy to participate right now."""
        if self.battery is None:
            return True
        return self.battery.can_afford(self.energy_per_round)

    def make_bid(self, round_index: int) -> Bid:
        """Form this round's sealed bid via the bidding strategy."""
        context = BidContext(round_index=round_index, true_cost=self.true_cost())
        amount = self.strategy.bid(context, self.rng)
        return Bid(
            client_id=self.client_id,
            cost=max(float(amount), 0.0),
            data_size=self.declared_size,
            quality=self.declared_quality,
        )

    def post_round(
        self, round_index: int, *, selected: bool, payment: float
    ) -> None:
        """Apply one round's consequences: drain, harvest, learn.

        Called once per round for every client (selected or not).
        """
        if self.battery is not None:
            if selected:
                self.battery.drain(min(self.energy_per_round, self.battery.level))
            if self.harvest is not None:
                self.battery.charge(self.harvest.step(round_index, self.rng))
        context = BidContext(round_index=round_index, true_cost=self.true_cost())
        self.strategy.observe(context, selected=selected, payment=payment)

    def reset(self) -> None:
        """Reset learning state (battery/harvest state is rebuilt by scenarios)."""
        self.strategy.reset()
        if self.harvest is not None:
            self.harvest.reset()


def _default_harvest(kind: str, energy_per_round: float, rng: np.random.Generator) -> HarvestProcess:
    """A harvest process whose mean rate is a random multiple of the demand.

    The multiple spans under-provisioned (0.3x: the client can sustain at
    most ~30 % participation) through comfortable (1.5x), which is exactly
    the heterogeneity the sustainability experiments need.
    """
    sustain = float(rng.uniform(0.3, 1.5)) * energy_per_round
    if kind == "bernoulli":
        rate = float(rng.uniform(0.3, 0.9))
        return BernoulliHarvest(rate=rate, amount=sustain / rate)
    if kind == "markov":
        p_on_off = float(rng.uniform(0.1, 0.4))
        p_off_on = float(rng.uniform(0.1, 0.4))
        stationary_on = p_off_on / (p_off_on + p_on_off)
        return MarkovOnOffHarvest(
            amount=sustain / stationary_on, p_on_off=p_on_off, p_off_on=p_off_on
        )
    if kind == "diurnal":
        period = int(rng.integers(20, 60))
        return DiurnalHarvest(
            peak=sustain * np.pi, period=period, phase=float(rng.uniform()), noise=0.05 * sustain
        )
    raise ValueError(f"unknown harvest kind {kind!r}")


def build_population(
    num_clients: int,
    *,
    seed: int,
    declared_sizes: list[int] | None = None,
    declared_qualities: list[float] | None = None,
    strategy_factory=None,
    local_steps: int = 5,
    batch_size: int = 32,
    energy_constrained: bool = True,
    harvest_kinds: tuple[str, ...] = ("bernoulli", "markov", "diurnal"),
    class_weights: dict[str, float] | None = None,
    delivery_reliability_range: tuple[float, float] = (1.0, 1.0),
) -> list[EconomicClient]:
    """Construct a heterogeneous economic population.

    Parameters
    ----------
    num_clients:
        Population size.
    seed:
        Root seed; the population is fully reproducible from it.
    declared_sizes / declared_qualities:
        Per-client data declarations; default to a lognormal size spread and
        quality 1.  When FL is attached, scenarios overwrite these with the
        actual shard statistics.
    strategy_factory:
        ``(client_id, rng) -> BiddingStrategy``; defaults to truthful.
    energy_constrained:
        When False, clients are mains-powered (always available).
    harvest_kinds:
        The cycle of harvest-process kinds assigned round-robin.
    class_weights:
        Device-class mix forwarded to
        :func:`repro.economics.cost_models.sample_cost_profiles`.
    delivery_reliability_range:
        Per-client delivery reliability drawn uniformly from this range
        (default: perfectly reliable).
    """
    tree = RngTree(seed)
    population_rng = tree.generator("population")
    profiles: list[CostProfile] = sample_cost_profiles(
        num_clients, population_rng, class_weights=class_weights
    )
    if declared_sizes is None:
        declared_sizes = [
            int(np.clip(population_rng.lognormal(4.0, 0.6), 20, 2000))
            for _ in range(num_clients)
        ]
    if declared_qualities is None:
        declared_qualities = [1.0] * num_clients
    if len(declared_sizes) != num_clients or len(declared_qualities) != num_clients:
        raise ValueError("declared data lists must have one entry per client")
    if strategy_factory is None:
        strategy_factory = lambda client_id, rng: TruthfulStrategy()  # noqa: E731

    clients = []
    for client_id in range(num_clients):
        client_rng = tree.generator(f"clients/{client_id}")
        battery = harvest = None
        if energy_constrained:
            energy = profiles[client_id].energy_per_round
            battery = Battery(capacity=energy * float(population_rng.uniform(3.0, 8.0)))
            kind = harvest_kinds[client_id % len(harvest_kinds)]
            harvest = _default_harvest(kind, energy, population_rng)
        clients.append(
            EconomicClient(
                client_id=client_id,
                cost_model=LinearCostModel(profiles[client_id]),
                strategy=strategy_factory(client_id, client_rng),
                declared_size=declared_sizes[client_id],
                declared_quality=float(declared_qualities[client_id]),
                local_steps=local_steps,
                batch_size=batch_size,
                rng=client_rng,
                battery=battery,
                harvest=harvest,
                delivery_reliability=float(
                    population_rng.uniform(*delivery_reliability_range)
                ),
            )
        )
    return clients
