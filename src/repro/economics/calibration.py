"""Market calibration: choosing budgets, reserves and posted prices.

A deployment must pick the mechanism's economic knobs before it has seen a
single bid.  These helpers derive defensible starting points from a
(pre-launch survey or pilot) sample of client cost profiles:

* :func:`suggest_budget` — per-round budget to recruit ``k`` median-cost
  clients with a safety factor for the truthful premium;
* :func:`suggest_reserve_price` — payment cap at a chosen quantile of the
  cost distribution (excluding the most expensive tail);
* :func:`suggest_posted_price` — fixed price such that an expected ``k``
  clients accept;
* :func:`premium_estimate` — empirical truthful premium from a completed
  run's event log, for recalibration.
"""

from __future__ import annotations

import numpy as np

from repro.economics.client_profile import EconomicClient
from repro.simulation.events import EventLog
from repro.utils.validation import check_in_range, check_positive

__all__ = [
    "suggest_budget",
    "suggest_reserve_price",
    "suggest_posted_price",
    "premium_estimate",
]


def _costs(clients: list[EconomicClient]) -> np.ndarray:
    if not clients:
        raise ValueError("need at least one client")
    return np.array([client.true_cost() for client in clients], dtype=float)


def suggest_budget(
    clients: list[EconomicClient],
    winners_per_round: int,
    *,
    premium_factor: float = 1.5,
) -> float:
    """Per-round budget to pay ``winners_per_round`` median-cost clients.

    ``premium_factor`` head-room covers the truthful (critical-bid) premium;
    1.5 matches the empirical premium range of the E6 experiment.
    """
    if winners_per_round <= 0:
        raise ValueError(f"winners_per_round must be > 0, got {winners_per_round}")
    check_positive("premium_factor", premium_factor)
    median_cost = float(np.median(_costs(clients)))
    return winners_per_round * median_cost * premium_factor


def suggest_reserve_price(
    clients: list[EconomicClient], *, quantile: float = 0.9
) -> float:
    """Reserve (payment cap) at a quantile of the population cost distribution.

    Clients costlier than the reserve are priced out by design; 0.9 keeps
    the cheapest 90 % of the population recruitable.
    """
    check_in_range("quantile", quantile, 0.0, 1.0)
    return float(np.quantile(_costs(clients), quantile))


def suggest_posted_price(
    clients: list[EconomicClient], expected_acceptors: int
) -> float:
    """Posted price at which ``expected_acceptors`` clients would accept.

    The k-th smallest cost: exactly the clients with cost at most this
    price accept a take-it-or-leave-it offer.
    """
    costs = np.sort(_costs(clients))
    if not 1 <= expected_acceptors <= costs.size:
        raise ValueError(
            f"expected_acceptors must be in [1, {costs.size}], "
            f"got {expected_acceptors}"
        )
    return float(costs[expected_acceptors - 1])


def premium_estimate(log: EventLog) -> float:
    """Empirical truthful premium: total paid / total winner cost − 1.

    Returns 0 for runs with no spend.  Feed a pilot run's log back in to
    recalibrate :func:`suggest_budget`'s ``premium_factor``.
    """
    total_paid = log.total_payment()
    total_cost = sum(
        record.true_costs[cid] for record in log for cid in record.selected
    )
    if total_cost <= 0:
        return 0.0
    return total_paid / total_cost - 1.0
