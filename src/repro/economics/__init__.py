"""Client-side economics: costs, energy, data value, and bidding behaviour.

This package models everything that happens *on the client* before a bid
reaches the server:

* :mod:`repro.economics.cost_models` — how much one round of local training
  and upload truly costs a device,
* :mod:`repro.economics.energy` — batteries and ambient-energy harvesting
  processes gating availability,
* :mod:`repro.economics.data_value` — declared data-profile statistics
  (size, label-entropy quality) feeding the server's valuation,
* :mod:`repro.economics.bidding` — strategic bidding behaviours from
  truthful through adaptive learners,
* :mod:`repro.economics.client_profile` — the composite economic client
  used by the simulator.
"""

from repro.economics.bidding import (
    AdaptiveStrategy,
    BidContext,
    BiddingStrategy,
    JitterStrategy,
    ScaledStrategy,
    TruthfulStrategy,
)
from repro.economics.calibration import (
    premium_estimate,
    suggest_budget,
    suggest_posted_price,
    suggest_reserve_price,
)
from repro.economics.client_profile import EconomicClient, build_population
from repro.economics.cost_models import (
    CostProfile,
    LinearCostModel,
    sample_cost_profiles,
)
from repro.economics.data_value import data_quality, label_entropy
from repro.economics.energy import (
    Battery,
    BernoulliHarvest,
    DiurnalHarvest,
    HarvestProcess,
    MarkovOnOffHarvest,
)

__all__ = [
    "AdaptiveStrategy",
    "Battery",
    "BernoulliHarvest",
    "BidContext",
    "BiddingStrategy",
    "CostProfile",
    "DiurnalHarvest",
    "EconomicClient",
    "HarvestProcess",
    "JitterStrategy",
    "LinearCostModel",
    "MarkovOnOffHarvest",
    "ScaledStrategy",
    "TruthfulStrategy",
    "build_population",
    "data_quality",
    "label_entropy",
    "premium_estimate",
    "sample_cost_profiles",
    "suggest_budget",
    "suggest_posted_price",
    "suggest_reserve_price",
]
