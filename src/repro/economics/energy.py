"""Batteries and ambient-energy harvesting.

Sustainability experiments need devices whose *availability* is gated by
energy: a client can only bid when its battery holds enough charge for one
round, participation drains the battery, and charge trickles back in from a
stochastic harvesting process.  Three harvest processes cover the regimes
the energy-harvesting literature distinguishes (see DESIGN.md
substitutions — these replace proprietary device traces):

* :class:`BernoulliHarvest` — memoryless arrivals (ambient RF),
* :class:`MarkovOnOffHarvest` — bursty arrivals (kinetic/motion),
* :class:`DiurnalHarvest` — periodic arrivals (solar day/night cycle).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.validation import check_non_negative, check_positive, check_probability

__all__ = [
    "Battery",
    "HarvestProcess",
    "BernoulliHarvest",
    "MarkovOnOffHarvest",
    "DiurnalHarvest",
]


class Battery:
    """A finite energy store with clipped charge and checked drain."""

    def __init__(self, capacity: float, initial: float | None = None) -> None:
        self.capacity = check_positive("capacity", capacity)
        level = self.capacity if initial is None else check_non_negative("initial", initial)
        if level > self.capacity:
            raise ValueError(f"initial {level} exceeds capacity {self.capacity}")
        self._level = level

    @property
    def level(self) -> float:
        """Current charge in ``[0, capacity]``."""
        return self._level

    @property
    def fraction(self) -> float:
        """Charge as a fraction of capacity."""
        return self._level / self.capacity

    def can_afford(self, amount: float) -> bool:
        """Whether draining ``amount`` is possible right now."""
        return self._level >= check_non_negative("amount", amount) - 1e-12

    def drain(self, amount: float) -> None:
        """Remove ``amount`` of charge; raises if insufficient."""
        if not self.can_afford(amount):
            raise ValueError(
                f"cannot drain {amount:.4g} from battery at {self._level:.4g}"
            )
        self._level = max(self._level - amount, 0.0)

    def charge(self, amount: float) -> float:
        """Add ``amount`` (clipped at capacity); returns energy actually stored."""
        check_non_negative("amount", amount)
        stored = min(amount, self.capacity - self._level)
        self._level += stored
        return stored

    def __repr__(self) -> str:
        return f"Battery(level={self._level:.3g}/{self.capacity:.3g})"


class HarvestProcess(ABC):
    """One round's worth of harvested energy, drawn per round."""

    @abstractmethod
    def step(self, round_index: int, rng: np.random.Generator) -> float:
        """Energy harvested during round ``round_index`` (>= 0)."""

    def mean_rate(self) -> float:
        """Long-run average energy per round (used for feasibility checks)."""
        raise NotImplementedError

    def reset(self) -> None:
        """Reset any internal state (Markov processes)."""


class BernoulliHarvest(HarvestProcess):
    """Memoryless: each round, harvest ``amount`` with probability ``rate``."""

    def __init__(self, rate: float, amount: float) -> None:
        self.rate = check_probability("rate", rate)
        self.amount = check_non_negative("amount", amount)

    def step(self, round_index: int, rng: np.random.Generator) -> float:
        return self.amount if rng.random() < self.rate else 0.0

    def mean_rate(self) -> float:
        return self.rate * self.amount

    def __repr__(self) -> str:
        return f"BernoulliHarvest(rate={self.rate}, amount={self.amount})"


class MarkovOnOffHarvest(HarvestProcess):
    """Bursty two-state process: harvest ``amount`` per round while *on*.

    Transition probabilities: ``p_on_off`` (on -> off) and ``p_off_on``
    (off -> on); the stationary on-probability is
    ``p_off_on / (p_off_on + p_on_off)``.
    """

    def __init__(
        self,
        amount: float,
        p_on_off: float,
        p_off_on: float,
        *,
        start_on: bool = False,
    ) -> None:
        self.amount = check_non_negative("amount", amount)
        self.p_on_off = check_probability("p_on_off", p_on_off)
        self.p_off_on = check_probability("p_off_on", p_off_on)
        if self.p_on_off + self.p_off_on == 0:
            raise ValueError("p_on_off and p_off_on cannot both be 0")
        self._start_on = bool(start_on)
        self._on = self._start_on

    def step(self, round_index: int, rng: np.random.Generator) -> float:
        if self._on:
            if rng.random() < self.p_on_off:
                self._on = False
        else:
            if rng.random() < self.p_off_on:
                self._on = True
        return self.amount if self._on else 0.0

    def mean_rate(self) -> float:
        stationary_on = self.p_off_on / (self.p_off_on + self.p_on_off)
        return stationary_on * self.amount

    def reset(self) -> None:
        self._on = self._start_on

    def __repr__(self) -> str:
        return (
            f"MarkovOnOffHarvest(amount={self.amount}, "
            f"p_on_off={self.p_on_off}, p_off_on={self.p_off_on})"
        )


class DiurnalHarvest(HarvestProcess):
    """Solar-style periodic harvest: a clipped sinusoid plus optional noise.

    ``harvest(t) = max(0, peak * sin(2*pi*(t/period + phase))) + noise`` with
    the noise term truncated at zero.
    """

    def __init__(
        self,
        peak: float,
        period: int,
        *,
        phase: float = 0.0,
        noise: float = 0.0,
    ) -> None:
        self.peak = check_non_negative("peak", peak)
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        self.period = int(period)
        self.phase = float(phase)
        self.noise = check_non_negative("noise", noise)

    def step(self, round_index: int, rng: np.random.Generator) -> float:
        base = self.peak * np.sin(2 * np.pi * (round_index / self.period + self.phase))
        base = max(base, 0.0)
        if self.noise > 0:
            base = max(base + rng.normal(0.0, self.noise), 0.0)
        return float(base)

    def mean_rate(self) -> float:
        # Average of max(0, sin) over a full period is 1/pi.
        return self.peak / np.pi

    def __repr__(self) -> str:
        return (
            f"DiurnalHarvest(peak={self.peak}, period={self.period}, "
            f"phase={self.phase}, noise={self.noise})"
        )
