"""Strategic bidding behaviours.

Under a truthful mechanism, bidding one's true cost is a dominant strategy —
but experiment E5 must *demonstrate* that, and the baseline first-price
mechanisms are exploitable, so the simulator supports a spectrum of bidder
behaviours:

* :class:`TruthfulStrategy` — bid the true cost.
* :class:`ScaledStrategy` — bid a constant multiple of the true cost
  (systematic over/under-bidding).
* :class:`JitterStrategy` — truthful plus multiplicative noise (reporting
  error).
* :class:`AdaptiveStrategy` — a no-regret learner (multiplicative weights /
  Hedge over a grid of markup factors) that discovers the best markup from
  realised utilities.  Against a truthful mechanism it converges back to
  factor ~1; against first-price baselines it learns to overbid — the
  headline contrast in E5.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "BidContext",
    "BiddingStrategy",
    "TruthfulStrategy",
    "ScaledStrategy",
    "JitterStrategy",
    "AdaptiveStrategy",
]


@dataclass(frozen=True)
class BidContext:
    """What a strategy may condition on when forming a bid."""

    round_index: int
    true_cost: float


class BiddingStrategy(ABC):
    """Maps true cost to a submitted bid, with post-round feedback."""

    @abstractmethod
    def bid(self, context: BidContext, rng: np.random.Generator) -> float:
        """The bid to submit this round (must be >= 0)."""

    def observe(self, context: BidContext, *, selected: bool, payment: float) -> None:
        """Post-round feedback: whether the client won and what it was paid."""

    def reset(self) -> None:
        """Clear learning state."""


class TruthfulStrategy(BiddingStrategy):
    """Bid exactly the true cost."""

    def bid(self, context: BidContext, rng: np.random.Generator) -> float:
        return context.true_cost

    def __repr__(self) -> str:
        return "TruthfulStrategy()"


class ScaledStrategy(BiddingStrategy):
    """Bid ``factor * true_cost`` every round."""

    def __init__(self, factor: float) -> None:
        self.factor = check_positive("factor", factor)

    def bid(self, context: BidContext, rng: np.random.Generator) -> float:
        return context.true_cost * self.factor

    def __repr__(self) -> str:
        return f"ScaledStrategy(factor={self.factor})"


class JitterStrategy(BiddingStrategy):
    """Truthful up to multiplicative lognormal noise (reporting error)."""

    def __init__(self, sigma: float) -> None:
        self.sigma = check_non_negative("sigma", sigma)

    def bid(self, context: BidContext, rng: np.random.Generator) -> float:
        return context.true_cost * float(np.exp(rng.normal(0.0, self.sigma)))

    def __repr__(self) -> str:
        return f"JitterStrategy(sigma={self.sigma})"


class AdaptiveStrategy(BiddingStrategy):
    """Hedge over markup factors, learning from realised utility.

    Each round the strategy samples a factor ``f`` from its weight
    distribution and bids ``f * true_cost``.  After observing the outcome it
    updates the sampled factor's weight multiplicatively using the realised
    utility ``payment - true_cost`` (0 when losing), normalised by the true
    cost so the learning rate is scale-free.

    Parameters
    ----------
    factors:
        Markup grid (defaults to 0.6x to 2.5x).
    learning_rate:
        Hedge step size.
    """

    def __init__(
        self,
        factors: tuple[float, ...] = (0.6, 0.8, 1.0, 1.25, 1.5, 2.0, 2.5),
        learning_rate: float = 0.2,
    ) -> None:
        if not factors or any(f <= 0 for f in factors):
            raise ValueError("factors must be a non-empty tuple of positives")
        self.factors = tuple(float(f) for f in factors)
        self.learning_rate = check_positive("learning_rate", learning_rate)
        self._log_weights = np.zeros(len(self.factors))
        self._last_choice: int | None = None

    def distribution(self) -> np.ndarray:
        """Current probability over factors."""
        shifted = self._log_weights - self._log_weights.max()
        weights = np.exp(shifted)
        return weights / weights.sum()

    def expected_factor(self) -> float:
        """Mean markup under the current distribution (convergence metric)."""
        return float(np.dot(self.distribution(), self.factors))

    def bid(self, context: BidContext, rng: np.random.Generator) -> float:
        choice = int(rng.choice(len(self.factors), p=self.distribution()))
        self._last_choice = choice
        return context.true_cost * self.factors[choice]

    def observe(self, context: BidContext, *, selected: bool, payment: float) -> None:
        if self._last_choice is None:
            return
        utility = (payment - context.true_cost) if selected else 0.0
        scale = max(context.true_cost, 1e-9)
        self._log_weights[self._last_choice] += self.learning_rate * utility / scale
        self._last_choice = None

    def reset(self) -> None:
        self._log_weights = np.zeros(len(self.factors))
        self._last_choice = None

    def __repr__(self) -> str:
        return (
            f"AdaptiveStrategy(factors={self.factors}, "
            f"learning_rate={self.learning_rate})"
        )
