"""Client cost models: what one round of participation truly costs.

A client's per-round cost has two parts — compute (proportional to the
number of sample-gradient evaluations the local phase performs, scaled by
the device's efficiency) and communication (uploading the model update).
Costs are denominated in the same monetary unit as bids and payments; the
battery impact of a round is tracked separately (in energy units) by
:mod:`repro.economics.energy`.

Heterogeneity across the population comes from device classes (think
flagship phone vs. five-year-old budget phone vs. plugged-in edge box);
:func:`sample_cost_profiles` draws a mixed population.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_non_negative, check_positive

__all__ = ["CostProfile", "LinearCostModel", "DEVICE_CLASSES", "sample_cost_profiles"]


@dataclass(frozen=True)
class CostProfile:
    """Per-device cost/energy coefficients.

    Attributes
    ----------
    compute_unit_cost:
        Money per sample-gradient evaluation.
    upload_cost:
        Money per round for transmitting the update.
    energy_per_round:
        Battery units one round of participation drains.
    device_class:
        Label of the originating device class (for reporting).
    """

    compute_unit_cost: float
    upload_cost: float
    energy_per_round: float
    device_class: str = "generic"

    def __post_init__(self) -> None:
        check_non_negative("compute_unit_cost", self.compute_unit_cost)
        check_non_negative("upload_cost", self.upload_cost)
        check_non_negative("energy_per_round", self.energy_per_round)


class LinearCostModel:
    """True round cost = compute work x unit cost + upload cost.

    The compute work of one FedAvg local phase is
    ``local_steps * batch_size`` sample-gradient evaluations.
    """

    def __init__(self, profile: CostProfile) -> None:
        self.profile = profile

    def round_cost(self, *, local_steps: int, batch_size: int) -> float:
        """Money cost of one round of local training plus upload."""
        if local_steps <= 0 or batch_size <= 0:
            raise ValueError("local_steps and batch_size must be > 0")
        work = local_steps * batch_size
        return self.profile.compute_unit_cost * work + self.profile.upload_cost

    def __repr__(self) -> str:
        return f"LinearCostModel(profile={self.profile!r})"


#: Canonical device classes: (label, compute-unit-cost range, upload-cost
#: range, energy-per-round range).  Budget devices cost *more* per unit of
#: work (slower, less efficient silicon) and drain more battery.
DEVICE_CLASSES: dict[str, dict[str, tuple[float, float]]] = {
    "edge-box": {
        "compute_unit_cost": (0.0008, 0.0015),
        "upload_cost": (0.02, 0.05),
        "energy_per_round": (0.2, 0.5),
    },
    "flagship-phone": {
        "compute_unit_cost": (0.0015, 0.003),
        "upload_cost": (0.05, 0.12),
        "energy_per_round": (0.6, 1.0),
    },
    "budget-phone": {
        "compute_unit_cost": (0.003, 0.006),
        "upload_cost": (0.08, 0.2),
        "energy_per_round": (1.0, 1.8),
    },
}


def sample_cost_profiles(
    num_clients: int,
    rng: np.random.Generator,
    *,
    class_weights: dict[str, float] | None = None,
) -> list[CostProfile]:
    """Draw a heterogeneous population of cost profiles.

    ``class_weights`` sets the device-class mix (defaults to uniform over
    :data:`DEVICE_CLASSES`).
    """
    if num_clients <= 0:
        raise ValueError(f"num_clients must be > 0, got {num_clients}")
    if class_weights is None:
        class_weights = {name: 1.0 for name in DEVICE_CLASSES}
    unknown = set(class_weights) - set(DEVICE_CLASSES)
    if unknown:
        raise ValueError(f"unknown device classes {sorted(unknown)}")
    names = sorted(class_weights)
    weights = np.array([check_positive(f"class_weights[{n}]", class_weights[n]) for n in names])
    weights = weights / weights.sum()

    profiles = []
    for _ in range(num_clients):
        name = names[int(rng.choice(len(names), p=weights))]
        ranges = DEVICE_CLASSES[name]
        profiles.append(
            CostProfile(
                compute_unit_cost=float(rng.uniform(*ranges["compute_unit_cost"])),
                upload_cost=float(rng.uniform(*ranges["upload_cost"])),
                energy_per_round=float(rng.uniform(*ranges["energy_per_round"])),
                device_class=name,
            )
        )
    return profiles
