"""Declared data-profile statistics.

Clients declare two quantities the server's valuation consumes: their sample
count and a *quality* score.  Quality here is normalised label entropy —
a client holding a balanced slice of all classes scores 1, a single-class
client scores 0 — which correlates with how much a client's update helps a
global model under label-skewed non-IID partitions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["label_entropy", "data_quality"]


def label_entropy(labels: np.ndarray, num_classes: int) -> float:
    """Shannon entropy (nats) of the empirical label distribution."""
    labels = np.asarray(labels, dtype=int)
    if labels.size == 0:
        return 0.0
    counts = np.bincount(labels, minlength=num_classes).astype(float)
    probabilities = counts / counts.sum()
    nonzero = probabilities[probabilities > 0]
    return float(-(nonzero * np.log(nonzero)).sum())


def data_quality(labels: np.ndarray, num_classes: int) -> float:
    """Normalised label entropy in ``[0, 1]``.

    1 means a perfectly balanced shard, 0 a single-class shard.  This is the
    default declared ``quality`` in the simulator.
    """
    if num_classes <= 1:
        raise ValueError(f"num_classes must be > 1, got {num_classes}")
    return label_entropy(labels, num_classes) / float(np.log(num_classes))
