"""Optional numba (njit/prange) backend for the kernel seam.

Implements the knapsack DP fills (scalar and stacked) and the fused
optimizer steps; every other entry point falls back to the numpy oracle
through :func:`repro.kernels.kernel`.  All arithmetic replays the oracle's
rounding sequence operation for operation — same products, same adds, same
compares on the same float64 values — so results are bit-identical to
:mod:`repro.kernels.numpy_backend` (pinned in the backend equivalence
suite whenever numba is importable).

numba is an optional dependency: :func:`load` returns ``None`` when the
import fails, and the registry then reports only the numpy backend.
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


def load():
    try:
        import numba  # noqa: F401
    except ImportError:
        return None

    from repro.kernels import KernelBackend

    _compile()
    return KernelBackend(
        name="numba",
        xp=np,
        kernels={
            "knapsack_dp_fill": knapsack_dp_fill,
            "knapsack_dp_fill_batch": knapsack_dp_fill_batch,
            "stacked_sgd_step": stacked_sgd_step,
            "stacked_adam_step": stacked_adam_step,
        },
    )


# Compiled lazily by load() so importing this module never requires numba.
_jit = {}


def _compile() -> None:
    if _jit:
        return
    from numba import njit, prange

    @njit(cache=True)
    def dp_fill(scores, weights, int_capacity, k_cap, dp, take_packed):
        # In-place image of the oracle's two-buffer fill: c descends, so
        # dp[c - w] is still the pre-item value when dp[c] updates, and the
        # take bit uses the same big-endian row-major layout packbits emits.
        width = k_cap + 1
        for item_pos in range(scores.shape[0]):
            weight = weights[item_pos]
            score = scores[item_pos]
            if weight > int_capacity:
                continue
            for c in range(int_capacity, weight - 1, -1):
                source = c - weight
                for k in range(k_cap, 0, -1):
                    cand = dp[source, k - 1] + score
                    if cand > dp[c, k] + _EPS:
                        dp[c, k] = cand
                        bit = c * width + k
                        take_packed[item_pos, bit >> 3] |= np.uint8(
                            1 << (7 - (bit & 7))
                        )

    @njit(cache=True, parallel=True)
    def dp_fill_batch(scores, weights, int_capacity, k_cap, dp, take_packed):
        for g in prange(scores.shape[0]):
            dp_fill(scores[g], weights[g], int_capacity, k_cap, dp[g], take_packed[g])

    @njit(cache=True, parallel=True)
    def sgd_plain(params, grads, learning_rates):
        for c in prange(params.shape[0]):
            lr = learning_rates[c]
            for p in range(params.shape[1]):
                params[c, p] -= grads[c, p] * lr

    @njit(cache=True, parallel=True)
    def sgd_momentum(params, grads, learning_rates, momenta, velocity):
        for c in prange(params.shape[0]):
            lr = learning_rates[c]
            momentum = momenta[c]
            for p in range(params.shape[1]):
                updated = velocity[c, p] * momentum - grads[c, p] * lr
                velocity[c, p] = updated
                params[c, p] += updated

    @njit(cache=True, parallel=True)
    def adam(params, grads, learning_rates, beta1s, beta2s, epsilons,
             m, v, bias1, bias2):
        for c in prange(params.shape[0]):
            lr = learning_rates[c]
            beta1 = beta1s[c]
            beta2 = beta2s[c]
            one_minus_beta1 = 1.0 - beta1
            one_minus_beta2 = 1.0 - beta2
            epsilon = epsilons[c]
            correction1 = bias1[c]
            correction2 = bias2[c]
            for p in range(params.shape[1]):
                grad = grads[c, p]
                m_new = m[c, p] * beta1 + one_minus_beta1 * grad
                v_new = v[c, p] * beta2 + one_minus_beta2 * (grad * grad)
                m[c, p] = m_new
                v[c, p] = v_new
                m_hat = m_new / correction1
                v_hat = v_new / correction2
                params[c, p] -= lr * m_hat / (np.sqrt(v_hat) + epsilon)

    _jit.update(
        dp_fill=dp_fill,
        dp_fill_batch=dp_fill_batch,
        sgd_plain=sgd_plain,
        sgd_momentum=sgd_momentum,
        adam=adam,
    )


def knapsack_dp_fill(scores, weights, int_capacity, k_cap, dp, take_packed,
                     scratch=None):
    _jit["dp_fill"](
        np.ascontiguousarray(scores),
        np.ascontiguousarray(weights),
        int_capacity,
        k_cap,
        dp,
        take_packed,
    )


def knapsack_dp_fill_batch(scores, weights, int_capacity, k_cap):
    num_groups, num_items = scores.shape
    width = k_cap + 1
    cells = (int_capacity + 1) * width
    dp = np.zeros((num_groups, int_capacity + 1, width))
    take_packed = np.zeros(
        (num_groups, num_items, (cells + 7) // 8), dtype=np.uint8
    )
    _jit["dp_fill_batch"](
        np.ascontiguousarray(scores),
        np.ascontiguousarray(weights),
        int_capacity,
        k_cap,
        dp,
        take_packed,
    )
    return dp, take_packed


def stacked_sgd_step(params, grads, learning_rates, momenta, velocity, scratch):
    if velocity is None:
        _jit["sgd_plain"](params, grads, learning_rates)
    else:
        _jit["sgd_momentum"](params, grads, learning_rates, momenta, velocity)
    return params


def stacked_adam_step(params, grads, learning_rates, beta1s, beta2s, epsilons,
                      m, v, bias1, bias2):
    _jit["adam"](
        params, grads, learning_rates, beta1s, beta2s, epsilons, m, v,
        bias1, bias2,
    )
    return params
