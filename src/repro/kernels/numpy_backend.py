"""Reference (oracle) implementations of the kernel seam, on numpy.

Every entry point here defines the pinned semantics of its kernel: other
backends must reproduce these results bit-exact (the integer/float64
kernels) or within the documented tolerance (float32-storage inputs).
The functions are pure array transformations — state (DP scratch tables,
optimizer moment buffers) lives with the callers, which pass it in, so a
backend swap never changes what is remembered between calls.

This module is imported lazily through the registry
(:func:`repro.kernels.active_backend`), never at package import.
"""

from __future__ import annotations

import numpy as np

# The scalar CNN's patch extractor; the stacked conv kernel runs it over
# the flattened (client, sample) leading axis.
from repro.fl.cnn import _im2col

_EPS = 1e-12


def load():
    from repro.kernels import KernelBackend

    return KernelBackend(
        name="numpy",
        xp=np,
        kernels={
            "knapsack_dp_fill": knapsack_dp_fill,
            "knapsack_dp_fill_batch": knapsack_dp_fill_batch,
            "stacked_conv_forward": stacked_conv_forward,
            "stacked_conv_backward": stacked_conv_backward,
            "stacked_sgd_step": stacked_sgd_step,
            "stacked_adam_step": stacked_adam_step,
            "fedavg_combine": fedavg_combine,
        },
    )


# ---------------------------------------------------------------------------
# Knapsack DP fills
# ---------------------------------------------------------------------------

def knapsack_dp_fill(
    scores: np.ndarray,
    weights: np.ndarray,
    int_capacity: int,
    k_cap: int,
    dp: np.ndarray,
    take_packed: np.ndarray,
    scratch: np.ndarray | None = None,
) -> None:
    """Budget-form knapsack DP with bit-packed take bits, one instance.

    ``dp`` is a zeroed ``(int_capacity + 1, k_cap + 1)`` table
    (``dp[c, k]`` = best score using capacity <= c with <= k items);
    ``take_packed`` is ``(len(scores), ceil(cells / 8))`` and receives, per
    item, the packed ``improved`` mask (big-endian bit order over the
    row-major ravel of the table) the backtrack replays.  ``scratch`` is an
    optional ``dp``-shaped workspace (reused across solves by the caller).
    """
    if scratch is None:
        scratch = np.empty_like(dp)
    for item_pos in range(len(scores)):
        weight = int(weights[item_pos])
        score = scores[item_pos]
        scratch.fill(-np.inf)
        scratch[weight:, 1:] = dp[: int_capacity + 1 - weight, :k_cap] + score
        improved = scratch > dp + _EPS
        take_packed[item_pos] = np.packbits(improved.ravel(), bitorder="big")
        np.copyto(dp, scratch, where=improved)


def knapsack_dp_fill_batch(
    scores: np.ndarray,
    weights: np.ndarray,
    int_capacity: int,
    k_cap: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Stacked knapsack DP over ``(G, S)`` instance rows, one table each.

    All rows share the capacity grid and cardinality cap (callers group
    instances accordingly and pad short rows with never-improving dummy
    items: ``weight > int_capacity``).  Rows are filled through
    :func:`knapsack_dp_fill` sharing one scratch buffer — per-row tables
    and take bits are trivially bit-identical to a scalar solve of that
    row, and the working set stays one ``(C+1, K+1)`` table (a stacked
    ``(G, C+1, K+1)`` gather formulation measured slower here: it spills
    the cache that the row-at-a-time fill lives in).  Parallel backends
    (numba) run the rows concurrently instead.

    Returns ``(dp (G, C+1, K+1), take_packed (G, S, nbytes))``.
    """
    num_groups, num_items = scores.shape
    width = k_cap + 1
    cells = (int_capacity + 1) * width
    dp = np.zeros((num_groups, int_capacity + 1, width))
    take_packed = np.zeros((num_groups, num_items, (cells + 7) // 8), dtype=np.uint8)
    scratch = np.empty((int_capacity + 1, width))
    for g in range(num_groups):
        knapsack_dp_fill(
            scores[g], weights[g], int_capacity, k_cap, dp[g], take_packed[g],
            scratch,
        )
    return dp, take_packed


# ---------------------------------------------------------------------------
# Stacked TinyConvNet forward / backward
# ---------------------------------------------------------------------------

def stacked_conv_forward(
    features: np.ndarray,
    conv_w: np.ndarray,
    conv_b: np.ndarray,
    dense_w: np.ndarray,
    dense_b: np.ndarray,
    image_shape: tuple[int, int],
    kernel_size: int,
) -> dict:
    """Forward pass of the conv -> ReLU -> 2x2 maxpool -> dense stack.

    ``features`` is ``(C, B, H*W)`` (a leading client axis over flat
    images); parameter tensors carry the same leading axis.  Per client the
    arithmetic mirrors :meth:`repro.fl.cnn.TinyConvNet._forward` operation
    for operation (im2col over the flattened client-sample axis, batched
    matmuls in place of per-client matmuls), so per-client results agree
    with the scalar path to floating-point associativity.

    Returns the backprop cache: columns, relu_mask, argmax, flat, logits.
    """
    num_clients, batch, _ = features.shape
    height, width = image_shape
    out_h, out_w = height - kernel_size + 1, width - kernel_size + 1
    pool_h, pool_w = out_h // 2, out_w // 2
    num_filters = conv_w.shape[1]

    images = features.reshape(num_clients * batch, height, width)
    columns = _im2col(images, kernel_size).reshape(
        num_clients, batch * out_h * out_w, kernel_size * kernel_size
    )
    conv = columns @ conv_w.transpose(0, 2, 1)  # (C, B*oh*ow, F)
    conv = conv.reshape(num_clients, batch, out_h, out_w, num_filters)
    conv += conv_b[:, None, None, None, :]
    relu_mask = conv > 0
    activated = conv * relu_mask

    windows = activated.reshape(
        num_clients, batch, pool_h, 2, pool_w, 2, num_filters
    )
    pooled = windows.max(axis=(3, 5))  # (C, B, ph, pw, F)
    flat_windows = windows.transpose(0, 1, 2, 4, 6, 3, 5).reshape(
        num_clients, batch, pool_h, pool_w, num_filters, 4
    )
    argmax = flat_windows.argmax(axis=-1)

    flat = pooled.reshape(num_clients, batch, -1)
    logits = flat @ dense_w
    logits += dense_b[:, None, :]
    return {
        "columns": columns,
        "relu_mask": relu_mask,
        "argmax": argmax,
        "flat": flat,
        "logits": logits,
    }


def stacked_conv_backward(
    delta_logits: np.ndarray,
    cache: dict,
    conv_w: np.ndarray,
    dense_w: np.ndarray,
    l2: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass matching :func:`stacked_conv_forward`.

    ``delta_logits`` is the per-client, already count-normalised (and
    padding-masked) logit gradient ``(C, B, K)``.  Returns per-client
    ``(grad_conv_w, grad_conv_b, grad_dense_w, grad_dense_b)`` with the L2
    pull applied to both weight tensors (``l2`` is a ``(C,)`` vector).
    """
    num_clients, batch = delta_logits.shape[:2]
    relu_mask = cache["relu_mask"]  # (C, B, oh, ow, F)
    _, _, out_h, out_w, num_filters = relu_mask.shape
    pool_h, pool_w = out_h // 2, out_w // 2
    has_l2 = bool(l2.any())

    grad_dense_w = cache["flat"].transpose(0, 2, 1) @ delta_logits
    if has_l2:
        grad_dense_w += l2[:, None, None] * dense_w
    grad_dense_b = delta_logits.sum(axis=1)

    delta_flat = delta_logits @ dense_w.transpose(0, 2, 1)
    delta_pooled = delta_flat.reshape(
        num_clients, batch, pool_h, pool_w, num_filters
    )

    # Un-pool: route gradient to the argmax position of each 2x2 window.
    delta_windows = np.zeros(
        (num_clients, batch, pool_h, pool_w, num_filters, 4)
    )
    np.put_along_axis(
        delta_windows, cache["argmax"][..., None], delta_pooled[..., None], axis=-1
    )
    delta_act = (
        delta_windows.reshape(
            num_clients, batch, pool_h, pool_w, num_filters, 2, 2
        )
        .transpose(0, 1, 2, 5, 3, 6, 4)
        .reshape(num_clients, batch, out_h, out_w, num_filters)
    )
    delta_conv = delta_act * relu_mask
    delta_conv = delta_conv.reshape(
        num_clients, batch * out_h * out_w, num_filters
    )

    grad_conv_w = np.einsum("cpf,cpk->cfk", delta_conv, cache["columns"])
    if has_l2:
        grad_conv_w += l2[:, None, None] * conv_w
    grad_conv_b = delta_conv.sum(axis=1)
    return grad_conv_w, grad_conv_b, grad_dense_w, grad_dense_b


# ---------------------------------------------------------------------------
# Stacked optimizer steps + aggregation combine
# ---------------------------------------------------------------------------

def stacked_sgd_step(
    params: np.ndarray,
    grads: np.ndarray,
    learning_rates: np.ndarray,
    momenta: np.ndarray,
    velocity: np.ndarray | None,
    scratch: np.ndarray,
) -> np.ndarray:
    """One SGD step over a ``(C, P)`` stack, in place.

    ``velocity is None`` selects the momentum-free rule; otherwise the
    heavy-ball buffer is updated in place.  Row ``c`` computes exactly the
    scalar :meth:`repro.fl.optimizer.SGD.step` expression (bit-identical).
    """
    np.multiply(grads, learning_rates[:, None], out=scratch)
    if velocity is None:
        params -= scratch
        return params
    velocity *= momenta[:, None]
    velocity -= scratch
    params += velocity
    return params


def stacked_adam_step(
    params: np.ndarray,
    grads: np.ndarray,
    learning_rates: np.ndarray,
    beta1s: np.ndarray,
    beta2s: np.ndarray,
    epsilons: np.ndarray,
    m: np.ndarray,
    v: np.ndarray,
    bias1: np.ndarray,
    bias2: np.ndarray,
) -> np.ndarray:
    """One Adam step over a ``(C, P)`` stack, in place.

    ``bias1`` / ``bias2`` are the per-client bias corrections
    ``1 - beta**t`` precomputed by the caller — keeping the power out of
    the kernel lets every backend consume the exact same correction values.
    Moment buffers ``m`` / ``v`` update in place; each rounding step matches
    the scalar :meth:`repro.fl.optimizer.Adam.step` sequence (bit-identical).
    """
    m *= beta1s[:, None]
    m += (1.0 - beta1s[:, None]) * grads
    v *= beta2s[:, None]
    v += (1.0 - beta2s[:, None]) * grads**2
    m_hat = m / bias1[:, None]
    v_hat = v / bias2[:, None]
    params -= learning_rates[:, None] * m_hat / (np.sqrt(v_hat) + epsilons[:, None])
    return params


def fedavg_combine(weights: np.ndarray, stacked: np.ndarray) -> np.ndarray:
    """The FedAvg reduction: one ``(m,) @ (m, p)`` tensordot."""
    return weights @ stacked
