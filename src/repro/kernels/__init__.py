"""Pluggable compute backends for the hot kernels.

The profile's residue concentrates in a handful of dense numeric kernels:
the knapsack DP fill (winner determination and its batched/stacked variant),
the stacked conv forward/backward (CNN federations), the stacked optimizer
steps, and the FedAvg aggregation combine.  This package puts one seam in
front of them, modelled on a pluggable-kernel ABI: a named registry of
backends, each exposing some subset of the kernel entry points, with the
numpy implementation as the default *and* the pinned oracle.

Backends
--------
``numpy``
    The reference implementation (:mod:`repro.kernels.numpy_backend`).
    Always available; every other backend is pinned against it —
    bit-exact for the integer/float64 kernels, tolerance-pinned where
    float32 storage applies (see ``tests/core/test_backend_kernels.py``).
``numba``
    Optional njit/prange implementations of the knapsack DP fills and the
    fused optimizer steps (:mod:`repro.kernels.numba_backend`).  Loaded
    only when numba is importable; entry points it does not implement fall
    back to the numpy oracle per kernel.

Selection
---------
``REPRO_BACKEND=numpy|numba|auto`` (default ``auto``: numba when
importable, else numpy).  Tests and benchmarks pin a backend in-process
with :func:`use_backend`.

Adding a backend
----------------
Call :func:`register_backend` with a zero-argument loader returning a
:class:`KernelBackend` (or ``None`` when the platform dependency is
missing).  A backend's ``xp`` is its array namespace — numpy for the
built-ins, and the door through which an array-API GPU backend (cupy,
torch) would plug in: implement the same entry points over ``xp`` arrays
and register the loader; callers only ever go through :func:`kernel`.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "KernelBackend",
    "KERNEL_NAMES",
    "register_backend",
    "available_backends",
    "active_backend",
    "kernel",
    "use_backend",
]

#: The seam's entry points.  A backend may implement any subset; missing
#: entries resolve to the numpy oracle.
KERNEL_NAMES = (
    "knapsack_dp_fill",
    "knapsack_dp_fill_batch",
    "stacked_conv_forward",
    "stacked_conv_backward",
    "stacked_sgd_step",
    "stacked_adam_step",
    "fedavg_combine",
)


@dataclass
class KernelBackend:
    """One backend: a name, an array namespace, and its kernel table."""

    name: str
    xp: object
    kernels: dict[str, Callable] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"KernelBackend(name={self.name!r}, "
            f"kernels={sorted(self.kernels)})"
        )


_LOADERS: dict[str, Callable[[], KernelBackend | None]] = {}
# Loader results, memoised: a backend whose dependency is missing caches
# None so availability is probed once per process.
_LOADED: dict[str, KernelBackend | None] = {}
# In-process selection overrides (use_backend), innermost last.
_OVERRIDES: list[str] = []


def register_backend(
    name: str, loader: Callable[[], KernelBackend | None]
) -> None:
    """Register ``loader`` under ``name`` (replacing any previous loader)."""
    _LOADERS[name] = loader
    _LOADED.pop(name, None)


def _load(name: str) -> KernelBackend | None:
    if name not in _LOADED:
        loader = _LOADERS.get(name)
        _LOADED[name] = loader() if loader is not None else None
    return _LOADED[name]


def available_backends() -> tuple[str, ...]:
    """Names of registered backends whose dependencies are present."""
    return tuple(name for name in _LOADERS if _load(name) is not None)


def _resolve_name() -> str:
    if _OVERRIDES:
        return _OVERRIDES[-1]
    return os.environ.get("REPRO_BACKEND", "auto").strip().lower() or "auto"


def active_backend() -> KernelBackend:
    """The backend the current selection resolves to.

    ``auto`` prefers numba when it loads and falls back to numpy; a named
    backend that is registered but unavailable raises (a silent fallback
    would misreport every benchmark it labels).
    """
    name = _resolve_name()
    if name == "auto":
        backend = _load("numba")
        if backend is not None:
            return backend
        name = "numpy"
    if name not in _LOADERS:
        raise ValueError(
            f"unknown backend {name!r}; registered: {sorted(_LOADERS)}"
        )
    backend = _load(name)
    if backend is None:
        raise RuntimeError(
            f"backend {name!r} is registered but unavailable "
            f"(missing dependency); set REPRO_BACKEND=auto or numpy"
        )
    return backend


def kernel(name: str) -> Callable:
    """The active backend's implementation of ``name``.

    Falls back to the numpy oracle per entry point, so partial backends
    (numba implements only the DP fills and optimizer steps) compose with
    the reference for everything else.
    """
    backend = active_backend()
    fn = backend.kernels.get(name)
    if fn is not None:
        return fn
    reference = _load("numpy")
    assert reference is not None
    fn = reference.kernels.get(name)
    if fn is None:
        raise KeyError(f"unknown kernel {name!r}")
    return fn


@contextmanager
def use_backend(name: str):
    """Temporarily pin the backend selection (tests / benchmarks)."""
    _OVERRIDES.append(name)
    try:
        yield active_backend()
    finally:
        _OVERRIDES.pop()


def _load_numpy() -> KernelBackend:
    from repro.kernels import numpy_backend

    return numpy_backend.load()


def _load_numba() -> KernelBackend | None:
    from repro.kernels import numba_backend

    return numba_backend.load()


register_backend("numpy", _load_numpy)
register_backend("numba", _load_numba)
