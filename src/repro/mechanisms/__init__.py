"""Baseline mechanisms the paper family compares against.

Every baseline implements :class:`repro.core.mechanism.Mechanism`, so any of
them can drive the simulator interchangeably with LT-VCG:

* :class:`~repro.mechanisms.random_selection.RandomSelectionMechanism` —
  uniform client sampling, first-price payments (classic FedAvg sampling
  with naive compensation).
* :class:`~repro.mechanisms.fixed_price.FixedPriceMechanism` — posted-price
  offers (truthful but budget-blunt).
* :class:`~repro.mechanisms.greedy_first_price.GreedyFirstPriceMechanism` —
  pay-as-bid greedy knapsack (the manipulable baseline).
* :class:`~repro.mechanisms.greedy_critical.ProportionalShareMechanism` —
  Singer-style budget-feasible proportional share (truthful per-round
  budget baseline).
* :class:`~repro.mechanisms.myopic_vcg.MyopicVCGMechanism` — VCG without
  the Lyapunov controller (the no-long-term ablation).
* :class:`~repro.mechanisms.offline_optimal.OfflineOptimalPlanner` — the
  hindsight welfare optimum used as the regret anchor.
* :class:`~repro.mechanisms.oracle.AllAvailableMechanism` — recruit
  everyone, cost-no-object (learning-curve upper bound).

:mod:`repro.mechanisms.registry` maps mechanism *names* to factories so the
CLI and the orchestration subsystem construct mechanisms from one source of
truth; extend it with :func:`register_mechanism`.
"""

from repro.mechanisms.bandit_selection import EpsilonGreedyMechanism
from repro.mechanisms.fixed_price import FixedPriceMechanism
from repro.mechanisms.greedy_critical import ProportionalShareMechanism
from repro.mechanisms.greedy_first_price import GreedyFirstPriceMechanism
from repro.mechanisms.myopic_vcg import MyopicVCGMechanism
from repro.mechanisms.offline_optimal import OfflineOptimalPlanner, OfflinePlanMechanism
from repro.mechanisms.oracle import AllAvailableMechanism
from repro.mechanisms.random_selection import RandomSelectionMechanism
from repro.mechanisms.registry import (
    build_mechanism,
    mechanism_names,
    register_mechanism,
)

__all__ = [
    "AllAvailableMechanism",
    "EpsilonGreedyMechanism",
    "FixedPriceMechanism",
    "GreedyFirstPriceMechanism",
    "MyopicVCGMechanism",
    "OfflineOptimalPlanner",
    "OfflinePlanMechanism",
    "ProportionalShareMechanism",
    "RandomSelectionMechanism",
    "build_mechanism",
    "mechanism_names",
    "register_mechanism",
]
