"""Pay-as-bid greedy recruitment under a per-round payment budget.

The "obvious" engineering baseline: rank bidders by value-per-money
(``v_i / b_i``), recruit greedily while the bids fit the per-round budget,
and pay each winner its bid.  Spend-efficient on paper but *not truthful* —
winners are paid exactly what they ask, so every winner wants to inflate its
bid toward its critical value.  Experiment E5 quantifies exactly how much a
deviating client gains here, which is the motivation for LT-VCG's payment
rule.
"""

from __future__ import annotations

import numpy as np

from repro.core.bids import AuctionRound, RoundBatch, RoundOutcome
from repro.core.mechanism import Mechanism
from repro.utils.validation import check_positive

__all__ = ["GreedyFirstPriceMechanism"]


class GreedyFirstPriceMechanism(Mechanism):
    """Greedy value-density selection within a budget; pay bids.

    Parameters
    ----------
    budget_per_round:
        Hard cap on this round's total payment.
    max_winners:
        Optional cardinality cap.
    """

    name = "greedy-first-price"
    stateless = True

    def __init__(
        self, budget_per_round: float, max_winners: int | None = None
    ) -> None:
        self.budget_per_round = check_positive("budget_per_round", budget_per_round)
        if max_winners is not None and max_winners <= 0:
            raise ValueError(f"max_winners must be > 0, got {max_winners}")
        self.max_winners = max_winners

    def run_round(self, auction_round: AuctionRound) -> RoundOutcome:
        def density(bid) -> float:
            return auction_round.values[bid.client_id] / max(bid.cost, 1e-12)

        ranked = sorted(
            auction_round.bids, key=lambda bid: (-density(bid), bid.client_id)
        )
        selected: list[int] = []
        payments: dict[int, float] = {}
        remaining = self.budget_per_round
        for bid in ranked:
            if self.max_winners is not None and len(selected) >= self.max_winners:
                break
            if bid.cost > remaining + 1e-12:
                continue
            selected.append(bid.client_id)
            payments[bid.client_id] = bid.cost
            remaining -= bid.cost
        return RoundOutcome(
            round_index=auction_round.index,
            selected=tuple(sorted(selected)),
            payments=payments,
        )

    def run_rounds(self, batch: RoundBatch) -> list[RoundOutcome]:
        """Vectorised ranking; the budget scan stays a short per-round loop."""
        density = np.where(
            batch.mask, batch.values / np.maximum(batch.costs, 1e-12), -np.inf
        )
        order = np.lexsort((batch.client_ids, -density), axis=-1)
        sizes = batch.sizes()
        outcomes = []
        for r in range(len(batch)):
            remaining = self.budget_per_round
            selected: list[int] = []
            payments: dict[int, float] = {}
            for pos in range(int(sizes[r])):
                if self.max_winners is not None and len(selected) >= self.max_winners:
                    break
                column = order[r, pos]
                cost = float(batch.costs[r, column])
                if cost > remaining + 1e-12:
                    continue
                client_id = int(batch.client_ids[r, column])
                selected.append(client_id)
                payments[client_id] = cost
                remaining -= cost
            outcomes.append(
                RoundOutcome(
                    round_index=batch.index_at(r),
                    selected=tuple(sorted(selected)),
                    payments=payments,
                )
            )
        return outcomes
