"""Posted-price recruitment.

The server posts a take-it-or-leave-it price ``p``; every bidder whose bid
is at most ``p`` accepts, and the server recruits the highest-value
acceptors up to the cap, paying each exactly ``p``.  Posted prices are
truthful (a bid only acts as an accept/reject signal, and misreporting can
only cause accepting a losing price or rejecting a profitable one) but waste
budget: every winner is paid the full posted price regardless of its cost,
and the price must be tuned per deployment — the two weaknesses the
evaluation surfaces.
"""

from __future__ import annotations

import numpy as np

from repro.core.bids import AuctionRound, RoundBatch, RoundOutcome
from repro.core.mechanism import Mechanism
from repro.utils.validation import check_positive

__all__ = ["FixedPriceMechanism"]


class FixedPriceMechanism(Mechanism):
    """Recruit highest-value clients bidding at most the posted price.

    Parameters
    ----------
    price:
        The posted per-client price.
    max_winners:
        Per-round recruitment cap (``None`` = everyone who accepts).
    """

    name = "fixed-price"
    stateless = True

    def __init__(self, price: float, max_winners: int | None = None) -> None:
        self.price = check_positive("price", price)
        if max_winners is not None and max_winners <= 0:
            raise ValueError(f"max_winners must be > 0, got {max_winners}")
        self.max_winners = max_winners

    def run_round(self, auction_round: AuctionRound) -> RoundOutcome:
        acceptors = [
            bid.client_id
            for bid in auction_round.bids
            if bid.cost <= self.price + 1e-12
        ]
        acceptors.sort(key=lambda cid: (-auction_round.values[cid], cid))
        if self.max_winners is not None:
            acceptors = acceptors[: self.max_winners]
        selected = tuple(sorted(acceptors))
        payments = {client_id: self.price for client_id in selected}
        return RoundOutcome(
            round_index=auction_round.index, selected=selected, payments=payments
        )

    def run_rounds(self, batch: RoundBatch) -> list[RoundOutcome]:
        """Vectorised: acceptance mask + one stacked value sort."""
        accept = batch.mask & (batch.costs <= self.price + 1e-12)
        # Acceptors first, then by (-value, client_id) — the scalar order.
        order = np.lexsort((batch.client_ids, -batch.values, ~accept), axis=-1)
        counts = accept.sum(axis=1)
        if self.max_winners is not None:
            counts = np.minimum(counts, self.max_winners)
        outcomes = []
        for r in range(len(batch)):
            cols = order[r, : int(counts[r])]
            selected = tuple(sorted(int(i) for i in batch.client_ids[r, cols]))
            outcomes.append(
                RoundOutcome(
                    round_index=batch.index_at(r),
                    selected=selected,
                    payments={client_id: self.price for client_id in selected},
                )
            )
        return outcomes
