"""Cost-no-object oracle: recruit every available client.

The learning-curve upper bound: every bidder is selected every round and
paid its bid.  No budget discipline, no selection at all — it shows the best
accuracy any selection mechanism could hope for and the (typically enormous)
spend required to get it.
"""

from __future__ import annotations

import numpy as np

from repro.core.bids import AuctionRound, RoundBatch, RoundOutcome
from repro.core.mechanism import Mechanism

__all__ = ["AllAvailableMechanism"]


class AllAvailableMechanism(Mechanism):
    """Select all bidders, pay each its bid."""

    name = "all-available"
    stateless = True

    def run_round(self, auction_round: AuctionRound) -> RoundOutcome:
        selected = tuple(sorted(auction_round.client_ids))
        payments = {
            client_id: auction_round.bid_of(client_id).cost for client_id in selected
        }
        return RoundOutcome(
            round_index=auction_round.index, selected=selected, payments=payments
        )

    def run_rounds(self, batch: RoundBatch) -> list[RoundOutcome]:
        outcomes = []
        for r in range(len(batch)):
            columns = np.flatnonzero(batch.mask[r])
            pairs = sorted(
                (int(batch.client_ids[r, j]), float(batch.costs[r, j]))
                for j in columns
            )
            outcomes.append(
                RoundOutcome(
                    round_index=batch.index_at(r),
                    selected=tuple(cid for cid, _ in pairs),
                    payments=dict(pairs),
                )
            )
        return outcomes
