"""Epsilon-greedy bandit selection — quality-aware, incentive-naive.

The natural engineering answer to "which clients help the model?" is a
bandit over observed contributions, with no auction at all: explore with
probability epsilon, otherwise pick the clients with the best observed
contribution-per-dollar, and pay each winner its bid.  This baseline
isolates *learning who is useful* from *paying truthfully*: it can match
LT-VCG's selection quality once its estimates converge, but it is
pay-as-bid (manipulable, E5-style) and has no budget pacing beyond a hard
per-round cap.  Comparing it against LT-VCG + LearnedValuation separates
the contribution of the bandit from the contribution of the mechanism.
"""

from __future__ import annotations

import numpy as np

from repro.core.bids import AuctionRound, RoundOutcome
from repro.core.mechanism import Mechanism
from repro.utils.validation import check_positive, check_probability

__all__ = ["EpsilonGreedyMechanism"]


class EpsilonGreedyMechanism(Mechanism):
    """Explore/exploit client selection with pay-as-bid payments.

    Parameters
    ----------
    budget_per_round:
        Hard per-round payment cap.
    max_winners:
        Per-round cardinality cap.
    epsilon:
        Exploration probability per selection slot.
    rng:
        Generator for exploration draws.
    optimistic_value:
        Score for never-observed clients (optimism drives initial coverage).

    Feed observed contributions back per round via
    :meth:`observe_contributions` (the simulator does this automatically for
    valuations; for this mechanism call it from the benchmark loop, or rely
    on its internal win-count proxy when contributions are unavailable).
    """

    name = "epsilon-greedy"
    # Not stateless: contribution estimates and the exploration generator
    # both advance round by round, so run_rounds keeps the sequential
    # fallback and probes use the deep-copy counterfactual path.
    stateless = False

    def __init__(
        self,
        budget_per_round: float,
        max_winners: int,
        *,
        epsilon: float = 0.1,
        rng: np.random.Generator,
        optimistic_value: float = 1.0,
    ) -> None:
        self.budget_per_round = check_positive("budget_per_round", budget_per_round)
        if max_winners <= 0:
            raise ValueError(f"max_winners must be > 0, got {max_winners}")
        self.max_winners = int(max_winners)
        self.epsilon = check_probability("epsilon", epsilon)
        self.rng = rng
        self.optimistic_value = check_positive("optimistic_value", optimistic_value)
        self._sums: dict[int, float] = {}
        self._counts: dict[int, int] = {}

    def observe_contributions(self, contributions: dict[int, float]) -> None:
        """Feed realised per-client contributions back into the estimates."""
        for client_id, contribution in contributions.items():
            if contribution < 0:
                raise ValueError(f"negative contribution for client {client_id}")
            self._sums[client_id] = self._sums.get(client_id, 0.0) + float(contribution)
            self._counts[client_id] = self._counts.get(client_id, 0) + 1

    def estimate_of(self, client_id: int) -> float:
        """Current contribution estimate (optimistic when unobserved)."""
        count = self._counts.get(client_id, 0)
        if count == 0:
            return self.optimistic_value
        return self._sums[client_id] / count

    def run_round(self, auction_round: AuctionRound) -> RoundOutcome:
        candidates = list(auction_round.bids)
        selected: list[int] = []
        payments: dict[int, float] = {}
        remaining = self.budget_per_round

        def efficiency(bid) -> float:
            return self.estimate_of(bid.client_id) / max(bid.cost, 1e-12)

        while candidates and len(selected) < self.max_winners:
            affordable = [bid for bid in candidates if bid.cost <= remaining + 1e-12]
            if not affordable:
                break
            if self.rng.random() < self.epsilon:
                choice = affordable[int(self.rng.integers(len(affordable)))]
            else:
                choice = max(affordable, key=lambda bid: (efficiency(bid), -bid.client_id))
            selected.append(choice.client_id)
            payments[choice.client_id] = choice.cost  # pay-as-bid
            remaining -= choice.cost
            candidates.remove(choice)

        return RoundOutcome(
            round_index=auction_round.index,
            selected=tuple(sorted(selected)),
            payments=payments,
        )

    def reset(self) -> None:
        self._sums = {}
        self._counts = {}
