"""Budget-feasible proportional-share mechanism (Singer-style).

The strongest truthful *per-round* budget baseline: it guarantees the hard
per-round budget is never exceeded while remaining dominant-strategy
truthful, at the cost of conservative selection (it typically recruits fewer
clients than LT-VCG for the same long-term spend — the gap E2/E3 measure).

Rule (reverse-auction proportional share, following Singer 2010):

1. sort bidders by value density ``v_i / b_i`` descending;
2. take the largest prefix ``S = {1..k}`` such that every member's bid
   satisfies ``b_i <= B * v_i / V(S)`` where ``V(S)`` is the prefix's total
   value and ``B`` the round budget;
3. pay each winner ``min(critical-density bid, proportional share
   B * v_i / V(S))``.

Monotone allocation + payments at the threshold makes it truthful; payments
sum to at most ``B`` by construction.
"""

from __future__ import annotations

import numpy as np

from repro.core.bids import AuctionRound, Bid, RoundBatch, RoundOutcome
from repro.core.mechanism import Mechanism
from repro.utils.validation import check_positive

__all__ = ["ProportionalShareMechanism"]


class ProportionalShareMechanism(Mechanism):
    """Truthful, hard-budget-feasible greedy proportional share.

    Parameters
    ----------
    budget_per_round:
        Hard per-round payment budget ``B``.
    max_winners:
        Optional cardinality cap applied on top of the budget rule.
    """

    name = "prop-share"
    stateless = True

    def __init__(
        self, budget_per_round: float, max_winners: int | None = None
    ) -> None:
        self.budget_per_round = check_positive("budget_per_round", budget_per_round)
        if max_winners is not None and max_winners <= 0:
            raise ValueError(f"max_winners must be > 0, got {max_winners}")
        self.max_winners = max_winners

    def _ranked(self, auction_round: AuctionRound) -> list[Bid]:
        def density(bid: Bid) -> float:
            return auction_round.values[bid.client_id] / max(bid.cost, 1e-12)

        bids = [
            bid for bid in auction_round.bids if auction_round.values[bid.client_id] > 0
        ]
        return sorted(bids, key=lambda bid: (-density(bid), bid.client_id))

    def _winning_prefix(self, ranked: list[Bid], values: dict[int, float]) -> int:
        """Largest k such that the k-prefix satisfies the share condition.

        The k-prefix is feasible iff ``b_j <= B * v_j / V_k`` for every
        member ``j`` — equivalently ``max_{j<=k}(b_j / v_j) <= B / V_k``.
        Both the running ratio maximum and the prefix value total are
        monotone, so one cumulative scan replaces the quadratic
        every-member-per-prefix recheck.
        """
        if not ranked:
            return 0
        costs = np.array([bid.cost for bid in ranked])
        # _ranked only admits strictly positive values; the floor keeps the
        # ratio finite if a caller ever bypasses that filter.
        vals = np.maximum(np.array([values[bid.client_id] for bid in ranked]), 1e-12)
        totals = np.cumsum(vals)
        worst_ratio = np.maximum.accumulate((costs - 1e-12) / vals)
        ok = worst_ratio * totals <= self.budget_per_round
        if self.max_winners is not None:
            ok[self.max_winners:] = False
        feasible = np.flatnonzero(ok)
        return int(feasible[-1]) + 1 if feasible.size else 0

    def run_round(self, auction_round: AuctionRound) -> RoundOutcome:
        values = dict(auction_round.values)
        ranked = self._ranked(auction_round)
        k = self._winning_prefix(ranked, values)
        winners = ranked[:k]
        if not winners:
            return RoundOutcome(
                round_index=auction_round.index, selected=(), payments={}
            )

        total_value = sum(values[bid.client_id] for bid in winners)
        payments: dict[int, float] = {}
        for position, bid in enumerate(winners):
            value = values[bid.client_id]
            # Critical density: the bid at which this client would fall
            # behind the first loser in the density order (or be unbounded
            # when there is no loser).
            if k < len(ranked):
                next_density = values[ranked[k].client_id] / max(ranked[k].cost, 1e-12)
                density_cap = value / next_density if next_density > 0 else float("inf")
            else:
                density_cap = float("inf")
            share_cap = self.budget_per_round * value / total_value
            payment = min(density_cap, share_cap)
            payments[bid.client_id] = max(payment, bid.cost)
        return RoundOutcome(
            round_index=auction_round.index,
            selected=tuple(sorted(payments)),
            payments=payments,
        )

    def run_rounds(self, batch: RoundBatch) -> list[RoundOutcome]:
        """Vectorised: stacked density sort + cumulative share-rule scan."""
        eligible = batch.mask & (batch.values > 0)
        density = np.where(
            eligible, batch.values / np.maximum(batch.costs, 1e-12), -np.inf
        )
        order = np.lexsort((batch.client_ids, -density), axis=-1)
        counts = eligible.sum(axis=1)

        ordered_costs = np.take_along_axis(batch.costs, order, axis=1)
        ordered_values = np.take_along_axis(batch.values, order, axis=1)
        floored = np.maximum(ordered_values, 1e-12)
        totals = np.cumsum(floored, axis=1)
        worst_ratio = np.maximum.accumulate((ordered_costs - 1e-12) / floored, axis=1)
        positions = np.arange(batch.width)
        ok = (worst_ratio * totals <= self.budget_per_round) & (
            positions < counts[:, None]
        )
        if self.max_winners is not None:
            ok[:, self.max_winners:] = False
        prefix = np.where(ok, positions, -1).max(axis=1) + 1 if batch.width else counts * 0

        outcomes = []
        for r in range(len(batch)):
            k = int(prefix[r])
            if k == 0:
                outcomes.append(
                    RoundOutcome(
                        round_index=batch.index_at(r), selected=(), payments={}
                    )
                )
                continue
            total_value = sum(float(v) for v in ordered_values[r, :k])
            if k < int(counts[r]):
                next_density = float(ordered_values[r, k]) / max(
                    float(ordered_costs[r, k]), 1e-12
                )
            else:
                next_density = 0.0
            payments: dict[int, float] = {}
            for pos in range(k):
                client_id = int(batch.client_ids[r, order[r, pos]])
                value = float(ordered_values[r, pos])
                density_cap = (
                    value / next_density if next_density > 0 else float("inf")
                )
                share_cap = self.budget_per_round * value / total_value
                payment = min(density_cap, share_cap)
                payments[client_id] = max(payment, float(ordered_costs[r, pos]))
            outcomes.append(
                RoundOutcome(
                    round_index=batch.index_at(r),
                    selected=tuple(sorted(payments)),
                    payments=payments,
                )
            )
        return outcomes
