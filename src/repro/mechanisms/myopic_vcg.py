"""Myopic VCG — the no-Lyapunov ablation.

Runs the identical per-round weighted VCG auction as LT-VCG but with the
budget virtual queue frozen at zero: the cost weight stays at ``V`` forever,
so the mechanism maximises per-round welfare and *ignores* the long-term
budget entirely.  Truthful and individually rational (it is still an affine
maximizer), but experiment E3/E10 show its cumulative spend drifting
arbitrarily far above the budget line — isolating exactly what the Lyapunov
controller contributes.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.bids import AuctionRound, RoundBatch, RoundOutcome
from repro.core.mechanism import Mechanism
from repro.core.vcg import SingleRoundVCGAuction, VCGAuctionResult
from repro.core.winner_determination import SolveCache

__all__ = ["MyopicVCGMechanism"]


class MyopicVCGMechanism(Mechanism):
    """Per-round welfare-maximising VCG with no long-term control.

    Parameters mirror :class:`repro.core.longterm_vcg.LongTermVCGConfig`
    minus everything budget- and sustainability-related.
    """

    name = "myopic-vcg"
    stateless = True

    def __init__(
        self,
        *,
        max_winners: int | None = None,
        wd_method: str = "exact",
        demands: Mapping[int, float] | None = None,
        capacity: float | None = None,
    ) -> None:
        self.max_winners = max_winners
        self.wd_method = wd_method
        self.demands = demands
        self.capacity = capacity
        # Myopic weights never change, so identical rounds recur verbatim —
        # share one solve cache across the per-round auctions.
        self.solve_cache = SolveCache()

    def _auction(self) -> SingleRoundVCGAuction:
        return SingleRoundVCGAuction(
            value_weight=1.0,
            cost_weight=1.0,
            max_winners=self.max_winners,
            demands=self.demands,
            capacity=self.capacity,
            wd_method=self.wd_method,
            solve_cache=self.solve_cache,
        )

    def _outcome(self, round_index: int, result: VCGAuctionResult) -> RoundOutcome:
        return RoundOutcome(
            round_index=round_index,
            selected=result.selected,
            payments=dict(result.payments),
            diagnostics={
                "objective": result.objective,
                "declared_welfare": result.declared_welfare,
                "total_payment": result.total_payment,
            },
        )

    def run_round(self, auction_round: AuctionRound) -> RoundOutcome:
        result = self._auction().run(auction_round)
        return self._outcome(auction_round.index, result)

    def run_rounds(self, batch: RoundBatch) -> list[RoundOutcome]:
        """Vectorised: all rounds through one stacked weighted-VCG solve."""
        results = self._auction().run_batch(batch)
        return [
            self._outcome(batch.index_at(r), result)
            for r, result in enumerate(results)
        ]

    def attach_solve_cache(self, cache: SolveCache) -> None:
        """Share ``cache`` across this mechanism's per-round auctions."""
        self.solve_cache = cache

    def reset(self) -> None:
        # Drop the cache so repetitions are independent (see Mechanism.reset).
        self.solve_cache = SolveCache()
