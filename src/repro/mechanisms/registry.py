"""Name → factory registry for mechanisms.

The CLI, the orchestration subsystem, and user scripts all need to turn a
mechanism *name* (a string in a config file or on a command line) into a
constructed :class:`~repro.core.mechanism.Mechanism`.  This registry is the
single source of truth for that mapping: each factory receives the full
:class:`~repro.config.ExperimentConfig` and builds a mechanism from it, so
every consumer resolves names identically.

Registering a new mechanism is one decorator::

    @register_mechanism("my-mechanism")
    def _build_my_mechanism(config: ExperimentConfig) -> Mechanism:
        return MyMechanism(config.budget_per_round, config.max_winners)

after which ``python -m repro.cli --mechanism my-mechanism`` and sweep grids
over ``"my-mechanism"`` both work with no further wiring.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.config import ExperimentConfig
from repro.core.longterm_vcg import LongTermVCGConfig, LongTermVCGMechanism
from repro.core.mechanism import Mechanism
from repro.mechanisms.bandit_selection import EpsilonGreedyMechanism
from repro.mechanisms.fixed_price import FixedPriceMechanism
from repro.mechanisms.greedy_critical import ProportionalShareMechanism
from repro.mechanisms.greedy_first_price import GreedyFirstPriceMechanism
from repro.mechanisms.myopic_vcg import MyopicVCGMechanism
from repro.mechanisms.oracle import AllAvailableMechanism
from repro.mechanisms.random_selection import RandomSelectionMechanism

__all__ = ["MechanismFactory", "register_mechanism", "mechanism_names", "build_mechanism"]

MechanismFactory = Callable[[ExperimentConfig], Mechanism]

_REGISTRY: dict[str, MechanismFactory] = {}


def register_mechanism(name: str) -> Callable[[MechanismFactory], MechanismFactory]:
    """Decorator registering ``factory`` under ``name`` (must be unique)."""

    def decorate(factory: MechanismFactory) -> MechanismFactory:
        if name in _REGISTRY:
            raise ValueError(f"mechanism {name!r} already registered")
        _REGISTRY[name] = factory
        return factory

    return decorate


def mechanism_names() -> tuple[str, ...]:
    """All registered mechanism names, in registration order."""
    return tuple(_REGISTRY)


def build_mechanism(config: ExperimentConfig) -> Mechanism:
    """Instantiate the mechanism named in ``config.extras['mechanism']``
    (defaulting to ``lt-vcg``) from the registry.
    """
    name = str(config.extras.get("mechanism", "lt-vcg"))
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown mechanism {name!r}; choose from {', '.join(_REGISTRY)}"
        )
    return factory(config)


def _participation_targets(config: ExperimentConfig) -> dict[int, float] | None:
    if config.participation_target > 0:
        return {cid: config.participation_target for cid in range(config.num_clients)}
    return None


@register_mechanism("lt-vcg")
def _build_lt_vcg(config: ExperimentConfig) -> Mechanism:
    return LongTermVCGMechanism(
        LongTermVCGConfig(
            v=config.v,
            budget_per_round=config.budget_per_round,
            max_winners=config.max_winners,
            wd_method=config.wd_method,
            participation_targets=_participation_targets(config),
            sustainability_weight=config.sustainability_weight,
        )
    )


@register_mechanism("lt-vcg-greedy")
def _build_lt_vcg_greedy(config: ExperimentConfig) -> Mechanism:
    return LongTermVCGMechanism(
        LongTermVCGConfig(
            v=config.v,
            budget_per_round=config.budget_per_round,
            max_winners=config.max_winners,
            wd_method="greedy",
            participation_targets=_participation_targets(config),
            sustainability_weight=config.sustainability_weight,
        )
    )


@register_mechanism("myopic-vcg")
def _build_myopic_vcg(config: ExperimentConfig) -> Mechanism:
    return MyopicVCGMechanism(max_winners=config.max_winners)


@register_mechanism("prop-share")
def _build_prop_share(config: ExperimentConfig) -> Mechanism:
    return ProportionalShareMechanism(config.budget_per_round, config.max_winners)


@register_mechanism("greedy-first-price")
def _build_greedy_first_price(config: ExperimentConfig) -> Mechanism:
    return GreedyFirstPriceMechanism(config.budget_per_round, config.max_winners)


@register_mechanism("fixed-price")
def _build_fixed_price(config: ExperimentConfig) -> Mechanism:
    price = float(config.extras.get("price", 1.0))
    return FixedPriceMechanism(price=price, max_winners=config.max_winners)


@register_mechanism("random")
def _build_random(config: ExperimentConfig) -> Mechanism:
    return RandomSelectionMechanism(
        config.max_winners, np.random.default_rng(config.seed + 1)
    )


@register_mechanism("all-available")
def _build_all_available(config: ExperimentConfig) -> Mechanism:
    return AllAvailableMechanism()


@register_mechanism("epsilon-greedy")
def _build_epsilon_greedy(config: ExperimentConfig) -> Mechanism:
    return EpsilonGreedyMechanism(
        config.budget_per_round,
        config.max_winners,
        epsilon=float(config.extras.get("epsilon", 0.1)),
        rng=np.random.default_rng(config.seed + 2),
    )
