"""Uniform random client selection with pay-as-bid compensation.

The classic FedAvg client-sampling rule with the minimal compensation scheme
a deployment would bolt on: winners are paid their bid.  Not truthful (a
client gains by overbidding, since selection ignores bids entirely) and has
no budget control — both failure modes the evaluation quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.core.bids import AuctionRound, RoundOutcome
from repro.core.mechanism import Mechanism

__all__ = ["RandomSelectionMechanism"]


class RandomSelectionMechanism(Mechanism):
    """Pick up to ``max_winners`` bidders uniformly at random; pay bids.

    Parameters
    ----------
    max_winners:
        Per-round selection cap (``None`` selects everyone).
    rng:
        Generator for the sampling (owned by the mechanism so runs are
        reproducible).

    Not :attr:`~repro.core.mechanism.Mechanism.stateless`: the generator's
    state advances round by round, so batch order matters and
    :meth:`~repro.core.mechanism.Mechanism.run_rounds` keeps the sequential
    fallback (which consumes the generator exactly like a loop of
    :meth:`run_round` calls — pinned in the test suite).
    """

    name = "random"

    def __init__(self, max_winners: int | None, rng: np.random.Generator) -> None:
        if max_winners is not None and max_winners <= 0:
            raise ValueError(f"max_winners must be > 0, got {max_winners}")
        self.max_winners = max_winners
        self.rng = rng

    def run_round(self, auction_round: AuctionRound) -> RoundOutcome:
        ids = list(auction_round.client_ids)
        if self.max_winners is not None and len(ids) > self.max_winners:
            chosen = self.rng.choice(len(ids), size=self.max_winners, replace=False)
            ids = [ids[i] for i in chosen]
        selected = tuple(sorted(ids))
        payments = {
            client_id: auction_round.bid_of(client_id).cost for client_id in selected
        }
        return RoundOutcome(
            round_index=auction_round.index, selected=selected, payments=payments
        )
