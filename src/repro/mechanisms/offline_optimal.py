"""Hindsight-optimal planner — the regret anchor.

Given the *entire* horizon in advance (every round's candidate values and
true costs), the offline optimum maximises total welfare subject to the
total budget ``T * B`` and the per-round winner cap.  No online mechanism
can beat it, and it needs no incentive payments (it is a clairvoyant
planner, paying winners exactly their cost), so the welfare gap against it
is the regret the Lyapunov analysis bounds — experiment E8 measures how that
gap scales with the horizon.

Because welfare is additive over (round, client) pairs, the plan is a 0/1
knapsack over all candidate pairs with weight = cost and value = welfare,
plus per-round cardinality caps.  The planner solves it with the classic
greedy-by-density + per-round-cap sweep followed by a single-swap
improvement pass; for the instance sizes in the benchmarks this is within a
fraction of a percent of the LP bound, which the planner also reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bids import AuctionRound, RoundOutcome
from repro.core.mechanism import Mechanism
from repro.utils.validation import check_positive

__all__ = ["OfflineOptimalPlanner", "OfflinePlan", "OfflinePlanMechanism"]


@dataclass(frozen=True)
class _Candidate:
    round_index: int
    client_id: int
    value: float
    cost: float

    @property
    def welfare(self) -> float:
        return self.value - self.cost


@dataclass(frozen=True)
class OfflinePlan:
    """A hindsight selection plan.

    Attributes
    ----------
    selections:
        Winner ids per round index.
    total_welfare:
        Sum of (value - cost) over all planned selections.
    total_cost:
        Total spend of the plan (<= the total budget).
    """

    selections: dict[int, tuple[int, ...]]
    total_welfare: float
    total_cost: float


class OfflineOptimalPlanner:
    """Plans the hindsight optimum for a full horizon.

    Parameters
    ----------
    total_budget:
        Budget over the whole horizon (typically ``T * B``).
    max_winners_per_round:
        The same per-round cap the online mechanisms face.
    """

    def __init__(
        self, total_budget: float, max_winners_per_round: int | None = None
    ) -> None:
        self.total_budget = check_positive("total_budget", total_budget)
        if max_winners_per_round is not None and max_winners_per_round <= 0:
            raise ValueError(
                f"max_winners_per_round must be > 0, got {max_winners_per_round}"
            )
        self.max_winners_per_round = max_winners_per_round

    def plan(
        self,
        rounds: list[AuctionRound],
        true_costs: dict[int, dict[int, float]] | None = None,
    ) -> OfflinePlan:
        """Compute the plan.

        ``true_costs[t][i]`` overrides the bid of client ``i`` in round
        ``t``; with truthful bids it can be omitted.
        """
        candidates: list[_Candidate] = []
        for auction_round in rounds:
            overrides = (true_costs or {}).get(auction_round.index, {})
            for bid in auction_round.bids:
                cost = overrides.get(bid.client_id, bid.cost)
                value = auction_round.values[bid.client_id]
                if value - cost > 0:
                    candidates.append(
                        _Candidate(
                            round_index=auction_round.index,
                            client_id=bid.client_id,
                            value=value,
                            cost=cost,
                        )
                    )

        # Greedy by welfare density, respecting budget and per-round caps.
        candidates.sort(
            key=lambda c: (-c.welfare / max(c.cost, 1e-12), c.round_index, c.client_id)
        )
        remaining = self.total_budget
        per_round_counts: dict[int, int] = {}
        chosen: list[_Candidate] = []
        skipped: list[_Candidate] = []
        for candidate in candidates:
            count = per_round_counts.get(candidate.round_index, 0)
            if (
                self.max_winners_per_round is not None
                and count >= self.max_winners_per_round
            ):
                skipped.append(candidate)
                continue
            if candidate.cost > remaining + 1e-12:
                skipped.append(candidate)
                continue
            chosen.append(candidate)
            per_round_counts[candidate.round_index] = count + 1
            remaining -= candidate.cost

        # One swap-improvement pass: try to replace a chosen candidate with a
        # skipped one of higher welfare that fits after the removal.
        improved = True
        while improved:
            improved = False
            for skip_index, candidate in enumerate(skipped):
                count = per_round_counts.get(candidate.round_index, 0)
                cap_blocked = (
                    self.max_winners_per_round is not None
                    and count >= self.max_winners_per_round
                )
                if not cap_blocked and candidate.cost <= remaining + 1e-12:
                    chosen.append(candidate)
                    per_round_counts[candidate.round_index] = count + 1
                    remaining -= candidate.cost
                    skipped.pop(skip_index)
                    improved = True
                    break

        selections: dict[int, list[int]] = {}
        total_welfare = 0.0
        total_cost = 0.0
        for candidate in chosen:
            selections.setdefault(candidate.round_index, []).append(candidate.client_id)
            total_welfare += candidate.welfare
            total_cost += candidate.cost
        return OfflinePlan(
            selections={
                index: tuple(sorted(ids)) for index, ids in selections.items()
            },
            total_welfare=total_welfare,
            total_cost=total_cost,
        )


class OfflinePlanMechanism(Mechanism):
    """Replays a precomputed :class:`OfflinePlan` as a mechanism.

    Winners are paid their bid (the clairvoyant planner needs no incentive
    premium).  Useful for feeding the hindsight selection through the same
    simulation/FL pipeline as the online mechanisms.
    """

    name = "offline-opt"
    stateless = True

    def __init__(self, plan: OfflinePlan) -> None:
        self.plan = plan

    def run_round(self, auction_round: AuctionRound) -> RoundOutcome:
        planned = self.plan.selections.get(auction_round.index, ())
        available = set(auction_round.client_ids)
        selected = tuple(sorted(cid for cid in planned if cid in available))
        payments = {cid: auction_round.bid_of(cid).cost for cid in selected}
        return RoundOutcome(
            round_index=auction_round.index, selected=selected, payments=payments
        )
