"""Multinomial logistic regression (softmax regression) on numpy.

The workhorse model for mechanism experiments: convex, fast, and accurate
enough on the synthetic datasets that differences between client-selection
mechanisms show up clearly in the learning curves.
"""

from __future__ import annotations

import numpy as np

from repro.fl.model import Model, cross_entropy, one_hot, softmax
from repro.utils.validation import check_non_negative

__all__ = ["SoftmaxRegression"]


class SoftmaxRegression(Model):
    """Linear classifier ``p = softmax(X W + b)`` with L2 regularisation.

    Parameters
    ----------
    num_features:
        Input dimensionality ``d``.
    num_classes:
        Number of output classes ``C``.
    l2:
        L2 penalty coefficient applied to the weight matrix (not the bias).
    seed:
        Seed for the (small Gaussian) weight initialisation.
    """

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        *,
        l2: float = 0.0,
        seed: int = 0,
    ) -> None:
        if num_features <= 0 or num_classes <= 1:
            raise ValueError(
                f"need num_features > 0 and num_classes > 1, got "
                f"{num_features} and {num_classes}"
            )
        self.num_features = int(num_features)
        self.num_classes = int(num_classes)
        self.l2 = check_non_negative("l2", l2)
        rng = np.random.default_rng(seed)
        self.weights = rng.normal(0.0, 0.01, size=(num_features, num_classes))
        self.bias = np.zeros(num_classes)

    @property
    def num_params(self) -> int:
        return self.num_features * self.num_classes + self.num_classes

    def get_params(self) -> np.ndarray:
        return np.concatenate([self.weights.ravel(), self.bias]).astype(float)

    def set_params(self, flat: np.ndarray) -> None:
        flat = self._check_flat(flat)
        split = self.num_features * self.num_classes
        self.weights = flat[:split].reshape(self.num_features, self.num_classes).copy()
        self.bias = flat[split:].copy()

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        return softmax(features @ self.weights + self.bias)

    def loss_and_grad(
        self, features: np.ndarray, labels: np.ndarray
    ) -> tuple[float, np.ndarray]:
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=int)
        n = features.shape[0]
        if n == 0:
            return 0.0, np.zeros(self.num_params)
        probabilities = self.predict_proba(features)
        loss = cross_entropy(probabilities, labels)
        loss += 0.5 * self.l2 * float((self.weights**2).sum())

        delta = (probabilities - one_hot(labels, self.num_classes)) / n
        grad_weights = features.T @ delta + self.l2 * self.weights
        grad_bias = delta.sum(axis=0)
        return loss, np.concatenate([grad_weights.ravel(), grad_bias])

    def __repr__(self) -> str:
        return (
            f"SoftmaxRegression(num_features={self.num_features}, "
            f"num_classes={self.num_classes}, l2={self.l2})"
        )
