"""Multinomial logistic regression (softmax regression) on numpy.

The workhorse model for mechanism experiments: convex, fast, and accurate
enough on the synthetic datasets that differences between client-selection
mechanisms show up clearly in the learning curves.

:func:`stacked_softmax_kernel` provides the leading-client-axis variant of
:meth:`SoftmaxRegression.loss_and_grad` used by the vectorised
local-training engine (:mod:`repro.fl.batch`): one batched matmul pipeline
computes every client's minibatch loss and gradient simultaneously.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.fl.model import Model, cross_entropy, one_hot, softmax
from repro.utils.validation import check_non_negative

__all__ = ["SoftmaxRegression", "stacked_softmax_kernel", "StackedSoftmaxKernel"]


def _colfold_max(tensor: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Last-axis max via a column fold, written into ``out``.

    For the short class axis a chain of ``np.maximum`` over full-width
    column slices beats numpy's per-row reduce severalfold, and — max being
    exactly associative — the result is bit-identical to
    ``tensor.max(axis=-1, keepdims=True)``.
    """
    flat = tensor.reshape(-1, tensor.shape[-1])
    target = out.reshape(-1)
    np.copyto(target, flat[:, 0])
    for column in range(1, flat.shape[1]):
        np.maximum(target, flat[:, column], out=target)
    return out


class SoftmaxRegression(Model):
    """Linear classifier ``p = softmax(X W + b)`` with L2 regularisation.

    Parameters
    ----------
    num_features:
        Input dimensionality ``d``.
    num_classes:
        Number of output classes ``C``.
    l2:
        L2 penalty coefficient applied to the weight matrix (not the bias).
    seed:
        Seed for the (small Gaussian) weight initialisation.
    """

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        *,
        l2: float = 0.0,
        seed: int = 0,
    ) -> None:
        if num_features <= 0 or num_classes <= 1:
            raise ValueError(
                f"need num_features > 0 and num_classes > 1, got "
                f"{num_features} and {num_classes}"
            )
        self.num_features = int(num_features)
        self.num_classes = int(num_classes)
        self.l2 = check_non_negative("l2", l2)
        rng = np.random.default_rng(seed)
        self.weights = rng.normal(0.0, 0.01, size=(num_features, num_classes))
        self.bias = np.zeros(num_classes)

    @property
    def num_params(self) -> int:
        return self.num_features * self.num_classes + self.num_classes

    def get_params(self) -> np.ndarray:
        return np.concatenate([self.weights.ravel(), self.bias]).astype(float)

    def set_params(self, flat: np.ndarray) -> None:
        flat = self._check_flat(flat)
        split = self.num_features * self.num_classes
        self.weights = flat[:split].reshape(self.num_features, self.num_classes).copy()
        self.bias = flat[split:].copy()

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        return softmax(features @ self.weights + self.bias)

    def loss_and_grad(
        self, features: np.ndarray, labels: np.ndarray
    ) -> tuple[float, np.ndarray]:
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=int)
        n = features.shape[0]
        if n == 0:
            return 0.0, np.zeros(self.num_params)
        probabilities = self.predict_proba(features)
        loss = cross_entropy(probabilities, labels)
        loss += 0.5 * self.l2 * float((self.weights**2).sum())

        delta = (probabilities - one_hot(labels, self.num_classes)) / n
        grad_weights = features.T @ delta + self.l2 * self.weights
        grad_bias = delta.sum(axis=0)
        return loss, np.concatenate([grad_weights.ravel(), grad_bias])

    def __repr__(self) -> str:
        return (
            f"SoftmaxRegression(num_features={self.num_features}, "
            f"num_classes={self.num_classes}, l2={self.l2})"
        )


class StackedSoftmaxKernel:
    """Per-client loss/grad for a homogeneous :class:`SoftmaxRegression` stack.

    Operates on a leading client axis: ``params`` is ``(C, P)``, minibatch
    ``features``/``labels`` are ``(C, B, d)`` / ``(C, B)``, and ``mask``
    flags the real (non-padding) minibatch rows.  Per client the arithmetic
    mirrors :meth:`SoftmaxRegression.loss_and_grad` operation for operation
    (batched matmul in place of the per-client matmul, masked sums in place
    of full sums), so per-client results agree with the scalar path to
    floating-point associativity (pinned at 1e-9 in the test suite).
    """

    def __init__(self, num_features: int, num_classes: int, l2: np.ndarray) -> None:
        self.num_features = int(num_features)
        self.num_classes = int(num_classes)
        self.l2 = np.asarray(l2, dtype=float)
        self.num_params = self.num_features * self.num_classes + self.num_classes
        # Scratch buffers reused across local steps (shapes are constant
        # within a round); lazily sized on first use.
        self._logits: np.ndarray | None = None
        self._reduced: np.ndarray | None = None
        self._grad_weights: np.ndarray | None = None

    def loss_and_grad(
        self,
        params: np.ndarray,
        features: np.ndarray,
        labels: np.ndarray,
        mask: np.ndarray | None,
        counts: np.ndarray,
        *,
        with_loss: bool = True,
    ) -> tuple[np.ndarray | None, np.ndarray]:
        """``(losses (C,), grads (C, P))`` for one minibatch of every client.

        ``mask=None`` means every minibatch column is real (uniform batch
        sizes); ``with_loss=False`` skips the loss reduction (a per-step
        diagnostic the engine only reads at the final local step) and
        returns ``None`` losses.
        """
        num_clients = params.shape[0]
        split = self.num_features * self.num_classes
        weights = params[:, :split].reshape(
            num_clients, self.num_features, self.num_classes
        )
        bias = params[:, split:]

        batch_shape = (num_clients, features.shape[1], self.num_classes)
        if self._logits is None or self._logits.shape != batch_shape:
            self._logits = np.empty(batch_shape)
            self._reduced = np.empty((*batch_shape[:2], 1))
            self._grad_weights = np.empty(
                (num_clients, self.num_features, self.num_classes)
            )
        logits, reduced = self._logits, self._reduced

        # In-place softmax: same arithmetic as model.softmax, no temporaries.
        np.matmul(features, weights, out=logits)
        logits += bias[:, None, :]
        logits -= _colfold_max(logits, reduced)
        np.exp(logits, out=logits)
        logits /= np.sum(logits, axis=-1, keepdims=True, out=reduced)
        probabilities = logits

        client_rows = np.arange(num_clients)[:, None]
        sample_cols = np.arange(labels.shape[1])[None, :]
        losses = None
        if with_loss:
            picked = probabilities[client_rows, sample_cols, labels]
            clipped = np.clip(picked, 1e-12, 1.0)
            if mask is None:
                losses = -np.log(clipped).sum(axis=1) / counts
            else:
                losses = -(np.log(clipped) * mask).sum(axis=1) / counts
            if self.l2.any():
                losses = losses + 0.5 * self.l2 * (weights**2).sum(axis=(1, 2))

        # probabilities - one_hot(labels), reusing the probability buffer.
        delta = probabilities
        delta[client_rows, sample_cols, labels] -= 1.0
        delta /= counts[:, None, None]
        if mask is not None:
            delta *= mask[:, :, None]
        grad_weights = np.matmul(
            features.transpose(0, 2, 1), delta, out=self._grad_weights
        )
        if self.l2.any():
            grad_weights += self.l2[:, None, None] * weights
        grad_bias = delta.sum(axis=1)
        grads = np.concatenate(
            [grad_weights.reshape(num_clients, split), grad_bias], axis=1
        )
        return losses, grads


def stacked_softmax_kernel(models: Sequence[Model]) -> StackedSoftmaxKernel | None:
    """A stacked kernel for a homogeneous softmax-regression family, else None.

    Homogeneous means: every model is exactly :class:`SoftmaxRegression`
    (subclasses could override the loss) with identical dimensions; the L2
    coefficient may differ per client (it is carried as a vector).
    """
    models = list(models)
    if not models or any(type(model) is not SoftmaxRegression for model in models):
        return None
    first = models[0]
    if any(
        model.num_features != first.num_features
        or model.num_classes != first.num_classes
        for model in models
    ):
        return None
    return StackedSoftmaxKernel(
        first.num_features,
        first.num_classes,
        np.array([model.l2 for model in models], dtype=float),
    )
