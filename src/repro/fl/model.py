"""Abstract model interface used by the federated substrate.

Models expose their parameters as a single flat float64 vector, which makes
FedAvg-style aggregation, parameter transport, and optimizer implementations
trivial: everything operates on ``np.ndarray`` vectors and no component needs
to know a model's internal layer structure.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Model", "softmax", "one_hot", "cross_entropy"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis.

    Accepts the classic ``(n, C)`` logit matrix as well as stacked
    ``(clients, n, C)`` tensors from the vectorised local-training engine;
    for 2-D input the result is unchanged.
    """
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Convert integer labels (n,) to a one-hot matrix (n, num_classes)."""
    labels = np.asarray(labels, dtype=int)
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels out of range [0, {num_classes}): "
            f"min={labels.min()}, max={labels.max()}"
        )
    encoded = np.zeros((labels.shape[0], num_classes))
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def cross_entropy(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy of predicted probabilities against integer labels."""
    n = probabilities.shape[0]
    if n == 0:
        return 0.0
    clipped = np.clip(probabilities[np.arange(n), labels], 1e-12, 1.0)
    return float(-np.log(clipped).mean())


class Model(ABC):
    """A classifier with flat-vector parameter access.

    Subclasses implement the forward pass, the loss, and its gradient; the
    base class provides prediction and accuracy helpers on top.
    """

    #: Number of output classes.
    num_classes: int

    @property
    @abstractmethod
    def num_params(self) -> int:
        """Total number of scalar parameters."""

    @abstractmethod
    def get_params(self) -> np.ndarray:
        """Return a *copy* of the parameters as a flat float64 vector."""

    @abstractmethod
    def set_params(self, flat: np.ndarray) -> None:
        """Load parameters from a flat vector (copied, not aliased)."""

    @abstractmethod
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class probabilities, shape ``(n, num_classes)``."""

    @abstractmethod
    def loss_and_grad(
        self, features: np.ndarray, labels: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Mean loss and its gradient w.r.t. the flat parameter vector."""

    def loss(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean loss on a batch (default: via :meth:`loss_and_grad`)."""
        value, _ = self.loss_and_grad(features, labels)
        return value

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most-likely class per sample."""
        return np.argmax(self.predict_proba(features), axis=1)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Fraction of correct predictions."""
        if features.shape[0] == 0:
            return 0.0
        return float((self.predict(features) == np.asarray(labels)).mean())

    def _check_flat(self, flat: np.ndarray) -> np.ndarray:
        flat = np.asarray(flat, dtype=float)
        if flat.shape != (self.num_params,):
            raise ValueError(
                f"expected flat parameter vector of shape ({self.num_params},), "
                f"got {flat.shape}"
            )
        return flat
