"""Update compression: sparsification and stochastic quantization.

Communication dominates the client-side cost model, so a deployment
compresses uploads.  Two standard schemes are provided as pure functions on
flat update vectors, plus a small composable :class:`Compressor` wrapper
that tracks the achieved compression ratio:

* :func:`top_k_sparsify` — keep the k largest-magnitude coordinates
  (biased, high compression; the FL default),
* :func:`qsgd_quantize` — QSGD-style stochastic uniform quantization to
  ``2^bits`` levels per sign (unbiased: ``E[Q(x)] = x``).

Both return dense vectors (the simulator has no wire format); the
``nonzero_fraction`` / ``bits`` metadata is what the communication-cost
accounting consumes.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["top_k_sparsify", "qsgd_quantize", "Compressor"]


def top_k_sparsify(vector: np.ndarray, k: int) -> np.ndarray:
    """Zero all but the ``k`` largest-magnitude coordinates (copy)."""
    vector = np.asarray(vector, dtype=float)
    if k <= 0:
        raise ValueError(f"k must be > 0, got {k}")
    if k >= vector.size:
        return vector.copy()
    threshold_index = np.argpartition(np.abs(vector), vector.size - k)
    sparse = np.zeros_like(vector)
    keep = threshold_index[vector.size - k :]
    sparse[keep] = vector[keep]
    return sparse


def qsgd_quantize(
    vector: np.ndarray, bits: int, rng: np.random.Generator
) -> np.ndarray:
    """Unbiased stochastic uniform quantization (QSGD, Alistarh et al. 2017).

    Each coordinate is scaled by the vector norm, mapped to one of
    ``s = 2^bits`` levels with probabilistic rounding, and rescaled, so
    ``E[Q(x)] = x`` exactly.
    """
    vector = np.asarray(vector, dtype=float)
    if bits <= 0 or bits > 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    norm = np.linalg.norm(vector)
    if norm == 0:
        return vector.copy()
    levels = float(2**bits)
    scaled = np.abs(vector) / norm * levels
    floor = np.floor(scaled)
    probability = scaled - floor
    rounded = floor + (rng.random(vector.shape) < probability)
    return np.sign(vector) * rounded * norm / levels


class Compressor:
    """Composable update compressor with compression-ratio accounting.

    Parameters
    ----------
    top_k:
        If set, apply top-k sparsification with this many kept coordinates.
    bits:
        If set, apply QSGD quantization at this bit width (after
        sparsification when both are set).
    rng:
        Generator for stochastic rounding (required when ``bits`` is set).
    """

    def __init__(
        self,
        *,
        top_k: int | None = None,
        bits: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if top_k is None and bits is None:
            raise ValueError("configure at least one of top_k or bits")
        if top_k is not None:
            check_positive("top_k", top_k)
        if bits is not None and rng is None:
            raise ValueError("quantization needs an rng for stochastic rounding")
        self.top_k = top_k
        self.bits = bits
        self.rng = rng

    def compress(self, vector: np.ndarray) -> np.ndarray:
        """Apply the configured pipeline and return the compressed vector."""
        out = np.asarray(vector, dtype=float)
        if self.top_k is not None:
            out = top_k_sparsify(out, int(self.top_k))
        if self.bits is not None:
            assert self.rng is not None
            out = qsgd_quantize(out, int(self.bits), self.rng)
        return out

    def compression_ratio(self, size: int) -> float:
        """Approximate uplink ratio vs. dense float64 transmission.

        Sparsification sends (index, value) pairs for kept coordinates;
        quantization sends ``bits + 1`` bits per (kept) coordinate plus the
        norm.  This is the factor the communication-cost model divides by.
        """
        dense_bits = size * 64.0
        kept = min(self.top_k, size) if self.top_k is not None else size
        per_coord = (self.bits + 1.0) if self.bits is not None else 64.0
        index_bits = 32.0 if self.top_k is not None and kept < size else 0.0
        compressed = kept * (per_coord + index_bits) + 64.0
        return dense_bits / compressed

    def __repr__(self) -> str:
        return f"Compressor(top_k={self.top_k}, bits={self.bits})"
