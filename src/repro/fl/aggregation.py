"""Server-side aggregation rules.

All rules operate on a stack of client update vectors (``(m, p)`` array for
``m`` participants) plus per-client weights, and return the aggregated
``(p,)`` vector.  FedAvg is :func:`weighted_mean` with data-size weights;
:func:`trimmed_mean` and :func:`coordinate_median` are the standard robust
alternatives used in the robustness ablation.
"""

from __future__ import annotations

import numpy as np

from repro import kernels

__all__ = ["stack_updates", "weighted_mean", "trimmed_mean", "coordinate_median"]


def stack_updates(updates: "list[np.ndarray] | np.ndarray") -> np.ndarray:
    """Stack equally shaped 1-D update vectors into an ``(m, p)`` matrix.

    An already-stacked 2-D float array (the columnar
    :class:`~repro.fl.batch.UpdateBatch` path) passes through validated but
    uncopied, so batched callers pay nothing for the shared entry point.
    """
    if isinstance(updates, np.ndarray):
        if updates.ndim != 2:
            raise ValueError(
                f"stacked updates must be 2-D, got shape {updates.shape}"
            )
        if updates.shape[0] == 0:
            raise ValueError("cannot aggregate zero updates")
        return updates.astype(float, copy=False)
    if not updates:
        raise ValueError("cannot aggregate zero updates")
    stacked = np.stack([np.asarray(u, dtype=float) for u in updates])
    if stacked.ndim != 2:
        raise ValueError(f"updates must be 1-D vectors, got stacked {stacked.shape}")
    return stacked


def _normalise_weights(weights: np.ndarray, count: int) -> np.ndarray:
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (count,):
        raise ValueError(f"expected {count} weights, got shape {weights.shape}")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must not all be zero")
    return weights / total


def weighted_mean(stacked: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """FedAvg: convex combination with the given (normalised) weights.

    The reduction itself — one ``(m,) @ (m, p)`` tensordot — dispatches
    through the compute-backend seam (entry ``"fedavg_combine"``).
    """
    weights = _normalise_weights(weights, stacked.shape[0])
    return kernels.kernel("fedavg_combine")(weights, stacked)


def trimmed_mean(
    stacked: np.ndarray, weights: np.ndarray, *, trim_fraction: float = 0.1
) -> np.ndarray:
    """Coordinate-wise trimmed mean (weights ignored inside the trim).

    Per coordinate, the lowest and highest ``trim_fraction`` of values are
    removed and the rest averaged uniformly.  With fewer than 3 participants
    this degrades gracefully to the plain mean.
    """
    if not 0.0 <= trim_fraction < 0.5:
        raise ValueError(f"trim_fraction must be in [0, 0.5), got {trim_fraction}")
    _normalise_weights(weights, stacked.shape[0])  # validation only
    m = stacked.shape[0]
    k = int(np.floor(m * trim_fraction))
    if m - 2 * k < 1:
        k = 0
    if k == 0:
        return stacked.mean(axis=0)
    ordered = np.sort(stacked, axis=0)
    return ordered[k : m - k].mean(axis=0)


def coordinate_median(stacked: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Coordinate-wise median (weights validated but not used)."""
    _normalise_weights(weights, stacked.shape[0])
    return np.median(stacked, axis=0)
