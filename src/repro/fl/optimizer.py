"""First-order optimizers over flat parameter vectors.

Each optimizer is a small stateful object: :meth:`Optimizer.step` consumes
the current parameters and a gradient and returns updated parameters.  State
(momentum buffers, Adam moments) lives inside the optimizer, so each FL
client owns an independent optimizer instance and local training remains
self-contained.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.validation import check_in_range, check_positive

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer(ABC):
    """Base class: ``new_params = step(params, grad)``."""

    @abstractmethod
    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """Apply one update and return the new parameter vector."""

    @abstractmethod
    def reset(self) -> None:
        """Forget all accumulated state."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional heavy-ball momentum.

    Parameters
    ----------
    learning_rate:
        Step size.
    momentum:
        Heavy-ball coefficient in ``[0, 1)``; 0 is plain SGD.
    """

    def __init__(self, learning_rate: float = 0.1, momentum: float = 0.0) -> None:
        self.learning_rate = check_positive("learning_rate", learning_rate)
        self.momentum = check_in_range("momentum", momentum, 0.0, 1.0)
        if self.momentum >= 1.0:
            raise ValueError(f"momentum must be < 1, got {momentum}")
        self._velocity: np.ndarray | None = None

    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        if self.momentum == 0.0:
            return params - self.learning_rate * grad
        if self._velocity is None or self._velocity.shape != grad.shape:
            self._velocity = np.zeros_like(grad)
        self._velocity = self.momentum * self._velocity - self.learning_rate * grad
        return params + self._velocity

    def reset(self) -> None:
        self._velocity = None

    def __repr__(self) -> str:
        return f"SGD(learning_rate={self.learning_rate}, momentum={self.momentum})"


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias-corrected moment estimates."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        self.learning_rate = check_positive("learning_rate", learning_rate)
        self.beta1 = check_in_range("beta1", beta1, 0.0, 1.0, inclusive=False)
        self.beta2 = check_in_range("beta2", beta2, 0.0, 1.0, inclusive=False)
        self.epsilon = check_positive("epsilon", epsilon)
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._t = 0

    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        if self._m is None or self._m.shape != grad.shape:
            self._m = np.zeros_like(grad)
            self._v = np.zeros_like(grad)
            self._t = 0
        self._t += 1
        self._m = self.beta1 * self._m + (1.0 - self.beta1) * grad
        self._v = self.beta2 * self._v + (1.0 - self.beta2) * grad**2
        m_hat = self._m / (1.0 - self.beta1**self._t)
        v_hat = self._v / (1.0 - self.beta2**self._t)
        return params - self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def reset(self) -> None:
        self._m = None
        self._v = None
        self._t = 0

    def __repr__(self) -> str:
        return (
            f"Adam(learning_rate={self.learning_rate}, beta1={self.beta1}, "
            f"beta2={self.beta2})"
        )
