"""First-order optimizers over flat parameter vectors.

Each optimizer is a small stateful object: :meth:`Optimizer.step` consumes
the current parameters and a gradient and returns updated parameters.  State
(momentum buffers, Adam moments) lives inside the optimizer, so each FL
client owns an independent optimizer instance and local training remains
self-contained.

The *stacked* variants (:class:`StackedSGD`, :class:`StackedAdam`) run the
same update rule over a ``(C, P)`` matrix of per-client parameter rows with
per-client hyperparameter vectors — every arithmetic operation is the same
elementwise expression as the scalar rule, so row ``c`` of a stacked step is
bit-identical to the scalar optimizer stepping client ``c`` alone.  They
back the vectorised local-training engine (:mod:`repro.fl.batch`);
:func:`stack_optimizers` decides whether a group of per-client optimizer
instances can be driven as one stack.

The stacked update rules dispatch through the compute-backend seam
(:func:`repro.kernels.kernel`, entries ``"stacked_sgd_step"`` /
``"stacked_adam_step"``); state (velocity, Adam moments, the step counter)
stays in these classes and is passed into the kernel, so a backend swap
never changes what is remembered between steps.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from repro import kernels
from repro.utils.validation import check_in_range, check_positive

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "StackedSGD",
    "StackedAdam",
    "stack_optimizers",
]


class Optimizer(ABC):
    """Base class: ``new_params = step(params, grad)``."""

    @abstractmethod
    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """Apply one update and return the new parameter vector."""

    @abstractmethod
    def reset(self) -> None:
        """Forget all accumulated state."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional heavy-ball momentum.

    Parameters
    ----------
    learning_rate:
        Step size.
    momentum:
        Heavy-ball coefficient in ``[0, 1)``; 0 is plain SGD.
    """

    def __init__(self, learning_rate: float = 0.1, momentum: float = 0.0) -> None:
        self.learning_rate = check_positive("learning_rate", learning_rate)
        self.momentum = check_in_range("momentum", momentum, 0.0, 1.0)
        if self.momentum >= 1.0:
            raise ValueError(f"momentum must be < 1, got {momentum}")
        self._velocity: np.ndarray | None = None

    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        if self.momentum == 0.0:
            return params - self.learning_rate * grad
        if self._velocity is None or self._velocity.shape != grad.shape:
            self._velocity = np.zeros_like(grad)
        self._velocity = self.momentum * self._velocity - self.learning_rate * grad
        return params + self._velocity

    def reset(self) -> None:
        self._velocity = None

    def __repr__(self) -> str:
        return f"SGD(learning_rate={self.learning_rate}, momentum={self.momentum})"


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias-corrected moment estimates."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        self.learning_rate = check_positive("learning_rate", learning_rate)
        self.beta1 = check_in_range("beta1", beta1, 0.0, 1.0, inclusive=False)
        self.beta2 = check_in_range("beta2", beta2, 0.0, 1.0, inclusive=False)
        self.epsilon = check_positive("epsilon", epsilon)
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._t = 0

    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        if self._m is None or self._m.shape != grad.shape:
            self._m = np.zeros_like(grad)
            self._v = np.zeros_like(grad)
            self._t = 0
        self._t += 1
        self._m = self.beta1 * self._m + (1.0 - self.beta1) * grad
        self._v = self.beta2 * self._v + (1.0 - self.beta2) * grad**2
        m_hat = self._m / (1.0 - self.beta1**self._t)
        v_hat = self._v / (1.0 - self.beta2**self._t)
        return params - self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def reset(self) -> None:
        self._m = None
        self._v = None
        self._t = 0

    def __repr__(self) -> str:
        return (
            f"Adam(learning_rate={self.learning_rate}, beta1={self.beta1}, "
            f"beta2={self.beta2})"
        )


class StackedSGD:
    """SGD stepping a ``(C, P)`` stack of per-client parameter rows at once.

    ``learning_rates`` / ``momenta`` are per-client ``(C,)`` vectors; row
    ``c`` of :meth:`step` computes exactly the expression
    :meth:`SGD.step` would for client ``c`` (same multiplies, same
    subtraction — bit-identical, pinned in the test suite).
    """

    def __init__(self, learning_rates: np.ndarray, momenta: np.ndarray) -> None:
        self.learning_rates = np.asarray(learning_rates, dtype=float)
        self.momenta = np.asarray(momenta, dtype=float)
        if self.learning_rates.shape != self.momenta.shape:
            raise ValueError("learning_rates and momenta must have equal shapes")
        self._velocity: np.ndarray | None = None
        self._scratch: np.ndarray | None = None

    def step(self, params: np.ndarray, grads: np.ndarray) -> np.ndarray:
        """Update the stack in place (callers own ``params``) and return it."""
        if self._scratch is None or self._scratch.shape != grads.shape:
            self._scratch = np.empty_like(grads)
        velocity = None
        if self.momenta.any():
            if self._velocity is None or self._velocity.shape != grads.shape:
                self._velocity = np.zeros_like(grads)
            velocity = self._velocity
        return kernels.kernel("stacked_sgd_step")(
            params, grads, self.learning_rates, self.momenta, velocity,
            self._scratch,
        )

    def reset(self) -> None:
        self._velocity = None


class StackedAdam:
    """Adam stepping a ``(C, P)`` stack with per-client hyperparameters.

    All rows share the step counter ``t`` (every client steps once per
    call), so the bias corrections match the scalar optimizer's exactly.
    """

    def __init__(
        self,
        learning_rates: np.ndarray,
        beta1s: np.ndarray,
        beta2s: np.ndarray,
        epsilons: np.ndarray,
    ) -> None:
        self.learning_rates = np.asarray(learning_rates, dtype=float)
        self.beta1s = np.asarray(beta1s, dtype=float)
        self.beta2s = np.asarray(beta2s, dtype=float)
        self.epsilons = np.asarray(epsilons, dtype=float)
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._t = 0

    def step(self, params: np.ndarray, grads: np.ndarray) -> np.ndarray:
        """Update the stack in place (callers own ``params``) and return it."""
        if self._m is None or self._m.shape != grads.shape:
            self._m = np.zeros_like(grads)
            self._v = np.zeros_like(grads)
            self._t = 0
        self._t += 1
        # The bias corrections stay outside the kernel so every backend
        # consumes the exact same float64 correction values.
        bias1 = 1.0 - self.beta1s**self._t
        bias2 = 1.0 - self.beta2s**self._t
        return kernels.kernel("stacked_adam_step")(
            params, grads, self.learning_rates, self.beta1s, self.beta2s,
            self.epsilons, self._m, self._v, bias1, bias2,
        )

    def reset(self) -> None:
        self._m = None
        self._v = None
        self._t = 0


def stack_optimizers(optimizers: Sequence[Optimizer]):
    """Stack per-client optimizer instances, or ``None`` when not stackable.

    Only exact :class:`SGD` / :class:`Adam` instances (no subclasses, whose
    overridden ``step`` the stacked rule could not reproduce) stack, and the
    whole group must share one family; hyperparameters may differ per
    client.  Instances must be freshly created — stacking ignores any state
    already accumulated inside them.
    """
    optimizers = list(optimizers)
    if not optimizers:
        return None
    if all(type(opt) is SGD for opt in optimizers):
        return StackedSGD(
            np.array([opt.learning_rate for opt in optimizers]),
            np.array([opt.momentum for opt in optimizers]),
        )
    if all(type(opt) is Adam for opt in optimizers):
        return StackedAdam(
            np.array([opt.learning_rate for opt in optimizers]),
            np.array([opt.beta1 for opt in optimizers]),
            np.array([opt.beta2 for opt in optimizers]),
            np.array([opt.epsilon for opt in optimizers]),
        )
    return None
