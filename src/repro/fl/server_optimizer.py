"""Server-side optimizers (FedOpt family).

Plain FedAvg adds the aggregated client delta directly to the global model.
The FedOpt framework (Reddi et al., ICLR 2021) instead treats the
*negative* aggregated delta as a pseudo-gradient and applies a first-order
optimizer on the server:

* :class:`ServerSGD` with momentum 0 recovers FedAvg (at learning rate 1);
* :class:`ServerSGD` with momentum is FedAvgM;
* :class:`ServerAdam` is FedAdam — useful when client participation is
  bursty (as under auction-driven selection), because the per-coordinate
  scaling damps rounds dominated by a few large updates.

Plug one into :class:`repro.fl.server.FLServer` via ``server_optimizer``.
"""

from __future__ import annotations

import numpy as np

from repro.fl.optimizer import SGD, Adam

__all__ = ["ServerOptimizer", "ServerSGD", "ServerAdam"]


class ServerOptimizer:
    """Base: maps (current params, aggregated delta) -> new params."""

    def apply(self, params: np.ndarray, aggregated_delta: np.ndarray) -> np.ndarray:
        """Return updated global parameters."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget accumulated state."""


class ServerSGD(ServerOptimizer):
    """FedAvg / FedAvgM: SGD on the pseudo-gradient ``-delta``."""

    def __init__(self, learning_rate: float = 1.0, momentum: float = 0.0) -> None:
        self._inner = SGD(learning_rate=learning_rate, momentum=momentum)

    def apply(self, params: np.ndarray, aggregated_delta: np.ndarray) -> np.ndarray:
        return self._inner.step(params, -np.asarray(aggregated_delta, dtype=float))

    def reset(self) -> None:
        self._inner.reset()

    def __repr__(self) -> str:
        return f"ServerSGD({self._inner!r})"


class ServerAdam(ServerOptimizer):
    """FedAdam: Adam on the pseudo-gradient ``-delta``."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        beta1: float = 0.9,
        beta2: float = 0.99,
        epsilon: float = 1e-4,
    ) -> None:
        self._inner = Adam(
            learning_rate=learning_rate, beta1=beta1, beta2=beta2, epsilon=epsilon
        )

    def apply(self, params: np.ndarray, aggregated_delta: np.ndarray) -> np.ndarray:
        return self._inner.step(params, -np.asarray(aggregated_delta, dtype=float))

    def reset(self) -> None:
        self._inner.reset()

    def __repr__(self) -> str:
        return f"ServerAdam({self._inner!r})"
