"""Model evaluation beyond top-1 accuracy.

Under label-skewed non-IID training, aggregate accuracy hides the failure
mode that matters: entire classes collapsing because the clients holding
them were never selected.  These helpers expose it:

* :func:`confusion_matrix` — raw counts,
* :func:`per_class_accuracy` — recall per class,
* :func:`worst_class_accuracy` — the coverage metric the sustainability
  experiments track (a starved class shows up here long before it dents
  the mean),
* :func:`macro_accuracy` — class-balanced accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.fl.datasets import Dataset
from repro.fl.model import Model

__all__ = [
    "confusion_matrix",
    "per_class_accuracy",
    "worst_class_accuracy",
    "macro_accuracy",
    "evaluate_model",
]


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """Counts ``C[i, j]`` = samples of true class ``i`` predicted as ``j``."""
    predictions = np.asarray(predictions, dtype=int)
    labels = np.asarray(labels, dtype=int)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs labels {labels.shape}"
        )
    matrix = np.zeros((num_classes, num_classes), dtype=int)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def per_class_accuracy(matrix: np.ndarray) -> np.ndarray:
    """Recall per class; NaN for classes absent from the evaluation set."""
    matrix = np.asarray(matrix, dtype=float)
    totals = matrix.sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        recalls = np.diag(matrix) / totals
    return recalls


def worst_class_accuracy(matrix: np.ndarray) -> float:
    """Minimum per-class recall over classes present in the evaluation set."""
    recalls = per_class_accuracy(matrix)
    present = recalls[~np.isnan(recalls)]
    if present.size == 0:
        return float("nan")
    return float(present.min())


def macro_accuracy(matrix: np.ndarray) -> float:
    """Mean per-class recall over present classes (class-balanced accuracy)."""
    recalls = per_class_accuracy(matrix)
    present = recalls[~np.isnan(recalls)]
    if present.size == 0:
        return float("nan")
    return float(present.mean())


def evaluate_model(model: Model, dataset: Dataset) -> dict[str, float]:
    """One-call summary: accuracy, macro accuracy, worst class, loss."""
    predictions = model.predict(dataset.features)
    matrix = confusion_matrix(predictions, dataset.labels, dataset.num_classes)
    return {
        "accuracy": float((predictions == dataset.labels).mean()) if dataset.num_samples else 0.0,
        "macro_accuracy": macro_accuracy(matrix),
        "worst_class_accuracy": worst_class_accuracy(matrix),
        "loss": float(model.loss(dataset.features, dataset.labels)),
    }
