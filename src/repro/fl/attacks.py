"""Byzantine client behaviours for robustness experiments.

An incentive mechanism recruits *whoever bids well* — including compromised
devices.  These wrappers turn any FL client Byzantine so the robustness
ablation can measure how far robust aggregation (trimmed mean, coordinate
median) protects auction-driven training:

* :class:`LabelFlippingClient` — trains on permuted labels (a data-poisoning
  client whose updates point away from the truth),
* :class:`UpdateScalingClient` — multiplies its honest update by a factor
  (e.g. -5: a model-replacement style attack),
* :class:`GaussianNoiseClient` — submits pure noise of a chosen magnitude.

All wrappers preserve the :class:`~repro.fl.client.FLClient` interface, so
they drop into the trainer/simulator unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.fl.client import ClientUpdate, FLClient
from repro.utils.validation import check_finite, check_positive

__all__ = ["LabelFlippingClient", "UpdateScalingClient", "GaussianNoiseClient"]


class LabelFlippingClient(FLClient):
    """Trains honestly — on a fixed random permutation of the label space."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        permutation = self.rng.permutation(self.dataset.num_classes)
        # Ensure the permutation actually moves labels.
        while np.all(permutation == np.arange(self.dataset.num_classes)):
            permutation = self.rng.permutation(self.dataset.num_classes)
        flipped = self.dataset.subset(np.arange(self.dataset.num_samples))
        flipped.labels[:] = permutation[flipped.labels]
        self.dataset = flipped

    def __repr__(self) -> str:
        return f"LabelFlippingClient(id={self.client_id})"


class UpdateScalingClient(FLClient):
    """Computes an honest update, then scales it by ``scale``.

    ``scale = -5`` approximates a model-replacement attack; ``scale = 100``
    a blow-up attack.
    """

    def __init__(self, *args, scale: float = -5.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.scale = check_finite("scale", scale)

    def train(self, global_params: np.ndarray) -> ClientUpdate:
        update = super().train(global_params)
        return ClientUpdate(
            client_id=update.client_id,
            delta=update.delta * self.scale,
            num_samples=update.num_samples,
            final_loss=update.final_loss,
        )

    def __repr__(self) -> str:
        return f"UpdateScalingClient(id={self.client_id}, scale={self.scale})"


class GaussianNoiseClient(FLClient):
    """Ignores its data entirely and submits Gaussian noise."""

    def __init__(self, *args, noise_scale: float = 1.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.noise_scale = check_positive("noise_scale", noise_scale)

    def train(self, global_params: np.ndarray) -> ClientUpdate:
        global_params = np.asarray(global_params, dtype=float)
        delta = self.rng.normal(0.0, self.noise_scale, size=global_params.shape)
        return ClientUpdate(
            client_id=self.client_id,
            delta=delta,
            num_samples=self.num_samples,
            final_loss=float("nan"),
        )

    def __repr__(self) -> str:
        return f"GaussianNoiseClient(id={self.client_id}, noise_scale={self.noise_scale})"
