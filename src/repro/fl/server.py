"""Federated-learning server: global model, aggregation, evaluation.

The server owns the canonical model parameters.  After each round it folds
the participating clients' deltas into the global model using a pluggable
aggregation rule (FedAvg weighted mean by default) with weights proportional
to the participants' sample counts, renormalised over the participants —
the standard partial-participation FedAvg update.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.fl.aggregation import stack_updates, weighted_mean
from repro.fl.batch import UpdateBatch
from repro.fl.client import ClientUpdate
from repro.fl.datasets import Dataset
from repro.fl.model import Model

__all__ = ["FLServer"]

AggregationRule = Callable[[np.ndarray, np.ndarray], np.ndarray]


class FLServer:
    """Coordinates global-model updates and evaluation.

    Parameters
    ----------
    model:
        The global model instance (exclusively owned by the server).
    test_set:
        Held-out dataset for global evaluation.
    aggregation:
        Rule mapping (stacked deltas, weights) to the aggregated delta;
        defaults to FedAvg's weighted mean.
    server_learning_rate:
        Scale applied to the aggregated delta before adding it to the global
        parameters (1.0 = plain FedAvg).  Ignored when ``server_optimizer``
        is given.
    server_optimizer:
        Optional :class:`repro.fl.server_optimizer.ServerOptimizer` (FedOpt
        family) applied to the aggregated delta instead of the plain add.
    """

    def __init__(
        self,
        model: Model,
        test_set: Dataset,
        *,
        aggregation: AggregationRule = weighted_mean,
        server_learning_rate: float = 1.0,
        server_optimizer=None,
    ) -> None:
        if server_learning_rate <= 0:
            raise ValueError(
                f"server_learning_rate must be > 0, got {server_learning_rate}"
            )
        self.model = model
        self.test_set = test_set
        self.aggregation = aggregation
        self.server_learning_rate = float(server_learning_rate)
        self.server_optimizer = server_optimizer
        self._initial_params = model.get_params()

    def global_params(self) -> np.ndarray:
        """Copy of the current global parameters."""
        return self.model.get_params()

    def apply_updates(
        self, updates: "list[ClientUpdate] | UpdateBatch"
    ) -> np.ndarray:
        """Aggregate client deltas into the global model; returns new params.

        Accepts either scalar per-client updates or a columnar
        :class:`~repro.fl.batch.UpdateBatch`; the batch path aggregates the
        whole ``(m, p)`` delta matrix as one weighted tensordot without
        restacking.  Both paths produce identical aggregates for identical
        deltas (same matrix, same rule).

        With no updates (a round where nobody was selected) the model is
        unchanged — the global round is simply skipped, as in synchronous
        FedAvg with partial participation.
        """
        if not len(updates):
            return self.global_params()
        if isinstance(updates, UpdateBatch):
            stacked = stack_updates(updates.deltas)
            weights = updates.num_samples.astype(float)
        else:
            stacked = stack_updates([update.delta for update in updates])
            weights = np.array(
                [update.num_samples for update in updates], dtype=float
            )
        aggregated = self.aggregation(stacked, weights)
        if self.server_optimizer is not None:
            new_params = self.server_optimizer.apply(self.global_params(), aggregated)
        else:
            new_params = self.global_params() + self.server_learning_rate * aggregated
        self.model.set_params(new_params)
        return new_params

    def evaluate(self) -> tuple[float, float]:
        """(loss, accuracy) of the global model on the test set."""
        loss = self.model.loss(self.test_set.features, self.test_set.labels)
        accuracy = self.model.accuracy(self.test_set.features, self.test_set.labels)
        return float(loss), float(accuracy)

    def reset(self) -> None:
        """Restore the initial global parameters (and optimizer state)."""
        self.model.set_params(self._initial_params)
        if self.server_optimizer is not None:
            self.server_optimizer.reset()

    def __repr__(self) -> str:
        return (
            f"FLServer(model={self.model!r}, "
            f"test_samples={self.test_set.num_samples})"
        )
