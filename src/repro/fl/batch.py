"""Vectorised client-local training: stacked shards, pluggable solvers.

The scalar FedAvg local phase (:meth:`repro.fl.client.FLClient.train`) runs
one client at a time: 5 minibatch-SGD steps of small-matrix numpy work plus
per-step Python overhead, repeated for every selected client.  At production
client counts that loop *is* the federated-training wall clock.  This module
replaces it with a columnar engine:

* :class:`ClientBatch` stacks the selected clients' shards into one
  columnar store (concatenated samples + per-client offsets; minibatches
  padded to the widest client with sample masks — mirroring the auction
  side's :class:`~repro.core.bids.RoundBatch` design), and gathers every
  step's per-client minibatches through one fancy-index read.  Each
  client's minibatch plan still comes from its own private rng via
  :meth:`~repro.fl.client.FLClient.sample_round_indices`, so the random
  streams are consumed exactly as the scalar loop would.
* :class:`LocalSolver` is the pluggable protocol for running the local phase
  of many clients; :class:`SequentialLocalSolver` is the scalar reference
  (a loop of ``client.train``), :class:`VectorizedLocalSolver` runs every
  *stackable* group of clients simultaneously as one
  leading-client-axis matmul pipeline (kernels in :mod:`repro.fl.linear` /
  :mod:`repro.fl.mlp`, stacked optimizers in :mod:`repro.fl.optimizer`,
  FedProx proximal pulls applied as one elementwise row operation per
  step) and falls back to the scalar path per client for everything else
  (CNNs, heterogeneous architectures, Byzantine wrappers).
* :class:`UpdateBatch` carries the resulting deltas as one ``(m, p)``
  matrix, which :meth:`repro.fl.server.FLServer.apply_updates` aggregates
  as a single weighted tensordot without restacking.

Per-client results of the vectorised path match the scalar path to
floating-point associativity (identical rng draws, identical elementwise
optimizer arithmetic, batched matmuls in place of per-client matmuls);
the equivalence suite pins both model families at 1e-9.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.telemetry import traced
from repro.fl.client import ClientUpdate, FLClient
from repro.fl.cnn import stacked_convnet_kernel
from repro.fl.linear import stacked_softmax_kernel
from repro.fl.mlp import stacked_mlp_kernel
from repro.fl.optimizer import stack_optimizers

__all__ = [
    "ClientBatch",
    "UpdateBatch",
    "LocalSolver",
    "SequentialLocalSolver",
    "VectorizedLocalSolver",
]


@dataclass(frozen=True)
class UpdateBatch:
    """A round's client updates in columnar form.

    Attributes
    ----------
    client_ids:
        Producing clients, in training order.
    deltas:
        ``(m, p)`` matrix of parameter deltas (one row per client).
    num_samples:
        ``(m,)`` shard sizes — the FedAvg aggregation weights.
    final_losses:
        ``(m,)`` minibatch losses at each client's last local step.
    """

    client_ids: tuple[int, ...]
    deltas: np.ndarray
    num_samples: np.ndarray
    final_losses: np.ndarray

    def __post_init__(self) -> None:
        if self.deltas.ndim != 2:
            raise ValueError(f"deltas must be 2-D, got shape {self.deltas.shape}")
        m = len(self.client_ids)
        if self.deltas.shape[0] != m or self.num_samples.shape != (m,) or (
            self.final_losses.shape != (m,)
        ):
            raise ValueError("UpdateBatch fields disagree on the client count")

    def __len__(self) -> int:
        return len(self.client_ids)

    @classmethod
    def from_updates(
        cls, updates: Sequence[ClientUpdate], num_params: int
    ) -> "UpdateBatch":
        """Stack scalar :class:`ClientUpdate` objects into columnar form."""
        if not updates:
            return cls(
                client_ids=(),
                deltas=np.empty((0, num_params)),
                num_samples=np.empty(0, dtype=int),
                final_losses=np.empty(0),
            )
        return cls(
            client_ids=tuple(update.client_id for update in updates),
            deltas=np.stack([np.asarray(u.delta, dtype=float) for u in updates]),
            num_samples=np.array([u.num_samples for u in updates], dtype=int),
            final_losses=np.array([u.final_loss for u in updates], dtype=float),
        )

    def updates(self) -> list[ClientUpdate]:
        """Expand back into scalar per-client updates (rows are copies)."""
        return [
            ClientUpdate(
                client_id=int(self.client_ids[i]),
                delta=self.deltas[i].copy(),
                num_samples=int(self.num_samples[i]),
                final_loss=float(self.final_losses[i]),
            )
            for i in range(len(self))
        ]


class ClientBatch:
    """Selected clients' shards stacked into one columnar store with masks.

    Mirrors :class:`~repro.core.bids.RoundBatch`: a ragged collection
    (shards of different sizes, minibatch sizes capped at shard size)
    becomes fixed-shape minibatch arrays plus masks.  Shards are stored
    concatenated (``features`` is ``(sum of shard sizes, d)`` with per-client
    ``offsets``) rather than zero-padded to the largest shard — label-skewed
    partitions have heavy shard-size tails, and padding to the maximum
    would multiply the memory the per-step gathers stream through.  The
    *minibatch* axis is padded: every gathered step is ``(C, B_max, d)``
    and ``batch_mask`` flags the real columns of each client's minibatch.

    The stack assumes client datasets are immutable after construction —
    true for every library client (``Dataset`` is frozen;
    :class:`~repro.fl.attacks.LabelFlippingClient` rewrites labels in its
    constructor, before any stacking) — which is what lets
    :class:`VectorizedLocalSolver` cache stacks across rounds.
    """

    def __init__(
        self,
        clients: Sequence[FLClient],
        *,
        storage_dtype: np.dtype | str | None = None,
    ) -> None:
        if not clients:
            raise ValueError("ClientBatch needs at least one client")
        self.clients = tuple(clients)
        self.local_steps = self.clients[0].local_steps
        if any(c.local_steps != self.local_steps for c in self.clients):
            raise ValueError("ClientBatch requires uniform local_steps")
        self.shard_sizes = np.array([c.num_samples for c in self.clients], dtype=int)
        self.batch_sizes = np.array([c.batch_size for c in self.clients], dtype=int)
        self.offsets = np.zeros(len(self.clients), dtype=np.int64)
        np.cumsum(self.shard_sizes[:-1], out=self.offsets[1:])
        self.features = np.concatenate(
            [c.dataset.features for c in self.clients], axis=0
        )
        # Bandwidth-lean storage: an opt-in narrower dtype (float32) for
        # the stacked shard store and hence every per-step minibatch
        # gather.  Compute stays float64 — numpy promotes mixed-dtype
        # matmuls against the float64 parameter stack — so only the input
        # quantisation (~1e-7 relative) separates results from the scalar
        # path (tolerance-pinned in the backend equivalence suite).
        self.storage_dtype = None if storage_dtype is None else np.dtype(storage_dtype)
        if (
            self.storage_dtype is not None
            and self.features.dtype != self.storage_dtype
        ):
            self.features = self.features.astype(self.storage_dtype)
        self.labels = np.concatenate([c.dataset.labels for c in self.clients])
        max_batch = int(self.batch_sizes.max())
        self.uniform_batch = bool((self.batch_sizes == max_batch).all())
        self.batch_mask = (
            np.arange(max_batch)[None, :] < self.batch_sizes[:, None]
        ).astype(float)

    def __len__(self) -> int:
        return len(self.clients)

    def round_minibatches(self) -> tuple[np.ndarray, np.ndarray]:
        """Draw one whole round's minibatches for every client.

        Consumes each client's private rng through
        :meth:`~repro.fl.client.FLClient.sample_round_indices` — the same
        draw, in the same order, the scalar loop would make — then gathers
        all ``(clients, steps, batch)`` minibatches with one flat
        fancy-index read; per-step slices of the result are views.  Padding
        columns (for clients with a smaller minibatch) gather the client's
        shard row 0 and are excluded from loss/grad by ``batch_mask``.
        """
        num_clients = len(self.clients)
        max_batch = self.batch_mask.shape[1]
        plan = np.zeros((num_clients, self.local_steps, max_batch), dtype=np.int64)
        for row, client in enumerate(self.clients):
            plan[row, :, : client.batch_size] = client.sample_round_indices()
        plan += self.offsets[:, None, None]
        flat = plan.reshape(-1)
        shape = (num_clients, self.local_steps, max_batch)
        features = self.features[flat]
        labels = self.labels[flat]
        return features.reshape(*shape, -1), labels.reshape(shape)


class LocalSolver:
    """Protocol for running the local-SGD phase of many clients.

    ``train`` receives the selected clients (in aggregation order) and the
    flat global parameter vector, and returns an :class:`UpdateBatch` whose
    rows follow the input order.  Implementations must consume each
    client's random stream exactly as :meth:`FLClient.train` would, so
    solvers are interchangeable without perturbing reproducibility.
    """

    def train(
        self, clients: Sequence[FLClient], global_params: np.ndarray
    ) -> UpdateBatch:
        raise NotImplementedError


class SequentialLocalSolver(LocalSolver):
    """The scalar reference: one ``client.train`` call per client."""

    @traced("fl_local_train")
    def train(
        self, clients: Sequence[FLClient], global_params: np.ndarray
    ) -> UpdateBatch:
        global_params = np.asarray(global_params, dtype=float)
        return UpdateBatch.from_updates(
            [client.train(global_params) for client in clients],
            num_params=global_params.size,
        )


def _stack_signature(client: FLClient) -> tuple | None:
    """Grouping key for clients whose local phases can run as one stack.

    ``None`` marks a client the vectorised engine must not stack (overridden
    ``train``, or a model family without a stacked kernel).  Clients sharing
    a signature have the same architecture and local step count; shard
    sizes, minibatch sizes, L2 and optimizer hyperparameters may differ.
    """
    if not client.supports_stacking:
        return None
    model = client.model
    kind = type(model).__name__
    if kind == "SoftmaxRegression":
        arch: tuple = (model.num_features, model.num_classes)
    elif kind == "MLPClassifier":
        arch = (tuple(model.layer_sizes), model.activation)
    elif kind == "TinyConvNet":
        arch = (
            model.image_shape, model.num_classes, model.num_filters,
            model.kernel,
        )
    else:
        return None
    return (type(model), arch, client.local_steps)


class VectorizedLocalSolver(LocalSolver):
    """Stacked local training for homogeneous client groups.

    Clients are grouped by architecture signature; each group of at least
    ``min_group`` clients whose models have a stacked kernel and whose
    optimizers stack (:func:`~repro.fl.optimizer.stack_optimizers`) trains
    as one leading-client-axis pipeline — every local step is one batched
    matmul forward/backward plus one stacked optimizer step for the whole
    group (clients with a FedProx ``proximal_mu`` get their pull applied
    per row, so proximal and plain clients stack together).  Softmax, MLP
    and TinyConvNet families all have stacked kernels; everything else
    (heterogeneous architectures, Byzantine wrappers, exotic optimizers)
    runs through the scalar path, client by client, unchanged.  Update
    rows are reassembled in input order, so callers cannot observe the
    partition.

    ``storage_dtype`` opts the stacked shard stores into a narrower dtype
    (float32 halves what every per-step gather streams); compute stays
    float64 (see :class:`ClientBatch`).  ``chunk_clients`` caps how many
    clients one stacked pipeline holds in flight: groups larger than the
    cap train in consecutive chunks (same client order, so the random
    streams are consumed identically) whose delta rows are concatenated —
    bounding the transient minibatch/activation tensors at large
    federation sizes without giving up stacking.  Chunking is on by
    default (128 — full-width 1000-client CNN stacks measurably spill
    cache, and 128 keeps per-chunk working sets inside it across
    federation sizes); pass ``None`` to stack whole groups.  Both knobs
    preserve result order and per-client semantics.

    Shard stacks (and their resolved kernels) are cached per client-id
    group (``cache_size`` FIFO entries) — winner sets repeat heavily under
    both FedAvg sampling and mechanism-driven selection, and datasets are
    immutable after construction (see :class:`ClientBatch`).

    One observable difference from the scalar path: client *model* objects
    are not written back by default (the scalar loop leaves each model
    holding its final local parameters purely as an implementation
    artifact; nothing in the library reads them between rounds, and
    :meth:`FLClient.evaluate` loads parameters itself).  Pass
    ``sync_models=True`` for exact scalar-path fidelity at the cost of one
    ``set_params`` per client per round.
    """

    def __init__(
        self,
        *,
        min_group: int = 2,
        cache_size: int = 8,
        sync_models: bool = False,
        storage_dtype: np.dtype | str | None = None,
        chunk_clients: int | None = 128,
    ) -> None:
        if min_group < 1:
            raise ValueError(f"min_group must be >= 1, got {min_group}")
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        if chunk_clients is not None and chunk_clients < 1:
            raise ValueError(f"chunk_clients must be >= 1, got {chunk_clients}")
        self.min_group = int(min_group)
        self.cache_size = int(cache_size)
        self.sync_models = bool(sync_models)
        self.storage_dtype = storage_dtype
        self.chunk_clients = None if chunk_clients is None else int(chunk_clients)
        self._stacks: dict[tuple[int, ...], tuple[ClientBatch, object]] = {}

    @staticmethod
    def _resolve_kernel(clients: Sequence[FLClient]):
        """The stacked kernel for a homogeneous group's models, or ``None``."""
        models = [c.model for c in clients]
        kernel = stacked_softmax_kernel(models)
        if kernel is None:
            kernel = stacked_mlp_kernel(models)
        if kernel is None:
            kernel = stacked_convnet_kernel(models)
        return kernel

    def _stack_for(self, clients: tuple[FLClient, ...]):
        """``(ClientBatch, kernel)`` for a homogeneous group, cached.

        Keys are ``id()`` tuples, which is safe only because every cached
        entry's ClientBatch holds the client references (keeping the ids
        alive); kernel-less resolutions are therefore never cached — they
        are cheap, and a ref-less cache entry could outlive its clients and
        capture a recycled id.
        """
        key = tuple(id(client) for client in clients)
        cached = self._stacks.get(key)
        if cached is not None:
            return cached
        kernel = self._resolve_kernel(clients)
        if kernel is None:
            return None, None
        entry = (ClientBatch(clients, storage_dtype=self.storage_dtype), kernel)
        if self.cache_size:
            if len(self._stacks) >= self.cache_size:
                self._stacks.pop(next(iter(self._stacks)))
            self._stacks[key] = entry
        return entry

    @traced("fl_stacked_group")
    def _train_group(
        self, clients: tuple[FLClient, ...], global_params: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Run one homogeneous group stacked; ``None`` defers to scalar.

        Returns ``(deltas (C, P), final_losses (C,))`` with compressors
        already applied per row.  Groups above ``chunk_clients`` train in
        consecutive chunks; stackability is probed for the whole group
        first, so a chunk can never fall back to scalar after an earlier
        chunk already consumed its clients' random streams.
        """
        chunk = self.chunk_clients
        if chunk is not None and len(clients) > chunk:
            kernel = self._resolve_kernel(clients)
            if kernel is None or kernel.num_params != global_params.size:
                return None
            if stack_optimizers([c.optimizer_factory() for c in clients]) is None:
                return None
            deltas_parts, losses_parts = [], []
            for start in range(0, len(clients), chunk):
                part = self._train_chunk(
                    clients[start : start + chunk], global_params
                )
                if part is None:  # pragma: no cover - excluded by the probe
                    return None
                deltas_parts.append(part[0])
                losses_parts.append(part[1])
            return (
                np.concatenate(deltas_parts, axis=0),
                np.concatenate(losses_parts),
            )
        return self._train_chunk(clients, global_params)

    def _train_chunk(
        self, clients: tuple[FLClient, ...], global_params: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray] | None:
        batch, kernel = self._stack_for(clients)
        if kernel is None or kernel.num_params != global_params.size:
            return None
        optimizer = stack_optimizers([c.optimizer_factory() for c in clients])
        if optimizer is None:
            return None
        params = np.repeat(global_params[None, :], len(clients), axis=0)
        counts = batch.batch_sizes.astype(float)
        mask = None if batch.uniform_batch else batch.batch_mask
        proximal_mu = np.array(
            [getattr(c, "proximal_mu", 0.0) for c in clients], dtype=float
        )
        proximal = bool(proximal_mu.any())
        all_features, all_labels = batch.round_minibatches()
        losses = np.zeros(len(clients))
        for step in range(batch.local_steps):
            last = step == batch.local_steps - 1
            step_losses, grads = kernel.loss_and_grad(
                params,
                all_features[:, step],
                all_labels[:, step],
                mask,
                counts,
                # The loss is a diagnostic only needed from the final step
                # (the scalar path's final_loss).
                with_loss=last,
            )
            if proximal:
                # FedProx pull, row per client: the same elementwise
                # arithmetic FLClient.train applies (mu may differ per
                # client).  Per-row dot products keep the drift-norm loss
                # term bit-identical to the scalar path's `drift @ drift`.
                drift = params - global_params[None, :]
                if last:
                    step_losses = step_losses + 0.5 * proximal_mu * np.array(
                        [float(row @ row) for row in drift]
                    )
                grads += proximal_mu[:, None] * drift
            if last:
                losses = step_losses
            params = optimizer.step(params, grads)

        if self.sync_models:
            # Scalar-path fidelity: the client's model holds its final
            # local parameters after training (set_params copies).
            for row, client in enumerate(clients):
                client.model.set_params(params[row])
        deltas = params
        deltas -= global_params[None, :]
        for row, client in enumerate(clients):
            if client.compressor is not None:
                deltas[row] = client.compressor.compress(deltas[row])
        return deltas, losses

    @traced("fl_local_train")
    def train(
        self, clients: Sequence[FLClient], global_params: np.ndarray
    ) -> UpdateBatch:
        global_params = np.asarray(global_params, dtype=float)
        clients = list(clients)
        groups: dict[tuple, list[int]] = {}
        for position, client in enumerate(clients):
            signature = _stack_signature(client)
            if signature is not None:
                groups.setdefault(signature, []).append(position)

        if len(groups) == 1 and len(clients) >= self.min_group:
            positions = next(iter(groups.values()))
            if len(positions) == len(clients):
                # Common case — one homogeneous stack covering everyone:
                # the delta matrix becomes the UpdateBatch without per-row
                # repacking.
                result = self._train_group(tuple(clients), global_params)
                if result is not None:
                    deltas, losses = result
                    return UpdateBatch(
                        client_ids=tuple(c.client_id for c in clients),
                        deltas=deltas,
                        num_samples=np.array(
                            [c.num_samples for c in clients], dtype=int
                        ),
                        final_losses=losses,
                    )

        updates: list[ClientUpdate | None] = [None] * len(clients)
        for positions in groups.values():
            if len(positions) < self.min_group:
                continue
            group = tuple(clients[p] for p in positions)
            result = self._train_group(group, global_params)
            if result is None:
                continue
            deltas, losses = result
            for row, position in enumerate(positions):
                updates[position] = ClientUpdate(
                    client_id=group[row].client_id,
                    delta=deltas[row],
                    num_samples=group[row].num_samples,
                    final_loss=float(losses[row]),
                )
        for position, client in enumerate(clients):
            if updates[position] is None:
                updates[position] = client.train(global_params)
        return UpdateBatch.from_updates(updates, num_params=global_params.size)
