"""Multilayer perceptron with manual backpropagation on numpy.

Used in experiments that need a non-convex model (where biased client
selection hurts measurably more than in the convex case).  Supports an
arbitrary stack of hidden layers with ReLU or tanh activations and a softmax
output trained with cross-entropy.

:func:`stacked_mlp_kernel` provides the leading-client-axis variant of
:meth:`MLPClassifier.loss_and_grad` used by the vectorised local-training
engine (:mod:`repro.fl.batch`): forward and backward passes run as batched
matmuls over every client's minibatch simultaneously.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.fl.model import Model, cross_entropy, one_hot, softmax
from repro.utils.validation import check_non_negative

__all__ = ["MLPClassifier", "stacked_mlp_kernel", "StackedMLPKernel"]

_ACTIVATIONS = {
    "relu": (lambda z: np.maximum(z, 0.0), lambda z: (z > 0).astype(float)),
    "tanh": (np.tanh, lambda z: 1.0 - np.tanh(z) ** 2),
}


class MLPClassifier(Model):
    """Fully connected classifier ``softmax(W_L ... act(W_1 x + b_1) ... + b_L)``.

    Parameters
    ----------
    layer_sizes:
        ``[num_features, hidden_1, ..., hidden_k, num_classes]``; at least
        one hidden layer.
    activation:
        ``"relu"`` (default) or ``"tanh"``.
    l2:
        L2 penalty on all weight matrices (not biases).
    seed:
        Seed for He-style initialisation.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        *,
        activation: str = "relu",
        l2: float = 0.0,
        seed: int = 0,
    ) -> None:
        if len(layer_sizes) < 3:
            raise ValueError(
                f"layer_sizes needs input, >=1 hidden, output; got {list(layer_sizes)}"
            )
        if any(size <= 0 for size in layer_sizes):
            raise ValueError(f"all layer sizes must be > 0, got {list(layer_sizes)}")
        if activation not in _ACTIVATIONS:
            raise ValueError(
                f"unknown activation {activation!r}; choose from {sorted(_ACTIVATIONS)}"
            )
        self.layer_sizes = [int(size) for size in layer_sizes]
        self.num_classes = self.layer_sizes[-1]
        self.activation = activation
        self.l2 = check_non_negative("l2", l2)

        rng = np.random.default_rng(seed)
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(self.layer_sizes[:-1], self.layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    @property
    def num_params(self) -> int:
        return sum(w.size + b.size for w, b in zip(self.weights, self.biases))

    def get_params(self) -> np.ndarray:
        parts = []
        for weight, bias in zip(self.weights, self.biases):
            parts.append(weight.ravel())
            parts.append(bias)
        return np.concatenate(parts).astype(float)

    def set_params(self, flat: np.ndarray) -> None:
        flat = self._check_flat(flat)
        offset = 0
        for index, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            self.weights[index] = (
                flat[offset : offset + weight.size].reshape(weight.shape).copy()
            )
            offset += weight.size
            self.biases[index] = flat[offset : offset + bias.size].copy()
            offset += bias.size

    def _forward(self, features: np.ndarray) -> tuple[np.ndarray, list, list]:
        """Forward pass keeping pre-activations and activations for backprop."""
        act_fn, _ = _ACTIVATIONS[self.activation]
        activations = [features]
        pre_activations = []
        hidden = features
        for weight, bias in zip(self.weights[:-1], self.biases[:-1]):
            z = hidden @ weight + bias
            pre_activations.append(z)
            hidden = act_fn(z)
            activations.append(hidden)
        logits = hidden @ self.weights[-1] + self.biases[-1]
        return logits, pre_activations, activations

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        logits, _, _ = self._forward(features)
        return softmax(logits)

    def loss_and_grad(
        self, features: np.ndarray, labels: np.ndarray
    ) -> tuple[float, np.ndarray]:
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=int)
        n = features.shape[0]
        if n == 0:
            return 0.0, np.zeros(self.num_params)
        _, act_grad_fn = _ACTIVATIONS[self.activation]

        logits, pre_activations, activations = self._forward(features)
        probabilities = softmax(logits)
        loss = cross_entropy(probabilities, labels)
        loss += 0.5 * self.l2 * sum(float((w**2).sum()) for w in self.weights)

        grads_w = [np.zeros_like(w) for w in self.weights]
        grads_b = [np.zeros_like(b) for b in self.biases]
        delta = (probabilities - one_hot(labels, self.num_classes)) / n
        grads_w[-1] = activations[-1].T @ delta + self.l2 * self.weights[-1]
        grads_b[-1] = delta.sum(axis=0)
        for layer in range(len(self.weights) - 2, -1, -1):
            delta = (delta @ self.weights[layer + 1].T) * act_grad_fn(
                pre_activations[layer]
            )
            grads_w[layer] = activations[layer].T @ delta + self.l2 * self.weights[layer]
            grads_b[layer] = delta.sum(axis=0)

        parts = []
        for grad_w, grad_b in zip(grads_w, grads_b):
            parts.append(grad_w.ravel())
            parts.append(grad_b)
        return loss, np.concatenate(parts)

    def __repr__(self) -> str:
        return (
            f"MLPClassifier(layer_sizes={self.layer_sizes}, "
            f"activation={self.activation!r}, l2={self.l2})"
        )


class StackedMLPKernel:
    """Per-client loss/grad for a homogeneous :class:`MLPClassifier` stack.

    Same contract as
    :class:`~repro.fl.linear.StackedSoftmaxKernel`: ``params`` is ``(C, P)``,
    minibatches carry a leading client axis, ``mask`` flags real rows, and
    per-client results agree with :meth:`MLPClassifier.loss_and_grad` to
    floating-point associativity (pinned at 1e-9 in the test suite).
    """

    def __init__(
        self, layer_sizes: Sequence[int], activation: str, l2: np.ndarray
    ) -> None:
        self.layer_sizes = [int(size) for size in layer_sizes]
        self.num_classes = self.layer_sizes[-1]
        self.activation = activation
        self.l2 = np.asarray(l2, dtype=float)
        self._shapes = list(zip(self.layer_sizes[:-1], self.layer_sizes[1:]))
        self.num_params = sum(
            fan_in * fan_out + fan_out for fan_in, fan_out in self._shapes
        )

    def _unflatten(
        self, params: np.ndarray
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        num_clients = params.shape[0]
        weights, biases = [], []
        offset = 0
        for fan_in, fan_out in self._shapes:
            size = fan_in * fan_out
            weights.append(
                params[:, offset : offset + size].reshape(num_clients, fan_in, fan_out)
            )
            offset += size
            biases.append(params[:, offset : offset + fan_out])
            offset += fan_out
        return weights, biases

    def loss_and_grad(
        self,
        params: np.ndarray,
        features: np.ndarray,
        labels: np.ndarray,
        mask: np.ndarray | None,
        counts: np.ndarray,
        *,
        with_loss: bool = True,
    ) -> tuple[np.ndarray | None, np.ndarray]:
        """``(losses (C,), grads (C, P))`` for one minibatch of every client.

        Same contract as
        :meth:`~repro.fl.linear.StackedSoftmaxKernel.loss_and_grad`:
        ``mask=None`` means uniform batch sizes, ``with_loss=False`` skips
        the diagnostic loss reduction.
        """
        num_clients = params.shape[0]
        act_fn, act_grad_fn = _ACTIVATIONS[self.activation]
        weights, biases = self._unflatten(params)

        activations = [features]
        pre_activations = []
        hidden = features
        for weight, bias in zip(weights[:-1], biases[:-1]):
            z = hidden @ weight + bias[:, None, :]
            pre_activations.append(z)
            hidden = act_fn(z)
            activations.append(hidden)
        # In-place softmax: same arithmetic as model.softmax, no temporaries.
        logits = hidden @ weights[-1]
        logits += biases[-1][:, None, :]
        logits -= logits.max(axis=-1, keepdims=True)
        np.exp(logits, out=logits)
        logits /= logits.sum(axis=-1, keepdims=True)
        probabilities = logits

        client_rows = np.arange(num_clients)[:, None]
        sample_cols = np.arange(labels.shape[1])[None, :]
        losses = None
        if with_loss:
            picked = probabilities[client_rows, sample_cols, labels]
            clipped = np.clip(picked, 1e-12, 1.0)
            if mask is None:
                losses = -np.log(clipped).sum(axis=1) / counts
            else:
                losses = -(np.log(clipped) * mask).sum(axis=1) / counts
            if self.l2.any():
                losses = losses + 0.5 * self.l2 * sum(
                    (weight**2).sum(axis=(1, 2)) for weight in weights
                )

        # probabilities - one_hot(labels), reusing the probability buffer.
        delta = probabilities
        delta[client_rows, sample_cols, labels] -= 1.0
        delta /= counts[:, None, None]
        if mask is not None:
            delta *= mask[:, :, None]

        has_l2 = bool(self.l2.any())
        grads_w = [None] * len(weights)
        grads_b = [None] * len(biases)
        grads_w[-1] = activations[-1].transpose(0, 2, 1) @ delta
        if has_l2:
            grads_w[-1] += self.l2[:, None, None] * weights[-1]
        grads_b[-1] = delta.sum(axis=1)
        for layer in range(len(weights) - 2, -1, -1):
            delta = (delta @ weights[layer + 1].transpose(0, 2, 1)) * act_grad_fn(
                pre_activations[layer]
            )
            grads_w[layer] = activations[layer].transpose(0, 2, 1) @ delta
            if has_l2:
                grads_w[layer] += self.l2[:, None, None] * weights[layer]
            grads_b[layer] = delta.sum(axis=1)

        parts = []
        for grad_w, grad_b in zip(grads_w, grads_b):
            parts.append(grad_w.reshape(num_clients, -1))
            parts.append(grad_b)
        return losses, np.concatenate(parts, axis=1)


def stacked_mlp_kernel(models: Sequence[Model]) -> StackedMLPKernel | None:
    """A stacked kernel for a homogeneous MLP family, else ``None``.

    Homogeneous means: every model is exactly :class:`MLPClassifier` with
    identical layer sizes and activation; the L2 coefficient may differ per
    client (it is carried as a vector).
    """
    models = list(models)
    if not models or any(type(model) is not MLPClassifier for model in models):
        return None
    first = models[0]
    if any(
        model.layer_sizes != first.layer_sizes
        or model.activation != first.activation
        for model in models
    ):
        return None
    return StackedMLPKernel(
        first.layer_sizes,
        first.activation,
        np.array([model.l2 for model in models], dtype=float),
    )
