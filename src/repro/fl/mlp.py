"""Multilayer perceptron with manual backpropagation on numpy.

Used in experiments that need a non-convex model (where biased client
selection hurts measurably more than in the convex case).  Supports an
arbitrary stack of hidden layers with ReLU or tanh activations and a softmax
output trained with cross-entropy.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.fl.model import Model, cross_entropy, one_hot, softmax
from repro.utils.validation import check_non_negative

__all__ = ["MLPClassifier"]

_ACTIVATIONS = {
    "relu": (lambda z: np.maximum(z, 0.0), lambda z: (z > 0).astype(float)),
    "tanh": (np.tanh, lambda z: 1.0 - np.tanh(z) ** 2),
}


class MLPClassifier(Model):
    """Fully connected classifier ``softmax(W_L ... act(W_1 x + b_1) ... + b_L)``.

    Parameters
    ----------
    layer_sizes:
        ``[num_features, hidden_1, ..., hidden_k, num_classes]``; at least
        one hidden layer.
    activation:
        ``"relu"`` (default) or ``"tanh"``.
    l2:
        L2 penalty on all weight matrices (not biases).
    seed:
        Seed for He-style initialisation.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        *,
        activation: str = "relu",
        l2: float = 0.0,
        seed: int = 0,
    ) -> None:
        if len(layer_sizes) < 3:
            raise ValueError(
                f"layer_sizes needs input, >=1 hidden, output; got {list(layer_sizes)}"
            )
        if any(size <= 0 for size in layer_sizes):
            raise ValueError(f"all layer sizes must be > 0, got {list(layer_sizes)}")
        if activation not in _ACTIVATIONS:
            raise ValueError(
                f"unknown activation {activation!r}; choose from {sorted(_ACTIVATIONS)}"
            )
        self.layer_sizes = [int(size) for size in layer_sizes]
        self.num_classes = self.layer_sizes[-1]
        self.activation = activation
        self.l2 = check_non_negative("l2", l2)

        rng = np.random.default_rng(seed)
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(self.layer_sizes[:-1], self.layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    @property
    def num_params(self) -> int:
        return sum(w.size + b.size for w, b in zip(self.weights, self.biases))

    def get_params(self) -> np.ndarray:
        parts = []
        for weight, bias in zip(self.weights, self.biases):
            parts.append(weight.ravel())
            parts.append(bias)
        return np.concatenate(parts).astype(float)

    def set_params(self, flat: np.ndarray) -> None:
        flat = self._check_flat(flat)
        offset = 0
        for index, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            self.weights[index] = (
                flat[offset : offset + weight.size].reshape(weight.shape).copy()
            )
            offset += weight.size
            self.biases[index] = flat[offset : offset + bias.size].copy()
            offset += bias.size

    def _forward(self, features: np.ndarray) -> tuple[np.ndarray, list, list]:
        """Forward pass keeping pre-activations and activations for backprop."""
        act_fn, _ = _ACTIVATIONS[self.activation]
        activations = [features]
        pre_activations = []
        hidden = features
        for weight, bias in zip(self.weights[:-1], self.biases[:-1]):
            z = hidden @ weight + bias
            pre_activations.append(z)
            hidden = act_fn(z)
            activations.append(hidden)
        logits = hidden @ self.weights[-1] + self.biases[-1]
        return logits, pre_activations, activations

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        logits, _, _ = self._forward(features)
        return softmax(logits)

    def loss_and_grad(
        self, features: np.ndarray, labels: np.ndarray
    ) -> tuple[float, np.ndarray]:
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=int)
        n = features.shape[0]
        if n == 0:
            return 0.0, np.zeros(self.num_params)
        _, act_grad_fn = _ACTIVATIONS[self.activation]

        logits, pre_activations, activations = self._forward(features)
        probabilities = softmax(logits)
        loss = cross_entropy(probabilities, labels)
        loss += 0.5 * self.l2 * sum(float((w**2).sum()) for w in self.weights)

        grads_w = [np.zeros_like(w) for w in self.weights]
        grads_b = [np.zeros_like(b) for b in self.biases]
        delta = (probabilities - one_hot(labels, self.num_classes)) / n
        grads_w[-1] = activations[-1].T @ delta + self.l2 * self.weights[-1]
        grads_b[-1] = delta.sum(axis=0)
        for layer in range(len(self.weights) - 2, -1, -1):
            delta = (delta @ self.weights[layer + 1].T) * act_grad_fn(
                pre_activations[layer]
            )
            grads_w[layer] = activations[layer].T @ delta + self.l2 * self.weights[layer]
            grads_b[layer] = delta.sum(axis=0)

        parts = []
        for grad_w, grad_b in zip(grads_w, grads_b):
            parts.append(grad_w.ravel())
            parts.append(grad_b)
        return loss, np.concatenate(parts)

    def __repr__(self) -> str:
        return (
            f"MLPClassifier(layer_sizes={self.layer_sizes}, "
            f"activation={self.activation!r}, l2={self.l2})"
        )
