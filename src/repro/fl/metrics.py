"""Training history: per-round records and series extraction.

:class:`TrainingHistory` is the single structure every experiment reads its
learning curves from.  It stores one :class:`RoundMetrics` per global round
and can extract aligned series (accuracy vs. round, cumulative payment vs.
round, ...) for the reporting layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RoundMetrics", "TrainingHistory"]


@dataclass(frozen=True)
class RoundMetrics:
    """Everything recorded about one global round.

    Attributes
    ----------
    round_index:
        Zero-based global round number.
    participants:
        Client ids that contributed updates this round.
    test_loss / test_accuracy:
        Global-model evaluation after the round (NaN when evaluation was
        skipped this round for speed).
    mean_local_loss:
        Mean of participants' final local losses (NaN when nobody trained).
    total_payment:
        Money spent on this round's participants (0 outside auction runs).
    extras:
        Mechanism diagnostics forwarded from the round outcome.
    """

    round_index: int
    participants: tuple[int, ...]
    test_loss: float = float("nan")
    test_accuracy: float = float("nan")
    mean_local_loss: float = float("nan")
    total_payment: float = 0.0
    extras: dict[str, float] = field(default_factory=dict)


class TrainingHistory:
    """Ordered collection of :class:`RoundMetrics` with series helpers."""

    def __init__(self) -> None:
        self._rounds: list[RoundMetrics] = []

    def record(self, metrics: RoundMetrics) -> None:
        """Append one round (rounds must arrive in order)."""
        if self._rounds and metrics.round_index <= self._rounds[-1].round_index:
            raise ValueError(
                f"round {metrics.round_index} recorded after "
                f"{self._rounds[-1].round_index}"
            )
        self._rounds.append(metrics)

    def __len__(self) -> int:
        return len(self._rounds)

    def __getitem__(self, index: int) -> RoundMetrics:
        return self._rounds[index]

    @property
    def rounds(self) -> tuple[RoundMetrics, ...]:
        """All recorded rounds, in order."""
        return tuple(self._rounds)

    def round_indices(self) -> list[int]:
        """The x-axis: recorded round numbers."""
        return [m.round_index for m in self._rounds]

    def series(self, attribute: str) -> list[float]:
        """Per-round series of one scalar attribute (or extras key)."""
        values = []
        for metrics in self._rounds:
            if hasattr(metrics, attribute):
                values.append(float(getattr(metrics, attribute)))
            elif attribute in metrics.extras:
                values.append(float(metrics.extras[attribute]))
            else:
                values.append(float("nan"))
        return values

    def evaluated_series(self, attribute: str) -> tuple[list[int], list[float]]:
        """Like :meth:`series` but dropping NaN entries (skipped evaluations)."""
        xs, ys = [], []
        for metrics, value in zip(self._rounds, self.series(attribute)):
            if not np.isnan(value):
                xs.append(metrics.round_index)
                ys.append(value)
        return xs, ys

    def cumulative_payment(self) -> list[float]:
        """Running total of payments after each round."""
        return np.cumsum(self.series("total_payment")).tolist()

    def participation_counts(self) -> dict[int, int]:
        """Number of rounds each client participated in."""
        counts: dict[int, int] = {}
        for metrics in self._rounds:
            for client_id in metrics.participants:
                counts[client_id] = counts.get(client_id, 0) + 1
        return counts

    def final_accuracy(self) -> float:
        """Last recorded (non-NaN) test accuracy, NaN if never evaluated."""
        _, values = self.evaluated_series("test_accuracy")
        return values[-1] if values else float("nan")

    def best_accuracy(self) -> float:
        """Best recorded test accuracy, NaN if never evaluated."""
        _, values = self.evaluated_series("test_accuracy")
        return max(values) if values else float("nan")

    def rounds_to_accuracy(self, target: float) -> int | None:
        """First round index reaching ``target`` accuracy, None if never."""
        xs, values = self.evaluated_series("test_accuracy")
        for x, value in zip(xs, values):
            if value >= target:
                return x
        return None
