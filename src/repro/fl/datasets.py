"""Synthetic dataset generators.

The evaluation runs offline on a laptop, so real MNIST/CIFAR downloads are
replaced by synthetic generators that preserve the properties the mechanism
experiments depend on (see DESIGN.md substitutions):

* many classes with controllable separability
  (:func:`make_gaussian_mixture`),
* an image-shaped task for the CNN (:func:`make_synthetic_images` builds
  per-class smooth "digit templates" plus shifts and noise), and
* a hard low-dimensional non-convex task (:func:`make_two_spirals`).

All generators take an explicit :class:`numpy.random.Generator` so every
experiment is reproducible from one seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Dataset",
    "make_gaussian_mixture",
    "make_rotated_client_images",
    "make_sensor_streams",
    "make_synthetic_images",
    "make_two_spirals",
    "train_test_split",
]


@dataclass(frozen=True)
class Dataset:
    """An in-memory supervised dataset.

    Attributes
    ----------
    features:
        ``(n, d)`` float array (images are stored flattened).
    labels:
        ``(n,)`` integer class labels in ``[0, num_classes)``.
    num_classes:
        Number of classes.
    image_shape:
        ``(height, width)`` when features are flattened grayscale images,
        else ``None``.
    """

    features: np.ndarray
    labels: np.ndarray
    num_classes: int
    image_shape: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if self.features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {self.features.shape}")
        if self.labels.shape != (self.features.shape[0],):
            raise ValueError(
                f"labels shape {self.labels.shape} does not match "
                f"{self.features.shape[0]} samples"
            )
        if self.num_classes <= 1:
            raise ValueError(f"num_classes must be > 1, got {self.num_classes}")
        if self.labels.size and (
            self.labels.min() < 0 or self.labels.max() >= self.num_classes
        ):
            raise ValueError("labels out of range")
        if self.image_shape is not None:
            height, width = self.image_shape
            if height * width != self.features.shape[1]:
                raise ValueError(
                    f"image_shape {self.image_shape} inconsistent with feature "
                    f"width {self.features.shape[1]}"
                )

    @property
    def num_samples(self) -> int:
        """Number of samples."""
        return self.features.shape[0]

    @property
    def num_features(self) -> int:
        """Feature dimensionality."""
        return self.features.shape[1]

    def subset(self, indices: np.ndarray) -> "Dataset":
        """Dataset restricted to ``indices`` (copy)."""
        indices = np.asarray(indices, dtype=int)
        return Dataset(
            features=self.features[indices].copy(),
            labels=self.labels[indices].copy(),
            num_classes=self.num_classes,
            image_shape=self.image_shape,
        )

    def label_histogram(self) -> np.ndarray:
        """Counts per class, shape ``(num_classes,)``."""
        return np.bincount(self.labels, minlength=self.num_classes)


def make_gaussian_mixture(
    num_samples: int,
    num_features: int,
    num_classes: int,
    *,
    separation: float = 3.0,
    rng: np.random.Generator,
) -> Dataset:
    """Balanced Gaussian blobs with class means on a random hypersphere.

    ``separation`` scales the radius of the mean sphere relative to the unit
    within-class standard deviation: larger = easier.
    """
    if num_samples < num_classes:
        raise ValueError("need at least one sample per class")
    means = rng.normal(size=(num_classes, num_features))
    means /= np.linalg.norm(means, axis=1, keepdims=True)
    means *= separation

    labels = np.arange(num_samples) % num_classes
    rng.shuffle(labels)
    features = means[labels] + rng.normal(size=(num_samples, num_features))
    return Dataset(features=features, labels=labels, num_classes=num_classes)


def _class_templates(
    num_classes: int, shape: tuple[int, int], rng: np.random.Generator
) -> np.ndarray:
    """Per-class template images: a few Gaussian blobs at class-specific spots.

    Blob templates are robust to the small per-sample pixel shifts the
    generator applies, keeping the task learnable by a linear model while a
    CNN still benefits from its shift tolerance.
    """
    height, width = shape
    ys, xs = np.mgrid[0:height, 0:width]
    templates = np.zeros((num_classes, height, width))
    for class_index in range(num_classes):
        image = np.zeros((height, width))
        num_blobs = int(rng.integers(2, 4))
        for _ in range(num_blobs):
            center_y = rng.uniform(1.0, height - 2.0)
            center_x = rng.uniform(1.0, width - 2.0)
            sigma = rng.uniform(0.9, 1.6)
            amplitude = rng.uniform(0.7, 1.0)
            image += amplitude * np.exp(
                -((ys - center_y) ** 2 + (xs - center_x) ** 2) / (2.0 * sigma**2)
            )
        peak = image.max()
        if peak > 0:
            image /= peak
        templates[class_index] = image
    return templates


def make_synthetic_images(
    num_samples: int,
    *,
    num_classes: int = 10,
    shape: tuple[int, int] = (8, 8),
    noise: float = 0.25,
    max_shift: int = 1,
    rng: np.random.Generator,
) -> Dataset:
    """MNIST-like synthetic grayscale images.

    Each class has a smooth random template; samples are the template rolled
    by a random per-sample shift of up to ``max_shift`` pixels in each axis
    plus Gaussian pixel noise.  The task is easy for a CNN, hard enough for
    a linear model, and exhibits the class structure non-IID partitioners
    need.
    """
    height, width = shape
    templates = _class_templates(num_classes, shape, rng)
    labels = np.arange(num_samples) % num_classes
    rng.shuffle(labels)

    images = np.empty((num_samples, height, width))
    shifts = rng.integers(-max_shift, max_shift + 1, size=(num_samples, 2))
    for index in range(num_samples):
        image = templates[labels[index]]
        image = np.roll(image, shifts[index, 0], axis=0)
        image = np.roll(image, shifts[index, 1], axis=1)
        images[index] = image
    images += rng.normal(0.0, noise, size=images.shape)
    return Dataset(
        features=images.reshape(num_samples, height * width),
        labels=labels,
        num_classes=num_classes,
        image_shape=(height, width),
    )


def make_two_spirals(
    num_samples: int,
    *,
    noise: float = 0.2,
    turns: float = 1.75,
    rng: np.random.Generator,
) -> Dataset:
    """The classic two intertwined spirals, a non-convex 2-class task."""
    per_class = num_samples // 2
    theta = np.sqrt(rng.uniform(size=per_class)) * turns * 2 * np.pi
    radius = theta / (turns * 2 * np.pi) * 4.0 + 0.2
    spiral_a = np.stack([radius * np.cos(theta), radius * np.sin(theta)], axis=1)
    spiral_b = -spiral_a
    features = np.concatenate([spiral_a, spiral_b])
    features += rng.normal(0.0, noise, size=features.shape)
    labels = np.concatenate(
        [np.zeros(per_class, dtype=int), np.ones(per_class, dtype=int)]
    )
    order = rng.permutation(features.shape[0])
    return Dataset(features=features[order], labels=labels[order], num_classes=2)


def make_rotated_client_images(
    num_clients: int,
    samples_per_client: int,
    *,
    num_classes: int = 10,
    shape: tuple[int, int] = (8, 8),
    noise: float = 0.25,
    rng: np.random.Generator,
) -> tuple[list[Dataset], Dataset]:
    """Feature-skew non-IID: every client sees the images rotated its own way.

    All clients share one set of class templates (so the *task* is common)
    but client ``k`` observes every image rotated by ``k mod 4`` quarter
    turns — the classic feature-distribution-skew benchmark, complementary
    to the label skew produced by :func:`repro.fl.partition.dirichlet_partition`.

    Returns the per-client training shards and a shared unrotated test set.
    """
    if num_clients <= 0 or samples_per_client <= 0:
        raise ValueError("num_clients and samples_per_client must be > 0")
    height, width = shape
    if height != width:
        raise ValueError(f"rotation needs square images, got {shape}")
    templates = _class_templates(num_classes, shape, rng)

    def sample_images(count: int, quarter_turns: int) -> Dataset:
        labels = np.arange(count) % num_classes
        rng.shuffle(labels)
        images = templates[labels].copy()
        images = np.rot90(images, k=quarter_turns, axes=(1, 2))
        images = images + rng.normal(0.0, noise, size=images.shape)
        return Dataset(
            features=images.reshape(count, height * width),
            labels=labels,
            num_classes=num_classes,
            image_shape=shape,
        )

    shards = [
        sample_images(samples_per_client, quarter_turns=client % 4)
        for client in range(num_clients)
    ]
    test = sample_images(max(num_classes * 20, 200), quarter_turns=0)
    return shards, test


def make_sensor_streams(
    num_clients: int,
    samples_per_client: int,
    *,
    num_features: int = 6,
    boundary_spread: float = 1.0,
    noise: float = 0.3,
    rng: np.random.Generator,
) -> tuple[list[Dataset], Dataset]:
    """Per-client sensor anomaly-detection streams (natural non-IID).

    Each client is a sensor deployed at a different site: it labels samples
    anomalous when ``w_site . x > 0`` where the site boundary ``w_site`` is
    the global boundary plus a site-specific perturbation of magnitude
    ``boundary_spread``.  Clients therefore agree on the broad task but
    disagree near the margin — concept-shift non-IID, the third axis next to
    label skew and feature skew.

    Returns per-client shards plus a test set labelled by the *global*
    boundary (the quantity the federation is trying to learn).
    """
    if num_clients <= 0 or samples_per_client <= 0:
        raise ValueError("num_clients and samples_per_client must be > 0")
    global_boundary = rng.normal(size=num_features)
    global_boundary /= np.linalg.norm(global_boundary)

    def labelled_with(boundary: np.ndarray, count: int) -> Dataset:
        features = rng.normal(size=(count, num_features))
        margin = features @ boundary + rng.normal(0.0, noise, size=count)
        labels = (margin > 0).astype(int)
        return Dataset(features=features, labels=labels, num_classes=2)

    shards = []
    for _ in range(num_clients):
        perturbation = rng.normal(size=num_features)
        perturbation /= np.linalg.norm(perturbation)
        site_boundary = global_boundary + boundary_spread * perturbation
        site_boundary /= np.linalg.norm(site_boundary)
        shards.append(labelled_with(site_boundary, samples_per_client))
    test = labelled_with(global_boundary, max(400, samples_per_client))
    return shards, test


def train_test_split(
    dataset: Dataset, test_fraction: float, rng: np.random.Generator
) -> tuple[Dataset, Dataset]:
    """Shuffle and split into (train, test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    order = rng.permutation(dataset.num_samples)
    num_test = max(1, int(round(dataset.num_samples * test_fraction)))
    return dataset.subset(order[num_test:]), dataset.subset(order[:num_test])
