"""Federated data partitioners.

A partitioner splits one dataset's sample indices across ``num_clients``
clients.  All partitioners guarantee the *exact-cover* invariant — every
sample appears in exactly one client's shard — and never produce an empty
client (they re-balance if the raw draw would).  The non-IID knobs:

* :func:`iid_partition` — uniform shuffle-and-split, the homogeneous control.
* :func:`dirichlet_partition` — per-class Dirichlet(alpha) proportions, the
  de-facto standard label-skew model; alpha→0 is near one-class clients,
  alpha→inf recovers IID.
* :func:`shard_partition` — McMahan-style sort-by-label shard assignment;
  each client holds ``shards_per_client`` contiguous label shards.
* :func:`quantity_skew_partition` — power-law client sizes, label
  distribution IID; models heterogeneous data volumes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "iid_partition",
    "dirichlet_partition",
    "shard_partition",
    "quantity_skew_partition",
    "partition_label_histograms",
]


def _validate_args(num_items: int, num_clients: int) -> None:
    if num_clients <= 0:
        raise ValueError(f"num_clients must be > 0, got {num_clients}")
    if num_items < num_clients:
        raise ValueError(
            f"cannot split {num_items} samples across {num_clients} clients "
            "without empty shards"
        )


def _fix_empty_shards(
    shards: list[np.ndarray], rng: np.random.Generator
) -> list[np.ndarray]:
    """Move single samples from the largest shards into any empty ones."""
    shards = [np.asarray(s, dtype=int) for s in shards]
    while True:
        empty = [i for i, s in enumerate(shards) if s.size == 0]
        if not empty:
            return shards
        donor = int(np.argmax([s.size for s in shards]))
        if shards[donor].size <= 1:
            raise ValueError("not enough samples to give every client one")
        pick = rng.integers(shards[donor].size)
        moved = shards[donor][pick]
        shards[donor] = np.delete(shards[donor], pick)
        shards[empty[0]] = np.array([moved], dtype=int)


def iid_partition(
    num_samples: int, num_clients: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Uniformly random, near-equal-size split of ``range(num_samples)``."""
    _validate_args(num_samples, num_clients)
    order = rng.permutation(num_samples)
    return [np.sort(part) for part in np.array_split(order, num_clients)]


def dirichlet_partition(
    labels: np.ndarray,
    num_clients: int,
    alpha: float,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """Label-skewed split: class ``c``'s samples follow Dirichlet(alpha) shares.

    Smaller ``alpha`` concentrates each class on few clients.  Every client is
    guaranteed at least one sample (re-balanced after the draw if needed).
    """
    labels = np.asarray(labels, dtype=int)
    _validate_args(labels.shape[0], num_clients)
    if alpha <= 0:
        raise ValueError(f"alpha must be > 0, got {alpha}")

    shards: list[list[int]] = [[] for _ in range(num_clients)]
    for class_value in np.unique(labels):
        class_indices = np.flatnonzero(labels == class_value)
        rng.shuffle(class_indices)
        proportions = rng.dirichlet(np.full(num_clients, alpha))
        counts = np.floor(proportions * class_indices.size).astype(int)
        remainder = class_indices.size - counts.sum()
        if remainder > 0:
            extra = rng.choice(num_clients, size=remainder, p=proportions)
            np.add.at(counts, extra, 1)
        offset = 0
        for client, count in enumerate(counts):
            shards[client].extend(class_indices[offset : offset + count].tolist())
            offset += count

    fixed = _fix_empty_shards([np.array(s, dtype=int) for s in shards], rng)
    return [np.sort(s) for s in fixed]


def shard_partition(
    labels: np.ndarray,
    num_clients: int,
    shards_per_client: int,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """McMahan-style pathological split: sort by label, deal out shards.

    The label axis is sorted, cut into ``num_clients * shards_per_client``
    contiguous shards, and each client receives ``shards_per_client`` of them
    uniformly at random — so each client sees only a few classes.
    """
    labels = np.asarray(labels, dtype=int)
    _validate_args(labels.shape[0], num_clients)
    if shards_per_client <= 0:
        raise ValueError(f"shards_per_client must be > 0, got {shards_per_client}")
    total_shards = num_clients * shards_per_client
    if labels.shape[0] < total_shards:
        raise ValueError(
            f"{labels.shape[0]} samples cannot fill {total_shards} shards"
        )

    # Sort by label with a random tiebreak so shard contents vary by seed.
    jitter = rng.random(labels.shape[0])
    order = np.lexsort((jitter, labels))
    shard_chunks = np.array_split(order, total_shards)
    assignment = rng.permutation(total_shards)

    shards = []
    for client in range(num_clients):
        chunk_ids = assignment[
            client * shards_per_client : (client + 1) * shards_per_client
        ]
        shards.append(np.sort(np.concatenate([shard_chunks[c] for c in chunk_ids])))
    return shards


def quantity_skew_partition(
    num_samples: int,
    num_clients: int,
    power: float,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """IID labels, power-law shard sizes: size_k ∝ (k+1)^-power.

    ``power = 0`` gives equal sizes; larger values concentrate data on few
    clients (the "data-rich vs data-poor" axis of heterogeneity).
    """
    _validate_args(num_samples, num_clients)
    if power < 0:
        raise ValueError(f"power must be >= 0, got {power}")
    raw = (np.arange(1, num_clients + 1, dtype=float)) ** (-power)
    rng.shuffle(raw)
    proportions = raw / raw.sum()
    counts = np.maximum(1, np.floor(proportions * num_samples).astype(int))
    # Adjust to exactly num_samples while keeping every client >= 1.
    while counts.sum() > num_samples:
        candidates = np.flatnonzero(counts > 1)
        counts[rng.choice(candidates)] -= 1
    while counts.sum() < num_samples:
        counts[rng.integers(num_clients)] += 1

    order = rng.permutation(num_samples)
    shards = []
    offset = 0
    for count in counts:
        shards.append(np.sort(order[offset : offset + count]))
        offset += count
    return shards


def partition_label_histograms(
    labels: np.ndarray, shards: list[np.ndarray], num_classes: int
) -> np.ndarray:
    """Per-client label counts, shape ``(num_clients, num_classes)``."""
    labels = np.asarray(labels, dtype=int)
    histograms = np.zeros((len(shards), num_classes), dtype=int)
    for client, shard in enumerate(shards):
        histograms[client] = np.bincount(labels[shard], minlength=num_classes)
    return histograms
