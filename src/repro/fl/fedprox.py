"""FedProx: proximal local training for heterogeneous federations.

Under partial participation and non-IID data, vanilla FedAvg local updates
can drift far from the global model.  FedProx (Li et al., MLSys 2020)
regularises each local step with a proximal term
``mu/2 * ||w - w_global||^2``, i.e. adds ``mu * (w - w_global)`` to every
local gradient.  In the auction setting this matters because the mechanism
deliberately *skews* participation (by value, by cost, by sustainability
queues), which amplifies client drift — the FedProx client is the standard
antidote and is used in the robustness ablations.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.fl.client import ClientUpdate, FLClient
from repro.fl.datasets import Dataset
from repro.fl.model import Model
from repro.fl.optimizer import Optimizer
from repro.utils.validation import check_non_negative

__all__ = ["FedProxClient"]


class FedProxClient(FLClient):
    """An FL client whose local steps carry a proximal pull to the global model.

    Parameters are those of :class:`~repro.fl.client.FLClient` plus:

    proximal_mu:
        The proximal coefficient ``mu >= 0``; 0 recovers plain FedAvg.
    """

    def __init__(
        self,
        client_id: int,
        dataset: Dataset,
        model: Model,
        optimizer_factory: Callable[[], Optimizer],
        *,
        proximal_mu: float = 0.1,
        local_steps: int = 5,
        batch_size: int = 32,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(
            client_id,
            dataset,
            model,
            optimizer_factory,
            local_steps=local_steps,
            batch_size=batch_size,
            rng=rng,
        )
        self.proximal_mu = check_non_negative("proximal_mu", proximal_mu)

    def train(self, global_params: np.ndarray) -> ClientUpdate:
        global_params = np.asarray(global_params, dtype=float)
        self.model.set_params(global_params)
        optimizer = self.optimizer_factory()

        plan = self.sample_round_indices()
        params = self.model.get_params()
        loss = 0.0
        for step in range(self.local_steps):
            indices = plan[step]
            features = self.dataset.features[indices]
            labels = self.dataset.labels[indices]
            self.model.set_params(params)
            loss, grad = self.model.loss_and_grad(features, labels)
            drift = params - global_params
            loss += 0.5 * self.proximal_mu * float(drift @ drift)
            grad = grad + self.proximal_mu * drift
            params = optimizer.step(params, grad)
        self.model.set_params(params)

        return ClientUpdate(
            client_id=self.client_id,
            delta=params - global_params,
            num_samples=self.num_samples,
            final_loss=float(loss),
        )

    def __repr__(self) -> str:
        return (
            f"FedProxClient(id={self.client_id}, samples={self.num_samples}, "
            f"proximal_mu={self.proximal_mu})"
        )
