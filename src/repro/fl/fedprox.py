"""FedProx: proximal local training for heterogeneous federations.

Under partial participation and non-IID data, vanilla FedAvg local updates
can drift far from the global model.  FedProx (Li et al., MLSys 2020)
regularises each local step with a proximal term
``mu/2 * ||w - w_global||^2``, i.e. adds ``mu * (w - w_global)`` to every
local gradient.  In the auction setting this matters because the mechanism
deliberately *skews* participation (by value, by cost, by sustainability
queues), which amplifies client drift — the FedProx client is the standard
antidote and is used in the robustness ablations.

The proximal pull is carried by the base :class:`~repro.fl.client.FLClient`
algorithm (its ``proximal_mu`` knob), not by an overridden ``train`` —
it is one elementwise operation per local step, which both the scalar loop
and the stacked kernels of :class:`~repro.fl.batch.VectorizedLocalSolver`
apply identically.  :class:`FedProxClient` is therefore just the named,
validated constructor for a proximal client, and FedProx federations ride
the vectorised fast path like any homogeneous FedAvg group (the
equivalence suite pins batched == scalar for mixed per-client ``mu``).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.fl.client import FLClient
from repro.fl.datasets import Dataset
from repro.fl.model import Model
from repro.fl.optimizer import Optimizer
from repro.utils.validation import check_non_negative

__all__ = ["FedProxClient"]


class FedProxClient(FLClient):
    """An FL client whose local steps carry a proximal pull to the global model.

    Parameters are those of :class:`~repro.fl.client.FLClient` plus:

    proximal_mu:
        The proximal coefficient ``mu >= 0``; 0 recovers plain FedAvg.
    """

    def __init__(
        self,
        client_id: int,
        dataset: Dataset,
        model: Model,
        optimizer_factory: Callable[[], Optimizer],
        *,
        proximal_mu: float = 0.1,
        local_steps: int = 5,
        batch_size: int = 32,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(
            client_id,
            dataset,
            model,
            optimizer_factory,
            local_steps=local_steps,
            batch_size=batch_size,
            rng=rng,
            proximal_mu=check_non_negative("proximal_mu", proximal_mu),
        )

    def __repr__(self) -> str:
        return (
            f"FedProxClient(id={self.client_id}, samples={self.num_samples}, "
            f"proximal_mu={self.proximal_mu})"
        )
