"""The synchronous federated training loop.

:class:`FederatedTrainer` runs FedAvg-style rounds with a pluggable
*participation policy*: a callable receiving the round index and the full
client-id list and returning ``(selected_ids, payments)``.  The plain FL
experiments use simple policies (everyone, uniform sampling); the auction
experiments plug in :class:`repro.simulation.runner.SimulationRunner`'s
mechanism-driven policy — the trainer itself stays mechanism-agnostic.

The local phase runs through a pluggable
:class:`~repro.fl.batch.LocalSolver`; the default
:class:`~repro.fl.batch.VectorizedLocalSolver` trains every stackable group
of selected clients simultaneously and the resulting
:class:`~repro.fl.batch.UpdateBatch` aggregates as one weighted tensordot.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

import numpy as np

from repro.fl.batch import LocalSolver, VectorizedLocalSolver
from repro.fl.client import FLClient
from repro.fl.metrics import RoundMetrics, TrainingHistory
from repro.fl.server import FLServer
from repro.logging_utils import get_logger

__all__ = ["FederatedTrainer", "ParticipationPolicy", "all_clients_policy", "uniform_sampling_policy"]

#: (round_index, all_client_ids) -> (selected client ids, payments by id)
ParticipationPolicy = Callable[
    [int, Sequence[int]], tuple[Sequence[int], Mapping[int, float]]
]

_LOGGER = get_logger("fl.trainer")


def all_clients_policy(round_index: int, client_ids: Sequence[int]):
    """Every client participates every round, unpaid (the FedAvg oracle)."""
    return list(client_ids), {}


def uniform_sampling_policy(
    fraction: float, rng: np.random.Generator
) -> ParticipationPolicy:
    """Classic FedAvg client sampling: a random ``fraction`` per round."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")

    def policy(round_index: int, client_ids: Sequence[int]):
        count = max(1, int(round(len(client_ids) * fraction)))
        chosen = rng.choice(len(client_ids), size=count, replace=False)
        return [client_ids[i] for i in sorted(chosen)], {}

    return policy


class FederatedTrainer:
    """Drives global rounds: select -> local train -> aggregate -> evaluate.

    Parameters
    ----------
    server:
        The global-model holder.
    clients:
        All clients in the federation (participation decided per round by
        the policy).
    policy:
        The participation policy (see module docstring).
    eval_every:
        Evaluate the global model every this many rounds (always including
        the final round); evaluation dominates runtime for large test sets.
    local_solver:
        The engine running the selected clients' local phases; defaults to
        the vectorised solver (scalar fallback built in — pass
        :class:`~repro.fl.batch.SequentialLocalSolver` to force the scalar
        reference path).
    """

    def __init__(
        self,
        server: FLServer,
        clients: Sequence[FLClient],
        policy: ParticipationPolicy = all_clients_policy,
        *,
        eval_every: int = 1,
        local_solver: LocalSolver | None = None,
    ) -> None:
        if not clients:
            raise ValueError("need at least one client")
        if eval_every <= 0:
            raise ValueError(f"eval_every must be > 0, got {eval_every}")
        ids = [client.client_id for client in clients]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate client ids")
        self.server = server
        self.clients = {client.client_id: client for client in clients}
        self.policy = policy
        self.eval_every = int(eval_every)
        self.local_solver = (
            local_solver if local_solver is not None else VectorizedLocalSolver()
        )
        self.history = TrainingHistory()

    def run_round(self, round_index: int, *, evaluate: bool = True) -> RoundMetrics:
        """Execute one global round and record it in the history."""
        client_ids = sorted(self.clients)
        selected, payments = self.policy(round_index, client_ids)
        unknown = [cid for cid in selected if cid not in self.clients]
        if unknown:
            raise KeyError(f"policy selected unknown clients {unknown}")

        global_params = self.server.global_params()
        updates = self.local_solver.train(
            [self.clients[cid] for cid in sorted(selected)], global_params
        )
        self.server.apply_updates(updates)

        test_loss = test_accuracy = float("nan")
        if evaluate:
            test_loss, test_accuracy = self.server.evaluate()
        mean_local_loss = (
            float(updates.final_losses.mean()) if len(updates) else float("nan")
        )
        metrics = RoundMetrics(
            round_index=round_index,
            participants=tuple(sorted(selected)),
            test_loss=test_loss,
            test_accuracy=test_accuracy,
            mean_local_loss=mean_local_loss,
            total_payment=float(sum(payments.values())),
        )
        self.history.record(metrics)
        return metrics

    def run(self, num_rounds: int, *, log_every: int | None = None) -> TrainingHistory:
        """Run ``num_rounds`` rounds; returns the accumulated history."""
        if num_rounds <= 0:
            raise ValueError(f"num_rounds must be > 0, got {num_rounds}")
        for round_index in range(num_rounds):
            evaluate = (
                round_index % self.eval_every == 0 or round_index == num_rounds - 1
            )
            metrics = self.run_round(round_index, evaluate=evaluate)
            if log_every and round_index % log_every == 0:
                _LOGGER.info(
                    "round %d: acc=%.4f loss=%.4f participants=%d",
                    round_index,
                    metrics.test_accuracy,
                    metrics.test_loss,
                    len(metrics.participants),
                )
        return self.history
