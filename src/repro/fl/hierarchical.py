"""Two-tier (hierarchical) aggregation over a client/edge/cloud topology.

Edge servers aggregate their attached winners' updates locally, then the
cloud aggregates the edge aggregates.  With sample-count weighting at both
tiers, the composition equals flat FedAvg exactly (the weighted mean is
associative over a partition of the weights), which :func:`hierarchical_mean`
exploits and the test suite verifies — so the hierarchy changes *systems*
behaviour (traffic, latency, partial failure domains) without changing
*learning* behaviour.

:class:`HierarchicalAggregator` additionally reports per-edge traffic
statistics: how many updates crossed each client->edge link and how many
aggregates crossed each edge->cloud link, quantifying the backbone-traffic
reduction hierarchy buys (one upload per *edge* instead of one per client).
"""

from __future__ import annotations

import numpy as np

from repro.fl.aggregation import stack_updates, weighted_mean
from repro.fl.client import ClientUpdate
from repro.simulation.topology import HierarchicalTopology

__all__ = ["hierarchical_mean", "HierarchicalAggregator"]


def hierarchical_mean(
    updates: list[ClientUpdate], topology: HierarchicalTopology
) -> np.ndarray:
    """Two-tier weighted mean of client deltas over the topology.

    Equals the flat FedAvg weighted mean of the same updates (verified
    property-based in the tests); provided as a separate code path so edge
    failures and traffic accounting can be modelled at the right tier.
    """
    if not updates:
        raise ValueError("cannot aggregate zero updates")
    by_edge: dict[int, list[ClientUpdate]] = {}
    for update in updates:
        edge = topology.edge_of.get(update.client_id)
        if edge is None:
            raise KeyError(f"client {update.client_id} not in topology")
        by_edge.setdefault(edge, []).append(update)

    edge_aggregates = []
    edge_weights = []
    for edge in sorted(by_edge):
        group = by_edge[edge]
        stacked = stack_updates([u.delta for u in group])
        weights = np.array([u.num_samples for u in group], dtype=float)
        edge_aggregates.append(weighted_mean(stacked, weights))
        edge_weights.append(weights.sum())
    return weighted_mean(
        np.stack(edge_aggregates), np.array(edge_weights, dtype=float)
    )


class HierarchicalAggregator:
    """Stateful aggregator with traffic accounting and edge-failure injection.

    Parameters
    ----------
    topology:
        The aggregation tree.
    edge_failure_prob:
        Per-round probability that an edge server fails to forward its
        aggregate (all its winners' updates are lost that round).
    rng:
        Generator for failure draws (required when failures are enabled).
    """

    def __init__(
        self,
        topology: HierarchicalTopology,
        *,
        edge_failure_prob: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= edge_failure_prob <= 1.0:
            raise ValueError(
                f"edge_failure_prob must be in [0, 1], got {edge_failure_prob}"
            )
        if edge_failure_prob > 0 and rng is None:
            raise ValueError("edge failures need an rng")
        self.topology = topology
        self.edge_failure_prob = float(edge_failure_prob)
        self.rng = rng
        self.client_uplink_count = 0
        self.backbone_uplink_count = 0
        self.failed_edge_rounds = 0

    def aggregate(self, updates: list[ClientUpdate]) -> np.ndarray | None:
        """Aggregate one round's updates; ``None`` when every edge failed.

        Surviving edges' aggregates are combined with their weights; a
        failed edge silently drops its clients for the round (the partial-
        participation semantics FedAvg already has).
        """
        if not updates:
            return None
        by_edge: dict[int, list[ClientUpdate]] = {}
        for update in updates:
            edge = self.topology.edge_of.get(update.client_id)
            if edge is None:
                raise KeyError(f"client {update.client_id} not in topology")
            by_edge.setdefault(edge, []).append(update)
        self.client_uplink_count += len(updates)

        aggregates = []
        weights = []
        for edge in sorted(by_edge):
            if self.edge_failure_prob > 0 and self.rng.random() < self.edge_failure_prob:
                self.failed_edge_rounds += 1
                continue
            group = by_edge[edge]
            stacked = stack_updates([u.delta for u in group])
            group_weights = np.array([u.num_samples for u in group], dtype=float)
            aggregates.append(weighted_mean(stacked, group_weights))
            weights.append(group_weights.sum())
            self.backbone_uplink_count += 1
        if not aggregates:
            return None
        return weighted_mean(np.stack(aggregates), np.array(weights, dtype=float))

    def backbone_savings(self) -> float:
        """Fraction of backbone uploads avoided vs. a flat star topology."""
        if self.client_uplink_count == 0:
            return 0.0
        return 1.0 - self.backbone_uplink_count / self.client_uplink_count

    def __repr__(self) -> str:
        return (
            f"HierarchicalAggregator(edges={self.topology.num_edges}, "
            f"edge_failure_prob={self.edge_failure_prob})"
        )
