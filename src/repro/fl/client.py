"""Federated-learning client: local training on a private shard.

A client owns a private :class:`~repro.fl.datasets.Dataset` shard, a model
instance of the global architecture, and an optimizer.  One call to
:meth:`FLClient.train` performs the standard FedAvg local phase: load the
global parameters, run ``local_steps`` minibatch-SGD steps, and return the
parameter *delta* plus bookkeeping (sample count, final local loss).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.fl.datasets import Dataset
from repro.fl.model import Model
from repro.fl.optimizer import Optimizer

__all__ = ["ClientUpdate", "FLClient"]


@dataclass(frozen=True)
class ClientUpdate:
    """Result of one local-training phase.

    Attributes
    ----------
    client_id:
        Producing client.
    delta:
        ``local_params - global_params`` after local training.
    num_samples:
        Size of the client's shard (the FedAvg aggregation weight).
    final_loss:
        Minibatch loss at the last local step (diagnostic).
    """

    client_id: int
    delta: np.ndarray
    num_samples: int
    final_loss: float


class FLClient:
    """One federated client.

    Parameters
    ----------
    client_id:
        Stable identity.
    dataset:
        The client's private shard.
    model:
        A model instance with the global architecture (exclusively owned by
        this client; its parameters are overwritten every round).
    optimizer_factory:
        Zero-argument callable producing a fresh optimizer; a new optimizer
        is created for every round so local state never leaks across rounds
        (matching synchronous FedAvg).
    local_steps:
        Number of minibatch SGD steps per round.
    batch_size:
        Minibatch size (capped at the shard size).
    rng:
        Private random generator for minibatch sampling.
    compressor:
        Optional :class:`repro.fl.compression.Compressor` applied to the
        update delta before upload (lossy; models bandwidth-limited
        clients).
    proximal_mu:
        FedProx proximal coefficient ``mu >= 0``: every local gradient
        gains a ``mu * (w - w_global)`` pull toward the global model (and
        the reported loss the matching ``mu/2 ||w - w_global||^2`` term).
        The default 0 is plain FedAvg.  Carrying the term here — one
        elementwise pull per step, on both the scalar and the stacked
        training paths — is what lets :class:`~repro.fl.fedprox
        .FedProxClient` ride the vectorised engine instead of forcing the
        scalar fallback.
    """

    def __init__(
        self,
        client_id: int,
        dataset: Dataset,
        model: Model,
        optimizer_factory: Callable[[], Optimizer],
        *,
        local_steps: int = 5,
        batch_size: int = 32,
        rng: np.random.Generator,
        compressor=None,
        proximal_mu: float = 0.0,
    ) -> None:
        if dataset.num_samples == 0:
            raise ValueError(f"client {client_id} has an empty shard")
        if local_steps <= 0:
            raise ValueError(f"local_steps must be > 0, got {local_steps}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be > 0, got {batch_size}")
        if proximal_mu < 0:
            raise ValueError(f"proximal_mu must be >= 0, got {proximal_mu}")
        self.client_id = int(client_id)
        self.dataset = dataset
        self.model = model
        self.optimizer_factory = optimizer_factory
        self.local_steps = int(local_steps)
        self.batch_size = min(int(batch_size), dataset.num_samples)
        self.rng = rng
        self.compressor = compressor
        self.proximal_mu = float(proximal_mu)

    @property
    def num_samples(self) -> int:
        """Size of the client's local shard."""
        return self.dataset.num_samples

    @property
    def supports_stacking(self) -> bool:
        """True when this client's local phase is the base-class algorithm.

        Subclasses that override :meth:`train` (the Byzantine wrappers)
        change the local phase itself, so the vectorised engine
        (:mod:`repro.fl.batch`) must route them through the scalar path;
        subclasses that only reshape construction-time state
        (:class:`~repro.fl.attacks.LabelFlippingClient`) or parameterise
        the base algorithm (:class:`~repro.fl.fedprox.FedProxClient` via
        ``proximal_mu``) stack fine.
        """
        return type(self).train is FLClient.train

    def sample_round_indices(self) -> np.ndarray:
        """Draw one round's minibatch plan from the client's private rng.

        Returns a ``(local_steps, batch_size)`` matrix of shard indices —
        row ``t`` is step ``t``'s without-replacement minibatch.  Both
        local-training paths — :meth:`train` and the stacked engine in
        :mod:`repro.fl.batch` — draw through this method, once per round,
        so each client's random stream is consumed identically no matter
        which engine runs it.  One ``permuted`` call covers all steps on
        small shards; large shards fall back to per-step ``choice``
        (``permuted`` is O(steps * shard) regardless of batch size).
        """
        num_samples = self.dataset.num_samples
        if num_samples <= 256:
            plan = np.empty((self.local_steps, num_samples), dtype=np.int64)
            plan[:] = np.arange(num_samples)
            self.rng.permuted(plan, axis=1, out=plan)
            return plan[:, : self.batch_size]
        return np.stack(
            [
                self.rng.choice(num_samples, size=self.batch_size, replace=False)
                for _ in range(self.local_steps)
            ]
        )

    def train(self, global_params: np.ndarray) -> ClientUpdate:
        """Run the local phase from ``global_params`` and return the delta."""
        global_params = np.asarray(global_params, dtype=float)
        self.model.set_params(global_params)
        optimizer = self.optimizer_factory()

        plan = self.sample_round_indices()
        params = self.model.get_params()
        loss = 0.0
        for step in range(self.local_steps):
            indices = plan[step]
            features = self.dataset.features[indices]
            labels = self.dataset.labels[indices]
            self.model.set_params(params)
            loss, grad = self.model.loss_and_grad(features, labels)
            if self.proximal_mu:
                drift = params - global_params
                loss += 0.5 * self.proximal_mu * float(drift @ drift)
                grad = grad + self.proximal_mu * drift
            params = optimizer.step(params, grad)
        self.model.set_params(params)

        delta = params - global_params
        if self.compressor is not None:
            delta = self.compressor.compress(delta)
        return ClientUpdate(
            client_id=self.client_id,
            delta=delta,
            num_samples=self.num_samples,
            final_loss=float(loss),
        )

    def evaluate(self, params: np.ndarray) -> tuple[float, float]:
        """(loss, accuracy) of the given parameters on the local shard."""
        self.model.set_params(np.asarray(params, dtype=float))
        loss = self.model.loss(self.dataset.features, self.dataset.labels)
        accuracy = self.model.accuracy(self.dataset.features, self.dataset.labels)
        return float(loss), float(accuracy)

    def __repr__(self) -> str:
        return (
            f"FLClient(id={self.client_id}, samples={self.num_samples}, "
            f"local_steps={self.local_steps}, batch_size={self.batch_size})"
        )
