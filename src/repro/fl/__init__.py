"""Federated-learning substrate: models, data, clients, server, training loop.

Everything here is implemented from scratch on numpy — no external ML
framework.  The substrate is deliberately framework-shaped: models expose
flat parameter vectors, clients run local SGD and return deltas, the server
aggregates with pluggable rules, and :class:`~repro.fl.trainer.FederatedTrainer`
runs the synchronous FedAvg loop with an arbitrary participation policy
(which is how the auction mechanisms plug in).
"""

from repro.fl.aggregation import (
    coordinate_median,
    stack_updates,
    trimmed_mean,
    weighted_mean,
)
from repro.fl.attacks import (
    GaussianNoiseClient,
    LabelFlippingClient,
    UpdateScalingClient,
)
from repro.fl.batch import (
    ClientBatch,
    LocalSolver,
    SequentialLocalSolver,
    UpdateBatch,
    VectorizedLocalSolver,
)
from repro.fl.client import ClientUpdate, FLClient
from repro.fl.cnn import TinyConvNet
from repro.fl.compression import Compressor, qsgd_quantize, top_k_sparsify
from repro.fl.evaluation import (
    confusion_matrix,
    evaluate_model,
    macro_accuracy,
    per_class_accuracy,
    worst_class_accuracy,
)
from repro.fl.fedprox import FedProxClient
from repro.fl.hierarchical import HierarchicalAggregator, hierarchical_mean
from repro.fl.datasets import (
    Dataset,
    make_gaussian_mixture,
    make_rotated_client_images,
    make_sensor_streams,
    make_synthetic_images,
    make_two_spirals,
    train_test_split,
)
from repro.fl.linear import SoftmaxRegression, stacked_softmax_kernel
from repro.fl.metrics import RoundMetrics, TrainingHistory
from repro.fl.mlp import MLPClassifier, stacked_mlp_kernel
from repro.fl.model import Model
from repro.fl.optimizer import (
    SGD,
    Adam,
    Optimizer,
    StackedAdam,
    StackedSGD,
    stack_optimizers,
)
from repro.fl.partition import (
    dirichlet_partition,
    iid_partition,
    partition_label_histograms,
    quantity_skew_partition,
    shard_partition,
)
from repro.fl.server import FLServer
from repro.fl.server_optimizer import ServerAdam, ServerOptimizer, ServerSGD
from repro.fl.trainer import (
    FederatedTrainer,
    ParticipationPolicy,
    all_clients_policy,
    uniform_sampling_policy,
)

__all__ = [
    "Adam",
    "ClientBatch",
    "ClientUpdate",
    "Compressor",
    "LocalSolver",
    "SequentialLocalSolver",
    "StackedAdam",
    "StackedSGD",
    "UpdateBatch",
    "VectorizedLocalSolver",
    "stack_optimizers",
    "stacked_mlp_kernel",
    "stacked_softmax_kernel",
    "FedProxClient",
    "GaussianNoiseClient",
    "HierarchicalAggregator",
    "LabelFlippingClient",
    "hierarchical_mean",
    "ServerAdam",
    "ServerOptimizer",
    "ServerSGD",
    "UpdateScalingClient",
    "all_clients_policy",
    "confusion_matrix",
    "evaluate_model",
    "macro_accuracy",
    "per_class_accuracy",
    "qsgd_quantize",
    "worst_class_accuracy",
    "top_k_sparsify",
    "uniform_sampling_policy",
    "Dataset",
    "FLClient",
    "FLServer",
    "FederatedTrainer",
    "MLPClassifier",
    "Model",
    "Optimizer",
    "ParticipationPolicy",
    "RoundMetrics",
    "SGD",
    "SoftmaxRegression",
    "TinyConvNet",
    "TrainingHistory",
    "coordinate_median",
    "dirichlet_partition",
    "iid_partition",
    "make_gaussian_mixture",
    "make_rotated_client_images",
    "make_sensor_streams",
    "make_synthetic_images",
    "make_two_spirals",
    "partition_label_histograms",
    "quantity_skew_partition",
    "shard_partition",
    "stack_updates",
    "train_test_split",
    "trimmed_mean",
    "weighted_mean",
]
