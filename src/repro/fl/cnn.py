"""A tiny convolutional network with manual backprop (im2col based).

Architecture: ``conv(3x3, F filters, valid) -> ReLU -> maxpool(2x2) ->
dense -> softmax``.  Designed for the small synthetic image datasets
(8x8 / 10x10 grayscale) so that the CNN-based experiments finish in seconds
on a laptop while still exercising a genuinely non-linear, weight-shared
model — the substitute for the paper family's usual small CNN on
MNIST/CIFAR (see DESIGN.md, substitutions).

:func:`stacked_convnet_kernel` provides the leading-client-axis variant of
:meth:`TinyConvNet.loss_and_grad` used by the vectorised local-training
engine (:mod:`repro.fl.batch`): the conv/pool forward and backward passes
dispatch through the compute-backend seam (:func:`repro.kernels.kernel`,
entries ``"stacked_conv_forward"`` / ``"stacked_conv_backward"``), so CNN
federations no longer fall back to the scalar per-client loop.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.fl.model import Model, cross_entropy, one_hot, softmax
from repro.utils.validation import check_non_negative

__all__ = ["TinyConvNet", "stacked_convnet_kernel", "StackedConvNetKernel"]


def _im2col(images: np.ndarray, kernel: int) -> np.ndarray:
    """Extract all kernel x kernel patches: (n, H, W) -> (n, oh*ow, kernel*kernel)."""
    n, height, width = images.shape
    out_h = height - kernel + 1
    out_w = width - kernel + 1
    strides = images.strides
    patches = np.lib.stride_tricks.as_strided(
        images,
        shape=(n, out_h, out_w, kernel, kernel),
        strides=(strides[0], strides[1], strides[2], strides[1], strides[2]),
        writeable=False,
    )
    return patches.reshape(n, out_h * out_w, kernel * kernel)


class TinyConvNet(Model):
    """Single conv layer + ReLU + 2x2 max-pool + dense softmax head.

    Parameters
    ----------
    image_shape:
        ``(height, width)`` of the grayscale input; both must be at least
        ``kernel + 1`` and the post-conv size must be even for the 2x2 pool.
    num_classes:
        Output classes.
    num_filters:
        Number of conv filters.
    kernel:
        Conv kernel side length (default 3).
    l2:
        L2 penalty on conv and dense weights.
    seed:
        Initialisation seed.
    """

    def __init__(
        self,
        image_shape: tuple[int, int],
        num_classes: int,
        *,
        num_filters: int = 8,
        kernel: int = 3,
        l2: float = 0.0,
        seed: int = 0,
    ) -> None:
        height, width = image_shape
        out_h, out_w = height - kernel + 1, width - kernel + 1
        if out_h < 2 or out_w < 2:
            raise ValueError(f"image {image_shape} too small for kernel {kernel}")
        if out_h % 2 or out_w % 2:
            raise ValueError(
                f"post-conv size ({out_h}x{out_w}) must be even for 2x2 pooling; "
                f"pick image/kernel sizes accordingly"
            )
        if num_classes <= 1 or num_filters <= 0:
            raise ValueError("need num_classes > 1 and num_filters > 0")
        self.image_shape = (int(height), int(width))
        self.num_classes = int(num_classes)
        self.num_filters = int(num_filters)
        self.kernel = int(kernel)
        self.l2 = check_non_negative("l2", l2)
        self._conv_out = (out_h, out_w)
        self._pool_out = (out_h // 2, out_w // 2)
        dense_in = self.num_filters * self._pool_out[0] * self._pool_out[1]

        rng = np.random.default_rng(seed)
        self.conv_w = rng.normal(
            0.0, np.sqrt(2.0 / (kernel * kernel)), size=(num_filters, kernel * kernel)
        )
        self.conv_b = np.zeros(num_filters)
        self.dense_w = rng.normal(0.0, np.sqrt(2.0 / dense_in), size=(dense_in, num_classes))
        self.dense_b = np.zeros(num_classes)

    @property
    def num_params(self) -> int:
        return (
            self.conv_w.size + self.conv_b.size + self.dense_w.size + self.dense_b.size
        )

    def get_params(self) -> np.ndarray:
        return np.concatenate(
            [self.conv_w.ravel(), self.conv_b, self.dense_w.ravel(), self.dense_b]
        ).astype(float)

    def set_params(self, flat: np.ndarray) -> None:
        flat = self._check_flat(flat)
        offset = 0
        for attr in ("conv_w", "conv_b", "dense_w", "dense_b"):
            current = getattr(self, attr)
            setattr(self, attr, flat[offset : offset + current.size].reshape(current.shape).copy())
            offset += current.size

    def _reshape_images(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        height, width = self.image_shape
        if features.ndim == 2:
            if features.shape[1] != height * width:
                raise ValueError(
                    f"flat input of width {features.shape[1]} does not match "
                    f"image shape {self.image_shape}"
                )
            return features.reshape(-1, height, width)
        if features.ndim == 3 and features.shape[1:] == (height, width):
            return features
        raise ValueError(f"cannot interpret input of shape {features.shape}")

    def _forward(self, features: np.ndarray) -> dict:
        images = self._reshape_images(features)
        n = images.shape[0]
        out_h, out_w = self._conv_out
        pool_h, pool_w = self._pool_out

        columns = _im2col(images, self.kernel)  # (n, oh*ow, k*k)
        conv = columns @ self.conv_w.T + self.conv_b  # (n, oh*ow, F)
        conv = conv.reshape(n, out_h, out_w, self.num_filters)
        relu_mask = conv > 0
        activated = conv * relu_mask

        # 2x2 max pool.
        windows = activated.reshape(n, pool_h, 2, pool_w, 2, self.num_filters)
        pooled = windows.max(axis=(2, 4))  # (n, ph, pw, F)
        # argmax mask for backprop (ties broken toward the first max).
        flat_windows = windows.transpose(0, 1, 3, 5, 2, 4).reshape(
            n, pool_h, pool_w, self.num_filters, 4
        )
        argmax = flat_windows.argmax(axis=-1)

        flat = pooled.reshape(n, -1)
        logits = flat @ self.dense_w + self.dense_b
        return {
            "images": images,
            "columns": columns,
            "relu_mask": relu_mask,
            "argmax": argmax,
            "flat": flat,
            "logits": logits,
        }

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return softmax(self._forward(features)["logits"])

    def loss_and_grad(
        self, features: np.ndarray, labels: np.ndarray
    ) -> tuple[float, np.ndarray]:
        labels = np.asarray(labels, dtype=int)
        cache = self._forward(features)
        n = cache["images"].shape[0]
        if n == 0:
            return 0.0, np.zeros(self.num_params)
        out_h, out_w = self._conv_out
        pool_h, pool_w = self._pool_out

        probabilities = softmax(cache["logits"])
        loss = cross_entropy(probabilities, labels)
        loss += 0.5 * self.l2 * (
            float((self.conv_w**2).sum()) + float((self.dense_w**2).sum())
        )

        delta_logits = (probabilities - one_hot(labels, self.num_classes)) / n
        grad_dense_w = cache["flat"].T @ delta_logits + self.l2 * self.dense_w
        grad_dense_b = delta_logits.sum(axis=0)

        delta_flat = delta_logits @ self.dense_w.T  # (n, ph*pw*F)
        delta_pooled = delta_flat.reshape(n, pool_h, pool_w, self.num_filters)

        # Un-pool: route gradient to the argmax position of each 2x2 window.
        delta_windows = np.zeros((n, pool_h, pool_w, self.num_filters, 4))
        np.put_along_axis(
            delta_windows, cache["argmax"][..., None], delta_pooled[..., None], axis=-1
        )
        delta_act = (
            delta_windows.reshape(n, pool_h, pool_w, self.num_filters, 2, 2)
            .transpose(0, 1, 4, 2, 5, 3)
            .reshape(n, out_h, out_w, self.num_filters)
        )
        delta_conv = delta_act * cache["relu_mask"]  # (n, oh, ow, F)
        delta_conv = delta_conv.reshape(n, out_h * out_w, self.num_filters)

        grad_conv_w = (
            np.einsum("npf,npk->fk", delta_conv, cache["columns"])
            + self.l2 * self.conv_w
        )
        grad_conv_b = delta_conv.sum(axis=(0, 1))

        flat_grad = np.concatenate(
            [grad_conv_w.ravel(), grad_conv_b, grad_dense_w.ravel(), grad_dense_b]
        )
        return loss, flat_grad

    def __repr__(self) -> str:
        return (
            f"TinyConvNet(image_shape={self.image_shape}, "
            f"num_classes={self.num_classes}, num_filters={self.num_filters})"
        )


class StackedConvNetKernel:
    """Per-client loss/grad for a homogeneous :class:`TinyConvNet` stack.

    Operates on a leading client axis: ``params`` is ``(C, P)``, minibatch
    ``features``/``labels`` are ``(C, B, H*W)`` / ``(C, B)``, and ``mask``
    flags the real (non-padding) minibatch rows.  The conv forward and
    backward passes route through the compute-backend seam; per client the
    arithmetic mirrors :meth:`TinyConvNet.loss_and_grad` operation for
    operation (im2col over the flattened client-sample axis, batched
    matmuls in place of per-client matmuls), so per-client results agree
    with the scalar path to floating-point associativity (pinned at 1e-9
    in the test suite).
    """

    def __init__(
        self,
        image_shape: tuple[int, int],
        num_classes: int,
        num_filters: int,
        kernel: int,
        l2: np.ndarray,
    ) -> None:
        self.image_shape = image_shape
        self.num_classes = int(num_classes)
        self.num_filters = int(num_filters)
        self.kernel = int(kernel)
        self.l2 = np.asarray(l2, dtype=float)
        height, width = image_shape
        out_h, out_w = height - kernel + 1, width - kernel + 1
        self._dense_in = num_filters * (out_h // 2) * (out_w // 2)
        self._kk = kernel * kernel
        self.num_params = (
            num_filters * self._kk
            + num_filters
            + self._dense_in * num_classes
            + num_classes
        )

    def _unflatten(self, params: np.ndarray):
        """Split the ``(C, P)`` stack into the four parameter tensors.

        Offsets follow :meth:`TinyConvNet.get_params`'s concatenation
        order; the views share ``params``'s memory.
        """
        num_clients = params.shape[0]
        sizes = (
            self.num_filters * self._kk,
            self.num_filters,
            self._dense_in * self.num_classes,
            self.num_classes,
        )
        offsets = np.cumsum((0,) + sizes)
        conv_w = params[:, offsets[0] : offsets[1]].reshape(
            num_clients, self.num_filters, self._kk
        )
        conv_b = params[:, offsets[1] : offsets[2]]
        dense_w = params[:, offsets[2] : offsets[3]].reshape(
            num_clients, self._dense_in, self.num_classes
        )
        dense_b = params[:, offsets[3] : offsets[4]]
        return conv_w, conv_b, dense_w, dense_b

    def loss_and_grad(
        self,
        params: np.ndarray,
        features: np.ndarray,
        labels: np.ndarray,
        mask: np.ndarray | None,
        counts: np.ndarray,
        *,
        with_loss: bool = True,
    ) -> tuple[np.ndarray | None, np.ndarray]:
        """``(losses (C,), grads (C, P))`` for one minibatch of every client.

        ``mask=None`` means every minibatch column is real (uniform batch
        sizes); ``with_loss=False`` skips the loss reduction (a per-step
        diagnostic the engine only reads at the final local step) and
        returns ``None`` losses.
        """
        from repro import kernels

        num_clients = params.shape[0]
        conv_w, conv_b, dense_w, dense_b = self._unflatten(params)
        cache = kernels.kernel("stacked_conv_forward")(
            features, conv_w, conv_b, dense_w, dense_b,
            self.image_shape, self.kernel,
        )
        probabilities = softmax(cache["logits"])  # (C, B, K)

        client_rows = np.arange(num_clients)[:, None]
        sample_cols = np.arange(labels.shape[1])[None, :]
        losses = None
        if with_loss:
            picked = probabilities[client_rows, sample_cols, labels]
            clipped = np.clip(picked, 1e-12, 1.0)
            if mask is None:
                losses = -np.log(clipped).sum(axis=1) / counts
            else:
                losses = -(np.log(clipped) * mask).sum(axis=1) / counts
            if self.l2.any():
                losses = losses + 0.5 * self.l2 * (
                    (conv_w**2).sum(axis=(1, 2)) + (dense_w**2).sum(axis=(1, 2))
                )

        delta = probabilities
        delta[client_rows, sample_cols, labels] -= 1.0
        delta /= counts[:, None, None]
        if mask is not None:
            delta *= mask[:, :, None]
        grad_conv_w, grad_conv_b, grad_dense_w, grad_dense_b = kernels.kernel(
            "stacked_conv_backward"
        )(delta, cache, conv_w, dense_w, self.l2)
        grads = np.concatenate(
            [
                grad_conv_w.reshape(num_clients, -1),
                grad_conv_b,
                grad_dense_w.reshape(num_clients, -1),
                grad_dense_b,
            ],
            axis=1,
        )
        return losses, grads


def stacked_convnet_kernel(models: Sequence[Model]) -> StackedConvNetKernel | None:
    """A stacked kernel for a homogeneous TinyConvNet family, else ``None``.

    Homogeneous means: every model is exactly :class:`TinyConvNet` (no
    subclasses, whose overridden loss the stack could not reproduce) with
    identical architecture; the L2 coefficient may differ per client (it
    is carried as a vector).
    """
    models = list(models)
    if not models or any(type(model) is not TinyConvNet for model in models):
        return None
    first = models[0]
    if any(
        model.image_shape != first.image_shape
        or model.num_classes != first.num_classes
        or model.num_filters != first.num_filters
        or model.kernel != first.kernel
        for model in models
    ):
        return None
    return StackedConvNetKernel(
        first.image_shape,
        first.num_classes,
        first.num_filters,
        first.kernel,
        np.array([model.l2 for model in models], dtype=float),
    )
