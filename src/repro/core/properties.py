"""Mechanism-property verification harness.

The economic claims a mechanism paper makes — truthfulness, individual
rationality, budget feasibility — are checkable by direct simulation: fix an
instance, let one client deviate, and compare utilities.  This module
provides those checks as reusable verifiers; the test suite applies them to
randomly generated instances (property-based via hypothesis) and benchmark
E5/E6 turn them into the paper-style deviation tables.

All verifiers work against a *mechanism factory* rather than a mechanism
instance, because stateful mechanisms (LT-VCG's queues) must be reset to an
identical state before each counterfactual run for the comparison to be a
true unilateral deviation.

The deviation sweeps are batched: every client's deviations are built as one
columnar :class:`~repro.core.bids.RoundBatch` and answered through
:meth:`~repro.core.mechanism.Mechanism.probe_rounds` (independent
counterfactuals from a fresh state), so mechanisms with vectorised probes
(the VCG family, every stateless baseline) evaluate a whole deviation grid
as stacked solves.  All fresh mechanism instances additionally share one
:class:`~repro.core.winner_determination.SolveCache` per sweep, so repeated
winner-determination instances across deviations are solved once even on
the sequential fallback path.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Mapping

from repro.core.bids import AuctionRound, RoundBatch, RoundOutcome
from repro.core.mechanism import Mechanism
from repro.core.winner_determination import SolveCache

__all__ = [
    "DeviationRecord",
    "TruthfulnessReport",
    "verify_truthfulness",
    "verify_individual_rationality",
    "verify_monotonicity",
]

MechanismFactory = Callable[[], Mechanism]


def _fresh_mechanism(factory: MechanismFactory, cache: SolveCache) -> Mechanism:
    """A fresh mechanism wired to the sweep-wide shared solve cache."""
    mechanism = factory()
    mechanism.attach_solve_cache(cache)
    return mechanism


def _utility(outcome: RoundOutcome, client_id: int, true_cost: float) -> float:
    """Quasi-linear utility: payment minus true cost when selected, else 0."""
    if client_id in outcome.selected:
        return outcome.payment_of(client_id) - true_cost
    return 0.0


@dataclass(frozen=True)
class DeviationRecord:
    """Outcome of one unilateral bid deviation."""

    client_id: int
    true_cost: float
    deviated_bid: float
    truthful_utility: float
    deviated_utility: float

    @property
    def gain(self) -> float:
        """Utility gain from deviating (positive = profitable deviation)."""
        return self.deviated_utility - self.truthful_utility


@dataclass(frozen=True)
class TruthfulnessReport:
    """Aggregate result of a truthfulness sweep over one instance."""

    records: tuple[DeviationRecord, ...]
    tolerance: float

    @property
    def max_gain(self) -> float:
        """Largest deviation gain observed (<= tolerance means truthful)."""
        return max((record.gain for record in self.records), default=0.0)

    @property
    def is_truthful(self) -> bool:
        """True when no deviation beats truthful bidding beyond tolerance."""
        return self.max_gain <= self.tolerance

    def violations(self) -> tuple[DeviationRecord, ...]:
        """All deviations whose gain exceeds the tolerance."""
        return tuple(r for r in self.records if r.gain > self.tolerance)


def verify_truthfulness(
    mechanism_factory: MechanismFactory,
    auction_round: AuctionRound,
    true_costs: Mapping[int, float],
    *,
    deviation_factors: Sequence[float] = (0.25, 0.5, 0.8, 0.9, 1.1, 1.25, 1.5, 2.0, 4.0),
    tolerance: float = 1e-6,
) -> TruthfulnessReport:
    """Check dominant-strategy truthfulness on one instance.

    The round's bids are taken to be the truthful profile (every bid equals
    the client's true cost from ``true_costs``).  For every client and every
    factor, the client's bid is scaled while all other bids stay truthful,
    the mechanism is re-run from a fresh state, and utilities are compared.

    Returns a report; truthfulness holds when no deviation gains more than
    ``tolerance``.
    """
    for bid in auction_round.bids:
        truthful_cost = true_costs.get(bid.client_id)
        if truthful_cost is None:
            raise ValueError(f"true cost missing for client {bid.client_id}")
        if abs(bid.cost - truthful_cost) > 1e-12:
            raise ValueError(
                f"bid of client {bid.client_id} ({bid.cost}) is not its true "
                f"cost ({truthful_cost}); the baseline profile must be truthful"
            )

    cache = SolveCache()
    truthful_outcome = _fresh_mechanism(mechanism_factory, cache).run_round(
        auction_round
    )
    # The whole sweep — every client × every misreport factor — is one
    # columnar deviation grid answered by a single batched probe.
    grid = [
        (bid.client_id, true_costs[bid.client_id] * factor)
        for bid in auction_round.bids
        for factor in deviation_factors
    ]
    batch = RoundBatch.deviation_grid(auction_round, grid)
    outcomes = _fresh_mechanism(mechanism_factory, cache).probe_rounds(batch)
    records = []
    for (client_id, deviated_bid), deviated_outcome in zip(grid, outcomes):
        true_cost = true_costs[client_id]
        records.append(
            DeviationRecord(
                client_id=client_id,
                true_cost=true_cost,
                deviated_bid=deviated_bid,
                truthful_utility=_utility(truthful_outcome, client_id, true_cost),
                deviated_utility=_utility(deviated_outcome, client_id, true_cost),
            )
        )
    return TruthfulnessReport(records=tuple(records), tolerance=tolerance)


def verify_individual_rationality(
    outcome: RoundOutcome,
    auction_round: AuctionRound,
    *,
    tolerance: float = 1e-9,
) -> list[str]:
    """Check that every winner is paid at least its bid.

    Under truthful bidding this is exactly individual rationality (utility
    >= 0 for winners; losers trivially get 0).  Returns a list of violation
    descriptions — empty means the property holds.
    """
    violations = []
    for client_id in outcome.selected:
        bid = auction_round.bid_of(client_id)
        payment = outcome.payment_of(client_id)
        if payment < bid.cost - tolerance:
            violations.append(
                f"client {client_id}: payment {payment:.6g} < bid {bid.cost:.6g}"
            )
    return violations


def verify_monotonicity(
    mechanism_factory: MechanismFactory,
    auction_round: AuctionRound,
    *,
    shrink_factors: Sequence[float] = (0.9, 0.5, 0.1),
) -> list[str]:
    """Check allocation monotonicity: winners keep winning at lower bids.

    Monotonicity is the structural property that makes critical-value
    payments well-defined; exact affine maximizers satisfy it by
    construction, greedy rules are verified here.  Returns violation
    descriptions (empty = monotone on this instance).
    """
    cache = SolveCache()
    baseline = _fresh_mechanism(mechanism_factory, cache).run_round(auction_round)
    grid = [
        (client_id, auction_round.bid_of(client_id).cost * factor)
        for client_id in baseline.selected
        for factor in shrink_factors
    ]
    batch = RoundBatch.deviation_grid(auction_round, grid)
    outcomes = _fresh_mechanism(mechanism_factory, cache).probe_rounds(batch)
    violations = []
    for (client_id, lowered_bid), outcome in zip(grid, outcomes):
        if client_id not in outcome.selected:
            violations.append(
                f"client {client_id} won at bid "
                f"{auction_round.bid_of(client_id).cost:.6g} but lost at "
                f"lower bid {lowered_bid:.6g}"
            )
    return violations
