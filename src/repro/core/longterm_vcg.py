"""LT-VCG: the Long-Term online VCG auction mechanism.

This module assembles the paper's contribution out of the three ingredients
built in this package:

1. a :class:`~repro.core.lyapunov.DriftPlusPenaltyController` converting the
   long-term average-budget constraint into time-varying auction weights
   ``(V, V + Q(t))``,
2. a :class:`~repro.core.sustainability.ParticipationTracker` whose queue
   backlogs enter the selection scores as bid-independent offsets, keeping
   every client's long-term participation rate at its target, and
3. a per-round :class:`~repro.core.vcg.SingleRoundVCGAuction` with exact or
   greedy winner determination and the matching truthful payment rule.

Each round the mechanism maximises

    ``sum_{i in S} [ V * v_i(t) + Z_i(t) - (V + Q(t)) * b_i(t) ]``

subject to the per-round constraints, pays winners their critical bids, and
then feeds realised payments and selections back into the queues.  The
allocation is an affine maximizer in the bids with bid-independent offsets,
so the mechanism is dominant-strategy truthful and individually rational in
*every* round, while the queues guarantee the long-term budget and
participation constraints up to the standard ``[O(1/V), O(V)]`` Lyapunov
trade-off.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro import telemetry
from repro.core.bids import AuctionRound, RoundBatch, RoundOutcome
from repro.core.lyapunov import DriftPlusPenaltyController
from repro.core.mechanism import Mechanism
from repro.core.sustainability import ParticipationTracker
from repro.core.vcg import SingleRoundVCGAuction
from repro.core.winner_determination import SolveCache
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["LongTermVCGConfig", "LongTermVCGMechanism"]


@dataclass(frozen=True)
class LongTermVCGConfig:
    """Configuration of the LT-VCG mechanism.

    Attributes
    ----------
    v:
        Lyapunov trade-off parameter ``V > 0``.
    budget_per_round:
        Long-term average payment budget ``B`` per round.
    max_winners:
        Per-round cardinality cap, or ``None`` for unlimited.
    wd_method:
        Winner-determination method: ``"exact"`` (Clarke payments, exactly
        truthful) or ``"greedy"`` (critical-value payments, scalable).
    participation_targets:
        Optional long-term selection-rate target per client id; enables the
        sustainability queues.
    sustainability_weight:
        Scale of the queue-backlog score offsets (0 disables, the E10
        ablation).
    sustainability_max_offset:
        Optional cap on the offsets.
    demands / capacity:
        Optional per-client resource demands and per-round knapsack capacity.
    reserve_price:
        Optional per-client payment cap (see
        :class:`repro.core.vcg.SingleRoundVCGAuction`).
    """

    v: float = 10.0
    budget_per_round: float = 1.0
    max_winners: int | None = None
    wd_method: str = "exact"
    participation_targets: Mapping[int, float] | None = None
    sustainability_weight: float = 1.0
    sustainability_max_offset: float | None = None
    demands: Mapping[int, float] | None = None
    capacity: float | None = None
    reserve_price: float | None = None

    def __post_init__(self) -> None:
        check_positive("v", self.v)
        check_positive("budget_per_round", self.budget_per_round)
        if self.max_winners is not None and self.max_winners <= 0:
            raise ValueError(f"max_winners must be > 0, got {self.max_winners}")
        check_non_negative("sustainability_weight", self.sustainability_weight)

    def fingerprint(self) -> str:
        """Stable digest of every decision-relevant parameter.

        Snapshots carry this so a restore into a *differently configured*
        mechanism (different budget, V, winner cap, payment rule ...) fails
        loudly instead of resuming queues whose semantics no longer match.
        """
        payload = {
            "v": self.v,
            "budget_per_round": self.budget_per_round,
            "max_winners": self.max_winners,
            "wd_method": self.wd_method,
            "participation_targets": (
                {str(k): float(v) for k, v in self.participation_targets.items()}
                if self.participation_targets
                else None
            ),
            "sustainability_weight": self.sustainability_weight,
            "sustainability_max_offset": self.sustainability_max_offset,
            "demands": (
                {str(k): float(v) for k, v in self.demands.items()}
                if self.demands
                else None
            ),
            "capacity": self.capacity,
            "reserve_price": self.reserve_price,
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        )
        return digest.hexdigest()[:16]


class LongTermVCGMechanism(Mechanism):
    """The paper's mechanism: online VCG with Lyapunov long-term control."""

    name = "lt-vcg"

    def __init__(self, config: LongTermVCGConfig) -> None:
        self.config = config
        self.controller = DriftPlusPenaltyController(
            v=config.v, budget_per_round=config.budget_per_round
        )
        # Shared across the per-round auctions this mechanism builds: when
        # the controller's queue state (and hence the scores) repeats, the
        # same winner-determination instance is never solved twice.
        self.solve_cache = SolveCache()
        self.participation: ParticipationTracker | None = None
        if config.participation_targets:
            self.participation = ParticipationTracker(
                config.participation_targets,
                weight=config.sustainability_weight,
                max_offset=config.sustainability_max_offset,
            )
            self.participation.check_feasibility(config.max_winners)

    @property
    def budget_backlog(self) -> float:
        """Current budget virtual-queue backlog ``Q(t)``."""
        return self.controller.queue.backlog

    def build_auction(self, auction_round: AuctionRound) -> SingleRoundVCGAuction:
        """Instantiate this round's weighted VCG auction from queue state."""
        return self._auction_for(auction_round.client_ids)

    def _auction_for(self, client_ids: tuple[int, ...]) -> SingleRoundVCGAuction:
        offsets = None
        if self.participation is not None:
            offsets = self.participation.offsets(client_ids)
        return SingleRoundVCGAuction(
            value_weight=self.controller.value_weight,
            cost_weight=self.controller.cost_weight,
            offsets=offsets,
            max_winners=self.config.max_winners,
            demands=self.config.demands,
            capacity=self.config.capacity,
            wd_method=self.config.wd_method,
            reserve_price=self.config.reserve_price,
            solve_cache=self.solve_cache,
        )

    def run_round(self, auction_round: AuctionRound) -> RoundOutcome:
        auction = self.build_auction(auction_round)
        result = auction.run(auction_round)

        diagnostics = {
            "budget_backlog": self.controller.queue.backlog,
            "cost_weight": self.controller.cost_weight,
            "objective": result.objective,
            "declared_welfare": result.declared_welfare,
            "total_payment": result.total_payment,
        }
        if self.participation is not None:
            diagnostics["max_participation_backlog"] = self.participation.max_backlog()

        # Feedback: queues observe this round *after* the decision, so the
        # decision used Q(t)/Z(t) and the next round will use Q(t+1)/Z(t+1).
        with telemetry.span("queue_update"):
            self.controller.post_round(result.total_payment)
            if self.participation is not None:
                self.participation.observe_round(result.selected)
        telemetry.set_gauge("ltvcg_budget_backlog", self.controller.queue.backlog)

        return RoundOutcome(
            round_index=auction_round.index,
            selected=result.selected,
            payments=dict(result.payments),
            diagnostics=diagnostics,
        )

    def probe_rounds(self, batch: RoundBatch) -> list[RoundOutcome]:
        """Independent counterfactual rounds from the current queue state.

        The queues only enter a round's decision through this round's
        weights/offsets, and feedback is posted *after* the decision — so a
        counterfactual evaluation is one weighted auction from the current
        ``Q(t)``/``Z(t)``, run on the whole batch as stacked solves, with no
        feedback posted.  Outcomes are bit-identical to running each round
        through :meth:`run_round` on a fresh copy of this mechanism (pinned
        property-based in the test suite).
        """
        with telemetry.span("probe_rounds"):
            return self._probe_rounds(batch)

    def _probe_rounds(self, batch: RoundBatch) -> list[RoundOutcome]:
        if self.participation is not None and len(batch):
            # Offsets are the only per-client auction input; the union of the
            # batch's ids covers every round's candidates.
            ids = tuple(int(i) for i in np.unique(batch.client_ids[batch.mask]))
        else:
            ids = ()
        auction = self._auction_for(ids)
        outcomes = []
        for r, result in enumerate(auction.run_batch(batch)):
            diagnostics = {
                "budget_backlog": self.controller.queue.backlog,
                "cost_weight": self.controller.cost_weight,
                "objective": result.objective,
                "declared_welfare": result.declared_welfare,
                "total_payment": result.total_payment,
            }
            if self.participation is not None:
                diagnostics["max_participation_backlog"] = (
                    self.participation.max_backlog()
                )
            outcomes.append(
                RoundOutcome(
                    round_index=batch.index_at(r),
                    selected=result.selected,
                    payments=dict(result.payments),
                    diagnostics=diagnostics,
                )
            )
        return outcomes

    def attach_solve_cache(self, cache: SolveCache) -> None:
        """Share ``cache`` across this mechanism's per-round auctions."""
        self.solve_cache = cache

    def state_dict(self) -> dict:
        """Everything a restarted host needs to resume this mechanism.

        Captures the budget virtual queue (backlog, running aggregates and
        retained trace) and, when enabled, every participation queue —
        the solve cache is a performance artifact and deliberately not
        state.  Tagged with the config :meth:`~LongTermVCGConfig.fingerprint`
        so :meth:`load_state_dict` can refuse a mismatched restore.
        """
        state = {
            "format_version": 1,
            "config_fingerprint": self.config.fingerprint(),
            "budget_queue": self.controller.queue.state_dict(),
        }
        if self.participation is not None:
            state["participation"] = self.participation.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict` (bit-identical).

        Raises
        ------
        ValueError
            If the snapshot was taken under a different
            :class:`LongTermVCGConfig` (fingerprint mismatch) or its shape
            does not match this mechanism (participation state for a
            mechanism without participation targets, or vice versa).
        """
        fingerprint = state.get("config_fingerprint")
        expected = self.config.fingerprint()
        if fingerprint != expected:
            raise ValueError(
                f"LT-VCG state fingerprint {fingerprint!r} does not match "
                f"this mechanism's config ({expected!r}); refusing to resume "
                "queues under different mechanism parameters"
            )
        self.controller.queue.load_state_dict(state["budget_queue"])
        if self.participation is not None:
            if "participation" not in state:
                raise ValueError(
                    "snapshot carries no participation state but this "
                    "mechanism tracks participation targets"
                )
            self.participation.load_state_dict(state["participation"])
        elif "participation" in state:
            raise ValueError(
                "snapshot carries participation state but this mechanism "
                "has no participation targets"
            )

    def reset(self) -> None:
        self.controller.reset()
        # Drop (not just clear) the cache so repetitions are independent and
        # a cache attached via attach_solve_cache is released, not wiped for
        # its other holders.
        self.solve_cache = SolveCache()
        if self.participation is not None:
            self.participation.reset()

    def __repr__(self) -> str:
        return (
            f"LongTermVCGMechanism(v={self.config.v}, "
            f"budget_per_round={self.config.budget_per_round}, "
            f"max_winners={self.config.max_winners}, "
            f"wd_method={self.config.wd_method!r})"
        )
