"""Winner-determination solvers for the per-round selection problem.

Each round the mechanism must choose a subset ``S`` of candidates maximising
an additive score ``sum_{i in S} score_i`` subject to packing constraints:

* a cardinality cap (at most ``max_winners`` clients per round), and/or
* a knapsack capacity (``sum_{i in S} demand_i <= capacity``), modelling a
  per-round resource bound such as uplink bandwidth slots.

The solvers:

=====================  ==========================================  =========
solver                 guarantee                                   scaling
=====================  ==========================================  =========
:func:`solve_top_k`    exact when there is no knapsack constraint  O(n log n)
:func:`solve_brute_force`  exact, any constraints                  O(2^n)
:func:`solve_knapsack_dp`  exact for integer demands; for real
                       demands exact up to the quantisation
                       ``resolution`` (conservatively feasible)    O(n·R·K)
:func:`solve_greedy`   monotone density heuristic                  O(n log n)
:func:`solve_lp_bound` fractional upper bound (analysis only)      LP
=====================  ==========================================  =========

``solve_top_k`` and ``solve_greedy`` run on the problem's cached numpy
arrays (argsort + cumulative feasibility scan), so a 400-candidate solve is
a handful of vector operations rather than a Python loop.  The payment
engine (:mod:`repro.core.payments`) additionally uses
:func:`knapsack_objectives_without` — prefix/suffix DP tables answering all
"best objective without candidate i" queries from two DP passes instead of
one full re-solve per winner.

Exact solvers preserve exact VCG truthfulness; the greedy solver pairs with
critical-value payments (:mod:`repro.core.payments`).  All solvers use the
same deterministic tie-breaking (higher score first, then lower index) so
payment computations that re-solve subproblems are stable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from itertools import combinations

import numpy as np
from scipy.optimize import linprog

from repro import kernels, telemetry

__all__ = [
    "WinnerDeterminationProblem",
    "Allocation",
    "SolveCache",
    "solve",
    "exact_method_for",
    "greedy_order_batch",
    "solve_top_k",
    "solve_top_k_batch",
    "solve_brute_force",
    "solve_knapsack_dp",
    "solve_knapsack_dp_rows",
    "solve_greedy",
    "solve_greedy_batch",
    "solve_lp_bound",
    "knapsack_objectives_without",
]

_BRUTE_FORCE_LIMIT = 22
# Below this many positive-score candidates "exact" dispatch prefers brute
# force over DP; above it, subset enumeration is slower than the DP.  Tuned
# empirically (see benchmarks/test_e9_scalability.py): subset enumeration
# overtakes the vectorised DP already at ~8 positive candidates.
_AUTO_BRUTE_FORCE_LIMIT = 7

_EPS = 1e-12

# Lambda-grid resolution of the prune's companion upper bound; a denser
# grid tightens the bound marginally but each step costs a sort.
_PRUNE_LAMBDA_GRID = 8
# Capacity grid of the prune's core-DP lower bound.  The witness only has
# to be *feasible* (demands re-round up onto the coarse grid, so any
# coarse-feasible set fits the fine grid too); a coarser table shrinks the
# bound's fixed cost ~5x while costing at most a few grid-steps of bound
# tightness.
_PRUNE_CORE_RESOLUTION = 200


@dataclass(frozen=True)
class WinnerDeterminationProblem:
    """One round's selection problem.

    Attributes
    ----------
    scores:
        Per-candidate selection score (may be negative; negative-score
        candidates are never selected because the empty set is feasible).
    demands:
        Per-candidate resource demand, strictly positive; ``None`` when there
        is no knapsack constraint.
    capacity:
        Knapsack capacity; ``None`` when there is no knapsack constraint.
        ``demands`` and ``capacity`` must be both present or both absent.
    max_winners:
        Cardinality cap, or ``None`` for unlimited.

    The tuple fields are the canonical (hashable, comparable) representation;
    :attr:`scores_array` / :attr:`demands_array` cache float64 views for the
    vectorised solvers, and :meth:`without` / :meth:`with_score` derive
    subproblems through those arrays without re-running validation.
    """

    scores: tuple[float, ...]
    demands: tuple[float, ...] | None = None
    capacity: float | None = None
    max_winners: int | None = None

    def __post_init__(self) -> None:
        if (self.demands is None) != (self.capacity is None):
            raise ValueError("demands and capacity must be both set or both None")
        scores = np.asarray(self.scores, dtype=float)
        if self.demands is not None:
            demands = np.asarray(self.demands, dtype=float)
            if demands.shape != scores.shape:
                raise ValueError(
                    f"{len(self.demands)} demands for {len(self.scores)} scores"
                )
            if demands.size and not (demands > 0).all():
                raise ValueError("all demands must be > 0")
            if self.capacity is not None and self.capacity < 0:
                raise ValueError(f"capacity must be >= 0, got {self.capacity}")
            object.__setattr__(self, "_demands_array", demands)
        if self.max_winners is not None and self.max_winners < 0:
            raise ValueError(f"max_winners must be >= 0, got {self.max_winners}")
        if scores.size and not np.isfinite(scores).all():
            raise ValueError("scores must be finite")
        object.__setattr__(self, "_scores_array", scores)

    @classmethod
    def _unchecked(
        cls,
        scores: np.ndarray,
        demands: np.ndarray | None,
        capacity: float | None,
        max_winners: int | None,
    ) -> "WinnerDeterminationProblem":
        """Build from already-validated arrays, skipping ``__post_init__``."""
        obj = object.__new__(cls)
        object.__setattr__(obj, "scores", tuple(scores.tolist()))
        object.__setattr__(obj, "demands", None if demands is None else tuple(demands.tolist()))
        object.__setattr__(obj, "capacity", capacity)
        object.__setattr__(obj, "max_winners", max_winners)
        object.__setattr__(obj, "_scores_array", scores)
        if demands is not None:
            object.__setattr__(obj, "_demands_array", demands)
        return obj

    @property
    def scores_array(self) -> np.ndarray:
        """Cached float64 view of :attr:`scores` (do not mutate)."""
        return self._scores_array  # type: ignore[attr-defined]

    @property
    def demands_array(self) -> np.ndarray | None:
        """Cached float64 view of :attr:`demands`, or ``None`` (do not mutate)."""
        if self.demands is None:
            return None
        return self._demands_array  # type: ignore[attr-defined]

    @property
    def size(self) -> int:
        """Number of candidates."""
        return len(self.scores)

    def without(self, index: int) -> "WinnerDeterminationProblem":
        """Return the subproblem with candidate ``index`` removed.

        Remaining candidates keep their relative order; the caller is
        responsible for index translation (indices ``>= index`` shift down
        by one).
        """
        if not 0 <= index < self.size:
            raise IndexError(f"candidate index {index} out of range")
        return self._unchecked(
            scores=np.delete(self.scores_array, index),
            demands=None if self.demands is None else np.delete(self.demands_array, index),
            capacity=self.capacity,
            max_winners=self.max_winners,
        )

    def with_score(self, index: int, score: float) -> "WinnerDeterminationProblem":
        """Return a copy with one candidate's score replaced."""
        if not 0 <= index < self.size:
            raise IndexError(f"candidate index {index} out of range")
        score = float(score)
        if not np.isfinite(score):
            raise ValueError("scores must be finite")
        scores = self.scores_array.copy()
        scores[index] = score
        return self._unchecked(
            scores=scores,
            demands=self.demands_array,
            capacity=self.capacity,
            max_winners=self.max_winners,
        )

    def is_feasible(self, selected: tuple[int, ...]) -> bool:
        """Check that a candidate index set satisfies all constraints."""
        if len(set(selected)) != len(selected):
            return False
        if any(not 0 <= i < self.size for i in selected):
            return False
        if self.max_winners is not None and len(selected) > self.max_winners:
            return False
        if self.capacity is not None:
            demands = self.demands or ()
            if sum(demands[i] for i in selected) > self.capacity + _EPS:
                return False
        return True

    def objective(self, selected: tuple[int, ...]) -> float:
        """Total score of a candidate index set."""
        return float(sum(self.scores[i] for i in selected))


@dataclass(frozen=True)
class Allocation:
    """A solver's answer: selected candidate indices and their total score."""

    selected: tuple[int, ...]
    objective: float

    def __post_init__(self) -> None:
        if list(self.selected) != sorted(set(self.selected)):
            raise ValueError("selected indices must be sorted and unique")


def _empty() -> Allocation:
    return Allocation(selected=(), objective=0.0)


def _finish(problem: WinnerDeterminationProblem, selected: list[int]) -> Allocation:
    selected_sorted = tuple(sorted(int(i) for i in selected))
    return Allocation(selected=selected_sorted, objective=problem.objective(selected_sorted))


def _positive_candidates(problem: WinnerDeterminationProblem) -> np.ndarray:
    return np.flatnonzero(problem.scores_array > 0)


def greedy_order(problem: WinnerDeterminationProblem) -> np.ndarray:
    """Positive-score candidates in greedy priority order.

    Priority is ``(-density, -score, index)`` where density is
    ``score / demand`` under a knapsack constraint and the plain score
    otherwise — identical to the order :func:`solve_greedy` processes
    candidates in.  Exposed for the analytic payment engine, which replays
    this order instead of bisecting.
    """
    positive = _positive_candidates(problem)
    if positive.size == 0:
        return positive
    scores = problem.scores_array[positive]
    demands = problem.demands_array
    if demands is not None:
        density = scores / demands[positive]
    else:
        density = scores
    # lexsort: last key is the primary one; ascending sort of negated keys
    # yields descending density, then descending score, then ascending index.
    return positive[np.lexsort((positive, -scores, -density))]


def solve_top_k(problem: WinnerDeterminationProblem) -> Allocation:
    """Exact solver when there is no knapsack constraint.

    Picks the positive-score candidates with the highest scores, up to
    ``max_winners``.  Raises if a knapsack constraint is present.
    """
    if problem.capacity is not None:
        raise ValueError("solve_top_k cannot handle a knapsack constraint")
    scores = problem.scores_array
    positive = np.flatnonzero(scores > 0)
    if positive.size == 0:
        return _empty()
    # Stable argsort on the negated scores preserves ascending index among
    # ties — the same (-score, index) order the reference implementation used.
    order = positive[np.argsort(-scores[positive], kind="stable")]
    if problem.max_winners is not None:
        order = order[: problem.max_winners]
    selected = np.sort(order)
    return Allocation(
        selected=tuple(int(i) for i in selected),
        objective=float(scores[selected].sum()),
    )


def solve_top_k_batch(
    scores: np.ndarray, max_winners: int | None = None
) -> list[Allocation]:
    """Row-wise :func:`solve_top_k` over an ``(R, N)`` score matrix.

    Each row is an independent cardinality-capped instance; entries that are
    not candidates (padding, masked-out bidders) must be non-positive — they
    are never selected, exactly like non-positive scores in the scalar
    solver.  One stable argsort over the whole matrix replaces ``R``
    per-round solves; results are bit-identical to the scalar path
    (pinned property-based in the test suite).
    """
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 2:
        raise ValueError(f"scores must be 2-D, got shape {scores.shape}")
    num_rounds = scores.shape[0]
    if scores.size == 0:
        return [_empty() for _ in range(num_rounds)]
    # Stable descending sort puts positives first, ascending index on ties —
    # the positive prefix matches solve_top_k's order exactly.
    order = np.argsort(-scores, axis=1, kind="stable")
    take = (scores > 0).sum(axis=1)
    if max_winners is not None:
        take = np.minimum(take, max_winners)
    # Group rows by winner count so index sorting and the objective sums run
    # as one matrix op per distinct k (deviation grids share a single k).
    allocations: list[Allocation] = [_empty()] * num_rounds
    for k in np.unique(take).tolist():
        if k == 0:
            continue
        rows = np.flatnonzero(take == k)
        selected = np.sort(order[rows, :k], axis=1)
        objectives = np.take_along_axis(scores[rows], selected, axis=1).sum(axis=1)
        for i, r in enumerate(rows.tolist()):
            allocations[r] = Allocation(
                selected=tuple(selected[i].tolist()),
                objective=float(objectives[i]),
            )
    return allocations


def greedy_order_batch(
    scores: np.ndarray, demands: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise :func:`greedy_order`: ``(order, positive counts)``.

    ``order[r, :counts[r]]`` lists row ``r``'s positive-score candidates in
    greedy priority order; later columns hold the non-candidates in
    unspecified order.  One lexsort covers the whole batch; callers that
    need both the allocations and the critical scores
    (:meth:`~repro.core.vcg.SingleRoundVCGAuction.run_batch`) compute the
    order once and pass it to both :func:`solve_greedy_batch` and
    :func:`~repro.core.payments.greedy_critical_scores_batch`.
    """
    positive = scores > 0
    if demands is not None:
        safe = np.where(demands > 0, demands, 1.0)
        density = np.where(positive, scores / safe, -np.inf)
    else:
        density = np.where(positive, scores, -np.inf)
    key_scores = np.where(positive, scores, -np.inf)
    columns = np.broadcast_to(np.arange(scores.shape[1]), scores.shape)
    # Same key tuple as greedy_order: density desc, score desc, index asc.
    # Non-candidates carry -inf keys, so they sort strictly after every
    # positive-score candidate.
    order = np.lexsort((columns, -key_scores, -density), axis=-1)
    return order, positive.sum(axis=1)


def solve_greedy_batch(
    scores: np.ndarray,
    demands: np.ndarray | None = None,
    capacity: float | None = None,
    max_winners: int | None = None,
    *,
    order: np.ndarray | None = None,
    counts: np.ndarray | None = None,
) -> list[Allocation]:
    """Row-wise :func:`solve_greedy` over ``(R, N)`` score/demand matrices.

    Non-candidate entries must have non-positive scores (their demands are
    ignored).  The priority sort and the cumulative-demand feasibility scan
    run as whole-matrix operations; the Python tail loop (greedy skip
    semantics after the first over-capacity candidate) runs only for rows
    that need it, exactly as in the scalar solver.  Bit-identical to the
    scalar path (pinned property-based in the test suite).

    ``order``/``counts`` accept a precomputed :func:`greedy_order_batch`
    result so callers that also need critical scores sort only once.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 2:
        raise ValueError(f"scores must be 2-D, got shape {scores.shape}")
    if (demands is None) != (capacity is None):
        raise ValueError("demands and capacity must be both set or both None")
    num_rounds = scores.shape[0]
    if scores.size == 0:
        return [_empty() for _ in range(num_rounds)]
    if demands is not None:
        demands = np.asarray(demands, dtype=float)
        if demands.shape != scores.shape:
            raise ValueError(
                f"demands shape {demands.shape} != scores shape {scores.shape}"
            )
    if order is None or counts is None:
        order, counts = greedy_order_batch(scores, demands)

    def finish(r: int, selected: list[int]) -> Allocation:
        chosen = tuple(sorted(int(i) for i in selected))
        return Allocation(
            selected=chosen,
            objective=float(sum(scores[r, i] for i in chosen)),
        )

    allocations = []
    if demands is None:
        for r in range(num_rounds):
            npos = int(counts[r])
            k_cap = npos if max_winners is None else min(npos, max_winners)
            allocations.append(finish(r, order[r, :k_cap].tolist()))
        return allocations

    ordered_demands = np.take_along_axis(demands, order, axis=1)
    cumulative = np.cumsum(ordered_demands, axis=1)
    overflowing = cumulative > capacity + _EPS
    for r in range(num_rounds):
        npos = int(counts[r])
        k_cap = npos if max_winners is None else min(npos, max_winners)
        overflow = np.flatnonzero(overflowing[r, :npos])
        prefix_len = int(overflow[0]) if overflow.size else npos
        prefix_len = min(prefix_len, k_cap)
        selected = order[r, :prefix_len].tolist()
        if prefix_len < npos and prefix_len < k_cap:
            # Skip semantics: the first over-budget candidate is skipped,
            # later (smaller) candidates may still fit.
            remaining = capacity - (cumulative[r, prefix_len - 1] if prefix_len else 0.0)
            count = prefix_len
            for pos in range(prefix_len, npos):
                if count >= k_cap:
                    break
                demand = ordered_demands[r, pos]
                if demand > remaining + _EPS:
                    continue
                remaining -= demand
                selected.append(int(order[r, pos]))
                count += 1
        allocations.append(finish(r, selected))
    return allocations


def solve_brute_force(problem: WinnerDeterminationProblem) -> Allocation:
    """Exhaustive exact solver; refuses instances above 22 candidates.

    Only positive-score candidates are enumerated (adding a non-positive
    score candidate never improves a packing-constrained objective).
    """
    candidates = [i for i in range(problem.size) if problem.scores[i] > 0]
    if len(candidates) > _BRUTE_FORCE_LIMIT:
        raise ValueError(
            f"brute force limited to {_BRUTE_FORCE_LIMIT} positive-score "
            f"candidates, got {len(candidates)}; use wd_method=\"dp\" "
            f"(solve_knapsack_dp) for instances this large"
        )
    max_size = len(candidates)
    if problem.max_winners is not None:
        max_size = min(max_size, problem.max_winners)
    best = _empty()
    for size in range(1, max_size + 1):
        for subset in combinations(candidates, size):
            if not problem.is_feasible(subset):
                continue
            objective = problem.objective(subset)
            if objective > best.objective + _EPS:
                best = Allocation(selected=tuple(subset), objective=objective)
    return best


def _quantised_demands(
    problem: WinnerDeterminationProblem, resolution: int
) -> tuple[list[int], np.ndarray]:
    """Positive-score candidates that fit the capacity, plus integer demands.

    Demands are quantised to a grid of ``resolution`` units spanning the
    capacity, rounding *up* so any allocation on the grid is feasible for the
    original real-valued constraint.
    """
    demands = problem.demands_array
    assert demands is not None and problem.capacity is not None
    positive = _positive_candidates(problem)
    if positive.size == 0 or problem.capacity <= 0:
        return [], np.empty(0, dtype=np.int64)
    scale = resolution / problem.capacity
    units = np.ceil(demands[positive] * scale - 1e-9).astype(np.int64)
    units = np.maximum(units, 1)
    keep = units <= resolution
    return [int(i) for i in positive[keep]], units[keep]


class _PruneState:
    """Memoised score-bound state of one quantised knapsack instance.

    Winner determination and the Clarke payment pass prune the *same*
    instance within one round; everything here is removal-independent, so
    it is computed once per ``(problem, resolution)`` and both consumers
    derive their keep-masks from it (the payment pass only adds its
    removal slack, see :func:`_witness_slack`).

    ``companion is None`` means the bounding step was skipped (no
    candidates, or the core below would have been the whole instance) and
    every candidate is kept.
    """

    __slots__ = ("candidates", "units", "scores", "k_cap", "witness", "lower", "companion")

    def __init__(
        self,
        candidates: list[int],
        units: np.ndarray,
        scores: np.ndarray,
        k_cap: int,
    ) -> None:
        self.candidates = candidates
        self.units = units
        self.scores = scores
        self.k_cap = k_cap
        self.witness: list[int] = []
        self.lower = 0.0
        self.companion: np.ndarray | None = None


_PRUNE_MEMO_SIZE = 128


def _prune_state(
    problem: WinnerDeterminationProblem, resolution: int
) -> _PruneState:
    """The (memoised) prune state of ``problem`` at ``resolution``.

    The memo is per-thread (campaign drains solve concurrently under the
    thread execution backend) with FIFO eviction; state objects are
    treated as immutable by every consumer.

    A candidate is dropped only when an upper bound on the best solution
    containing it — its own score plus a Lagrangian fractional-knapsack
    companion bound — falls short of a core-DP lower bound, so dropped
    candidates are provably outside every optimal solution (up to exact
    score ties) and the pruned DP returns the same objective.

    The cardinality shrink is independent of the bound: no feasible set
    can hold more items than the largest ascending-units prefix that fits,
    so the DP's count axis never needs to exceed that prefix length.
    """
    memo = getattr(_LOCAL, "prune_memo", None)
    if memo is None:
        memo = _LOCAL.prune_memo = {}
    key = (problem, resolution)
    state = memo.get(key)
    if state is not None:
        return state

    candidates, units = _quantised_demands(problem, resolution)
    int_capacity = resolution
    scores = (
        problem.scores_array[candidates]
        if candidates
        else np.empty(0, dtype=float)
    )
    k_cap = len(candidates)
    if problem.max_winners is not None:
        k_cap = min(k_cap, problem.max_winners)
    if candidates and k_cap > 0:
        ascending = np.sort(units)
        k_fit = int(
            np.searchsorted(np.cumsum(ascending), int_capacity, side="right")
        )
        k_cap = min(k_cap, k_fit)
    state = _PruneState(candidates, units, scores, k_cap)
    n = len(candidates)
    # Below ~2K candidates the core (below) would be the whole instance;
    # the full DP is already that small, so bounding buys nothing.
    if k_cap > 0 and n > 2 * k_cap:
        # Lower bound: exact DP over the "core" — the union of the top 2K
        # candidates by density and by score.  For packing instances the
        # optimum almost always lives inside the core, making the bound
        # tight; either way the backtracked witness is feasible, hence a
        # valid lower bound.
        density_order = np.argpartition(-(scores / units), 2 * k_cap - 1)[: 2 * k_cap]
        score_order = np.argpartition(-scores, 2 * k_cap - 1)[: 2 * k_cap]
        core = np.union1d(density_order, score_order)
        core_list = [int(j) for j in core]
        core_units = units[core]
        # Coarse grid for the bound only (see _PRUNE_CORE_RESOLUTION):
        # rounding the already-rounded-up units up again keeps any witness
        # feasible at the full resolution, and the witness is scored with
        # the true scores, so ``lower`` stays a valid lower bound.
        coarse = min(int_capacity, _PRUNE_CORE_RESOLUTION)
        if coarse < int_capacity:
            core_units = np.maximum(
                np.ceil(core_units * (coarse / int_capacity) - 1e-9).astype(
                    np.int64
                ),
                1,
            )
        dp = np.zeros((coarse + 1, k_cap + 1))
        cells = dp.size
        take_packed = np.zeros((len(core_list), (cells + 7) // 8), dtype=np.uint8)
        kernels.kernel("knapsack_dp_fill")(
            scores[core], core_units, coarse, k_cap, dp, take_packed
        )
        witness = _backtrack(take_packed, core_list, core_units, coarse, k_cap)
        state.witness = witness
        state.lower = float(scores[witness].sum()) if witness else 0.0
        state.companion = _companion_bounds(scores, units, int_capacity, k_cap)

    if len(memo) >= _PRUNE_MEMO_SIZE:
        memo.pop(next(iter(memo)))
    memo[key] = state
    return state


def _companion_bounds(
    scores: np.ndarray, units: np.ndarray, int_capacity: int, k_cap: int
) -> np.ndarray:
    """Upper bound per candidate on the best *companion* set it can join.

    The bound covers the remaining capacity ``c_i = R - u_i`` and at most
    K-1 further items.  For any lambda >= 0 a companion set S satisfies
    ``s(S) <= sum_{j in S}(s_j - lambda)_+ + lambda*(K-1)
           <= FracKnap_lambda(c_i) + lambda*(K-1)``
    where FracKnap_lambda is the fractional knapsack optimum of the
    lambda-reduced scores — so the elementwise min over a small lambda
    grid (plus the capacity-free top-(K-1) sum) is still an upper bound,
    and ``scores + companion`` bounds the best solution containing each
    candidate.  Every candidate of every optimal solution survives a test
    against any valid lower bound, so the pruned DP's objective is exact.
    """
    c_rem = int_capacity - units
    top_scores = np.sort(scores)[::-1]
    companion = np.full(
        scores.shape[0],
        float(top_scores[: k_cap - 1].sum()) if k_cap > 1 else 0.0,
    )
    score_max = float(top_scores[0])
    for step in range(_PRUNE_LAMBDA_GRID + 1):
        lam = score_max * step / _PRUNE_LAMBDA_GRID
        reduced = scores - lam
        positive = reduced > 0
        if not positive.any():
            companion = np.minimum(companion, lam * (k_cap - 1))
            continue
        r_scores = reduced[positive]
        r_units = units[positive]
        order = np.argsort(-(r_scores / r_units))
        r_scores = r_scores[order]
        r_units = r_units[order]
        cumw = np.cumsum(r_units)
        cums = np.cumsum(r_scores)
        q = np.searchsorted(cumw, c_rem, side="right")
        prev = np.maximum(q - 1, 0)
        base = np.where(q > 0, cums[prev], 0.0)
        used = np.where(q > 0, cumw[prev], 0)
        nxt = np.minimum(q, r_scores.shape[0] - 1)
        frac = np.where(
            q < r_scores.shape[0],
            base + (c_rem - used) * (r_scores[nxt] / r_units[nxt]),
            base,
        )
        companion = np.minimum(companion, lam * (k_cap - 1) + frac)
    return companion


def _witness_slack(
    state: _PruneState, queried: list[int], int_capacity: int
) -> float:
    """Threshold slack so candidates of every "without i" optimum survive.

    The payment engine queries the objective with each winner removed.
    Removing witness member ``i`` costs at most ``score_i`` minus the best
    single replacement that fits the freed capacity, so the worst such
    drop over the queried positions bounds how far below ``state.lower``
    any "without i" optimum can fall — far tighter than the naive ``max
    queried score`` when a near-equal substitute exists.
    """
    witness = state.witness
    if not witness or not queried:
        return 0.0
    scores, units = state.scores, state.units
    n = scores.shape[0]
    witness_set = set(witness)
    spare = int_capacity - int(units[witness].sum())
    in_witness = np.zeros(n, dtype=bool)
    in_witness[witness] = True
    outside = np.flatnonzero(~in_witness)
    out_order = outside[np.argsort(units[outside], kind="stable")]
    out_units = units[out_order]
    out_best = np.maximum.accumulate(scores[out_order]) if out_order.size else None
    slack = 0.0
    for i in queried:
        if i not in witness_set:
            continue
        replacement = 0.0
        if out_best is not None:
            budget = spare + int(units[i])
            fit = int(np.searchsorted(out_units, budget, side="right"))
            if fit > 0:
                replacement = max(float(out_best[fit - 1]), 0.0)
        slack = max(slack, float(scores[i]) - replacement)
    return slack


def _prune_mask(
    state: _PruneState, slack: float, queried: list[int] | None = None
) -> np.ndarray | None:
    """Keep-mask from the memoised bounds, or ``None`` to keep everything.

    A candidate survives when ``score + companion >= lower - slack`` (up
    to a relative tolerance, so exact ties never flip).  ``queried``
    positions are always kept.
    """
    if state.companion is None:
        return None
    threshold = state.lower - slack
    tol = 1e-9 * max(1.0, abs(threshold))
    if threshold <= tol:
        return None
    mask = state.scores + state.companion >= threshold - tol
    if queried:
        mask[queried] = True
    if mask.all():
        return None
    return mask


def _prepare_dp_instance(
    problem: WinnerDeterminationProblem, resolution: int, prune: bool
) -> tuple[list[int], np.ndarray, np.ndarray, int]:
    """Quantise (and optionally prune) one instance for the DP kernels.

    Returns ``(candidates, units, scores, k_cap)``; an empty candidate list
    or ``k_cap == 0`` means the optimal allocation is empty.  Shared by the
    scalar and stacked solvers so both make identical pruning decisions —
    their DP tables, and therefore their tie-broken selections, match
    bit-for-bit.
    """
    if not prune:
        candidates, int_demands = _quantised_demands(problem, resolution)
        if not candidates:
            return candidates, int_demands, np.empty(0, dtype=float), 0
        k_cap = len(candidates)
        if problem.max_winners is not None:
            k_cap = min(k_cap, problem.max_winners)
        return candidates, int_demands, problem.scores_array[candidates], k_cap
    state = _prune_state(problem, resolution)
    candidates, int_demands, inst_scores, k_cap = (
        state.candidates, state.units, state.scores, state.k_cap,
    )
    mask = _prune_mask(state, 0.0)
    if mask is not None:
        telemetry.add_counter(
            "knapsack_prune_hits", float(len(candidates) - int(mask.sum()))
        )
        candidates = [i for i, kept in zip(candidates, mask) if kept]
        int_demands = int_demands[mask]
        inst_scores = inst_scores[mask]
        k_cap = min(k_cap, len(candidates))
    telemetry.set_gauge("knapsack_dp_cells", float((resolution + 1) * (k_cap + 1)))
    return candidates, int_demands, inst_scores, k_cap


class _DPWorkspace:
    """Reusable DP scratch: table, shift buffer, and bit-packed take rows.

    Solving a batch of similar rounds re-uses one allocation instead of
    three fresh ``(R+1, K+1)`` arrays per solve; buffers are re-zeroed on
    every acquisition.  One workspace per thread (campaign drains solve
    concurrently under the thread execution backend).
    """

    def __init__(self) -> None:
        self._dp: np.ndarray | None = None
        self._scratch: np.ndarray | None = None
        self._take: np.ndarray | None = None

    def tables(
        self, num_items: int, int_capacity: int, k_cap: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        shape = (int_capacity + 1, k_cap + 1)
        if self._dp is None or self._dp.shape != shape:
            self._dp = np.empty(shape, dtype=float)
            self._scratch = np.empty(shape, dtype=float)
        nbytes = (shape[0] * shape[1] + 7) // 8
        if (
            self._take is None
            or self._take.shape[0] < num_items
            or self._take.shape[1] != nbytes
        ):
            self._take = np.empty((max(num_items, 64), nbytes), dtype=np.uint8)
        dp = self._dp
        dp.fill(0.0)
        take_packed = self._take[:num_items, :nbytes]
        take_packed.fill(0)
        return dp, take_packed, self._scratch


_LOCAL = threading.local()


def _workspace() -> _DPWorkspace:
    workspace = getattr(_LOCAL, "workspace", None)
    if workspace is None:
        workspace = _LOCAL.workspace = _DPWorkspace()
    return workspace


def _backtrack(
    take_packed: np.ndarray,
    candidates: list[int],
    units: np.ndarray,
    int_capacity: int,
    k_cap: int,
) -> list[int]:
    """Replay the take bits: scan items in reverse; the first recorded
    improvement at the current cell is the last one applied, i.e. the one
    the final value used."""
    c, k = int_capacity, k_cap
    width = k_cap + 1
    selected: list[int] = []
    for item_pos in range(len(candidates) - 1, -1, -1):
        bit = c * width + k
        if (take_packed[item_pos, bit >> 3] >> (7 - (bit & 7))) & 1:
            selected.append(candidates[item_pos])
            c -= int(units[item_pos])
            k -= 1
    return selected


def solve_knapsack_dp(
    problem: WinnerDeterminationProblem,
    *,
    resolution: int = 1000,
    prune: bool = True,
) -> Allocation:
    """Dynamic-programming knapsack solver with a cardinality dimension.

    Demands are quantised to a grid of ``resolution`` units spanning the
    capacity, rounding demands *up* so the returned allocation is always
    feasible for the original real-valued constraint.  When demands and
    capacity are integers and ``resolution >= capacity`` the solution is
    exact.

    ``prune=True`` (the default) first drops candidates whose score upper
    bound (a Lagrangian fractional-knapsack companion bound) cannot reach
    a core-DP lower bound (see :func:`_prune_state`) — the objective is
    unchanged (the selected set can differ only between exactly-tied
    optima), while the DP fill runs over the handful of survivors instead
    of every candidate.  ``prune=False`` keeps the full instance and
    serves as the oracle the pruned path is pinned against.

    The table fill itself dispatches through the compute-backend seam
    (:func:`repro.kernels.kernel`, entry ``"knapsack_dp_fill"``); the
    backtracking table is bit-packed — one bit per (item, capacity, count)
    cell instead of one byte, an 8x memory cut (the dense bool array was
    ~160 MB at n=400 with an uncapped winner count).
    """
    if problem.capacity is None:
        return solve_top_k(problem)
    if resolution <= 0:
        raise ValueError(f"resolution must be > 0, got {resolution}")
    candidates, int_demands, inst_scores, k_cap = _prepare_dp_instance(
        problem, resolution, prune
    )
    if not candidates or k_cap == 0:
        return _empty()
    int_capacity = resolution

    dp, take_packed, scratch = _workspace().tables(
        len(candidates), int_capacity, k_cap
    )
    kernels.kernel("knapsack_dp_fill")(
        inst_scores, int_demands, int_capacity, k_cap, dp, take_packed, scratch
    )
    selected = _backtrack(take_packed, candidates, int_demands, int_capacity, k_cap)
    return _finish(problem, selected)


# Cap on the stacked DP tensor size per kernel call; groups larger than
# this are chunked (the tables dominate: ~8 MB per row at the default
# resolution with K=10).
_BATCH_TABLE_BYTES = 32 * 1024 * 1024


def solve_knapsack_dp_rows(
    problems: list[WinnerDeterminationProblem],
    *,
    resolution: int = 1000,
    prune: bool = True,
) -> list[Allocation]:
    """Stacked :func:`solve_knapsack_dp` over many independent instances.

    Each instance is quantised and pruned through the same preparation as
    the scalar solver, then instances are grouped by effective cardinality
    cap and solved as one ``(G, R+1, K+1)`` DP tensor per group through the
    ``"knapsack_dp_fill_batch"`` kernel.  Short rows are padded with items
    of weight ``resolution + 1`` (they can never fit, so they never improve
    a cell); per row the fill is the elementwise image of the scalar fill,
    so every returned allocation is bit-identical to the scalar solve of
    that instance.  Capacity-free instances route to :func:`solve_top_k`.
    """
    if resolution <= 0:
        raise ValueError(f"resolution must be > 0, got {resolution}")
    problems = list(problems)
    results: list[Allocation | None] = [None] * len(problems)
    groups: dict[int, list[tuple[int, list[int], np.ndarray, np.ndarray]]] = {}
    for idx, problem in enumerate(problems):
        if problem.capacity is None:
            results[idx] = solve_top_k(problem)
            continue
        candidates, units, inst_scores, k_cap = _prepare_dp_instance(
            problem, resolution, prune
        )
        if not candidates or k_cap == 0:
            results[idx] = _empty()
            continue
        groups.setdefault(k_cap, []).append((idx, candidates, units, inst_scores))

    int_capacity = resolution
    fill_batch = kernels.kernel("knapsack_dp_fill_batch")
    for k_cap, entries in groups.items():
        table_bytes = (int_capacity + 1) * (k_cap + 1) * 8
        chunk = max(1, _BATCH_TABLE_BYTES // table_bytes)
        for start in range(0, len(entries), chunk):
            block = entries[start : start + chunk]
            width_max = max(len(entry[1]) for entry in block)
            scores_mat = np.zeros((len(block), width_max), dtype=float)
            weights_mat = np.full(
                (len(block), width_max), int_capacity + 1, dtype=np.int64
            )
            for row, (_, candidates, units, inst_scores) in enumerate(block):
                scores_mat[row, : len(candidates)] = inst_scores
                weights_mat[row, : len(candidates)] = units
            _, take_packed = fill_batch(scores_mat, weights_mat, int_capacity, k_cap)
            for row, (idx, candidates, units, _) in enumerate(block):
                selected = _backtrack(
                    take_packed[row], candidates, units, int_capacity, k_cap
                )
                results[idx] = _finish(problems[idx], selected)
    return results  # type: ignore[return-value]


def _forward_dp_tables(
    scores: np.ndarray,
    int_demands: np.ndarray,
    int_capacity: int,
    k_cap: int,
    snapshot_at: set[int],
) -> dict[int, np.ndarray]:
    """Budget-form knapsack DP over items in order, with prefix snapshots.

    Returns ``{p: dp table over items[:p]}`` for every ``p`` in
    ``snapshot_at``; ``dp[c, k]`` is the best score using capacity ``<= c``
    and at most ``k`` items, so tables from disjoint item ranges combine by
    maximising over a capacity/count split.
    """
    dp = np.zeros((int_capacity + 1, k_cap + 1), dtype=float)
    snapshots: dict[int, np.ndarray] = {}
    shifted = np.empty_like(dp)
    for pos in range(len(scores)):
        if pos in snapshot_at:
            snapshots[pos] = dp.copy()
        weight = int(int_demands[pos])
        shifted.fill(-np.inf)
        shifted[weight:, 1:] = dp[: int_capacity + 1 - weight, :k_cap] + scores[pos]
        np.maximum(dp, shifted, out=dp)
    if len(scores) in snapshot_at:
        snapshots[len(scores)] = dp.copy()
    return snapshots


def knapsack_objectives_without(
    problem: WinnerDeterminationProblem,
    indices: tuple[int, ...],
    *,
    resolution: int = 1000,
    prune: bool = True,
) -> dict[int, float]:
    """Best DP objective of ``problem`` with one candidate removed, for each
    candidate in ``indices`` — all from two DP passes.

    Equivalent to ``solve_knapsack_dp(problem.without(i)).objective`` for
    every ``i`` (same quantisation grid), but instead of ``len(indices)``
    independent O(n·R·K) re-solves it runs one forward and one backward
    budget-form DP with snapshots at the queried positions and combines each
    pair with an O(R·K) elementwise max — the Clarke-payment hot path.

    ``prune=True`` shrinks the instance with the score-upper-bound prune
    before the passes, slackening the threshold for the queried removals
    (see :func:`_prune_state` and :func:`_witness_slack`): every candidate
    of every "without i" optimum survives, keeping each returned objective
    exact.  The bound state is memoised per problem, so this reuses the
    core DP already computed by the winner-determination solve.
    """
    if problem.capacity is None:
        raise ValueError("knapsack_objectives_without requires a knapsack constraint")
    if resolution <= 0:
        raise ValueError(f"resolution must be > 0, got {resolution}")
    candidates, int_demands = _quantised_demands(problem, resolution)
    int_capacity = resolution
    position_of = {i: pos for pos, i in enumerate(candidates)}

    k_cap = len(candidates)
    if problem.max_winners is not None:
        k_cap = min(k_cap, problem.max_winners)

    if k_cap == 0:
        return {i: 0.0 for i in indices}
    out: dict[int, float] = {}
    # Candidates dropped by quantisation (or non-positive scores) don't
    # participate in the DP at all: removing them changes nothing.
    missing = [i for i in indices if i not in position_of]
    queried = [i for i in indices if i in position_of]
    if missing:
        base = solve_knapsack_dp(problem, resolution=resolution, prune=prune).objective
        for i in missing:
            out[i] = base
    if not queried:
        return out

    scores = problem.scores_array[candidates]
    if prune:
        state = _prune_state(problem, resolution)
        k_cap = state.k_cap
        keep_positions = [position_of[i] for i in queried]
        slack = _witness_slack(state, keep_positions, int_capacity)
        mask = _prune_mask(state, slack, keep_positions)
        if mask is not None:
            telemetry.add_counter(
                "knapsack_prune_hits", float(len(candidates) - int(mask.sum()))
            )
            candidates = [i for i, kept in zip(candidates, mask) if kept]
            int_demands = int_demands[mask]
            scores = scores[mask]
            position_of = {i: pos for pos, i in enumerate(candidates)}
        k_cap = min(k_cap, len(candidates))
    positions = sorted(position_of[i] for i in queried)
    forward = _forward_dp_tables(
        scores, int_demands, int_capacity, k_cap, snapshot_at=set(positions)
    )
    # Backward pass: reverse the items; a snapshot before reversed position
    # ``m - 1 - p`` covers original items ``p + 1 ..`` exactly.
    m = len(candidates)
    backward = _forward_dp_tables(
        scores[::-1],
        int_demands[::-1],
        int_capacity,
        k_cap,
        snapshot_at={m - 1 - p for p in positions},
    )
    for i in queried:
        pos = position_of[i]
        prefix = forward[pos]
        suffix = backward[m - 1 - pos]
        # Best over capacity split c + (R - c) and count split k + (K - k):
        # both tables are monotone in both axes, so flipping the suffix and
        # adding elementwise covers every feasible split.
        out[i] = float(np.max(prefix + suffix[::-1, ::-1]))
    return out


def solve_greedy(problem: WinnerDeterminationProblem) -> Allocation:
    """Monotone greedy: sort by density, skip infeasible, keep going.

    Density is ``score / demand`` under a knapsack constraint and plain
    ``score`` otherwise.  Lowering a candidate's bid raises its score and
    density, moving it earlier in the order, so the induced allocation rule
    is monotone in each bid — the property required for critical-value
    payments (verified property-based in the test suite).

    The sort and the no-skip prefix are vectorised (argsort + cumulative
    demand scan); the Python loop only runs from the first candidate that
    no longer fits.
    """
    order = greedy_order(problem)
    if order.size == 0:
        return _empty()
    k_cap = problem.max_winners if problem.max_winners is not None else order.size

    if problem.capacity is None:
        return _finish(problem, order[:k_cap].tolist())

    demands = problem.demands_array
    assert demands is not None
    ordered_demands = demands[order]
    cumulative = np.cumsum(ordered_demands)
    overflow = np.flatnonzero(cumulative > problem.capacity + _EPS)
    prefix_len = int(overflow[0]) if overflow.size else order.size
    prefix_len = min(prefix_len, k_cap)
    selected = order[:prefix_len].tolist()
    if prefix_len < order.size and prefix_len < k_cap:
        # Skip semantics: the first over-budget candidate is skipped, later
        # (smaller) candidates may still fit.
        remaining = problem.capacity - (cumulative[prefix_len - 1] if prefix_len else 0.0)
        tail = order[prefix_len:].tolist()
        tail_demands = ordered_demands[prefix_len:].tolist()
        count = prefix_len
        for i, demand in zip(tail, tail_demands):
            if count >= k_cap:
                break
            if demand > remaining + _EPS:
                continue
            remaining -= demand
            selected.append(i)
            count += 1
    return _finish(problem, selected)


def solve_lp_bound(problem: WinnerDeterminationProblem) -> float:
    """Fractional LP upper bound on the optimal objective (analysis only)."""
    n = problem.size
    positive = [i for i in range(n) if problem.scores[i] > 0]
    if not positive:
        return 0.0
    c = [-problem.scores[i] for i in positive]
    a_ub = []
    b_ub = []
    if problem.capacity is not None and problem.demands is not None:
        a_ub.append([problem.demands[i] for i in positive])
        b_ub.append(problem.capacity)
    if problem.max_winners is not None:
        a_ub.append([1.0] * len(positive))
        b_ub.append(float(problem.max_winners))
    if not a_ub:
        return float(sum(problem.scores[i] for i in positive))
    result = linprog(
        c,
        A_ub=np.array(a_ub),
        b_ub=np.array(b_ub),
        bounds=[(0.0, 1.0)] * len(positive),
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"LP bound failed: {result.message}")
    return float(-result.fun)


class SolveCache:
    """Bounded memo of ``(problem, method, resolution) -> Allocation``.

    :class:`WinnerDeterminationProblem` is frozen and hashable, so problem
    identity is value identity.  The per-round mechanism threads one cache
    through winner determination and every payment re-solve, and the
    long-term mechanism reuses it across rounds — repeated instances (e.g.
    truthfulness probes re-solving "everyone but the deviator", or rounds
    where the queue state did not move) are solved once.  Eviction is FIFO.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be > 0, got {maxsize}")
        self.maxsize = maxsize
        self._store: dict[tuple, Allocation] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        self._store.clear()

    def lookup(
        self,
        problem: WinnerDeterminationProblem,
        method: str,
        *,
        resolution: int = 1000,
    ) -> Allocation | None:
        """Cached allocation for the key, or ``None`` (counts hit/miss).

        Split out of :meth:`solve` for callers that batch the misses (the
        stacked knapsack path probes the whole batch first, solves the
        misses together, then :meth:`store`\\ s them).
        """
        cached = self._store.get((problem, method, resolution))
        if cached is not None:
            self.hits += 1
            telemetry.add_counter("wd_cache_hit")
        else:
            self.misses += 1
            telemetry.add_counter("wd_cache_miss")
        return cached

    def store(
        self,
        problem: WinnerDeterminationProblem,
        method: str,
        allocation: Allocation,
        *,
        resolution: int = 1000,
    ) -> None:
        """Insert a solved allocation under the cache key (FIFO eviction)."""
        if len(self._store) >= self.maxsize:
            self._store.pop(next(iter(self._store)))
        self._store[(problem, method, resolution)] = allocation

    def solve(
        self,
        problem: WinnerDeterminationProblem,
        method: str,
        *,
        resolution: int = 1000,
    ) -> Allocation:
        cached = self.lookup(problem, method, resolution=resolution)
        if cached is not None:
            return cached
        allocation = solve(problem, method, resolution=resolution)
        self.store(problem, method, allocation, resolution=resolution)
        return allocation


def exact_method_for(problem: WinnerDeterminationProblem) -> str:
    """The concrete solver the ``"exact"`` dispatch picks for an instance.

    Shared with the payment engine so winner determination and Clarke
    critical scores always agree on whether an instance is solved by
    ``"top-k"``, ``"brute-force"`` or ``"dp"`` — mixing, say, brute-force
    winners with quantised-DP "without i" objectives would produce pivots
    computed from mismatched objectives.
    """
    if problem.capacity is None:
        return "top-k"
    positive = int((problem.scores_array > 0).sum())
    if positive <= _AUTO_BRUTE_FORCE_LIMIT:
        return "brute-force"
    return "dp"


def solve(
    problem: WinnerDeterminationProblem,
    method: str = "exact",
    *,
    resolution: int = 1000,
) -> Allocation:
    """Dispatch to a solver by name.

    ``"exact"`` chooses the cheapest exact solver for the instance
    (see :func:`exact_method_for`): :func:`solve_top_k` without a knapsack
    constraint, otherwise :func:`solve_brute_force` for small instances and
    :func:`solve_knapsack_dp` beyond.  ``"greedy"`` selects the monotone
    heuristic; ``"brute-force"``, ``"dp"`` and ``"top-k"`` force a specific
    solver.
    """
    if method == "exact":
        method = exact_method_for(problem)
    with telemetry.span("wd_solve"):
        if method == "greedy":
            return solve_greedy(problem)
        if method == "brute-force":
            return solve_brute_force(problem)
        if method == "dp":
            return solve_knapsack_dp(problem, resolution=resolution)
        if method == "top-k":
            return solve_top_k(problem)
        raise ValueError(f"unknown winner-determination method {method!r}")
