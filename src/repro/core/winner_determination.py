"""Winner-determination solvers for the per-round selection problem.

Each round the mechanism must choose a subset ``S`` of candidates maximising
an additive score ``sum_{i in S} score_i`` subject to packing constraints:

* a cardinality cap (at most ``max_winners`` clients per round), and/or
* a knapsack capacity (``sum_{i in S} demand_i <= capacity``), modelling a
  per-round resource bound such as uplink bandwidth slots.

The solvers:

=====================  ==========================================  =========
solver                 guarantee                                   scaling
=====================  ==========================================  =========
:func:`solve_top_k`    exact when there is no knapsack constraint  O(n log n)
:func:`solve_brute_force`  exact, any constraints                  O(2^n)
:func:`solve_knapsack_dp`  exact for integer demands; for real
                       demands exact up to the quantisation
                       ``resolution`` (conservatively feasible)    O(n·R·K)
:func:`solve_greedy`   monotone density heuristic                  O(n log n)
:func:`solve_lp_bound` fractional upper bound (analysis only)      LP
=====================  ==========================================  =========

Exact solvers preserve exact VCG truthfulness; the greedy solver pairs with
critical-value payments (:mod:`repro.core.payments`).  All solvers use the
same deterministic tie-breaking (higher score first, then lower index) so
payment computations that re-solve subproblems are stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np
from scipy.optimize import linprog

__all__ = [
    "WinnerDeterminationProblem",
    "Allocation",
    "solve",
    "solve_top_k",
    "solve_brute_force",
    "solve_knapsack_dp",
    "solve_greedy",
    "solve_lp_bound",
]

_BRUTE_FORCE_LIMIT = 22
# Below this many positive-score candidates "exact" dispatch prefers brute
# force over DP; above it, subset enumeration is slower than the DP.
_AUTO_BRUTE_FORCE_LIMIT = 12


@dataclass(frozen=True)
class WinnerDeterminationProblem:
    """One round's selection problem.

    Attributes
    ----------
    scores:
        Per-candidate selection score (may be negative; negative-score
        candidates are never selected because the empty set is feasible).
    demands:
        Per-candidate resource demand, strictly positive; ``None`` when there
        is no knapsack constraint.
    capacity:
        Knapsack capacity; ``None`` when there is no knapsack constraint.
        ``demands`` and ``capacity`` must be both present or both absent.
    max_winners:
        Cardinality cap, or ``None`` for unlimited.
    """

    scores: tuple[float, ...]
    demands: tuple[float, ...] | None = None
    capacity: float | None = None
    max_winners: int | None = None

    def __post_init__(self) -> None:
        if (self.demands is None) != (self.capacity is None):
            raise ValueError("demands and capacity must be both set or both None")
        if self.demands is not None:
            if len(self.demands) != len(self.scores):
                raise ValueError(
                    f"{len(self.demands)} demands for {len(self.scores)} scores"
                )
            if any(d <= 0 for d in self.demands):
                raise ValueError("all demands must be > 0")
            if self.capacity is not None and self.capacity < 0:
                raise ValueError(f"capacity must be >= 0, got {self.capacity}")
        if self.max_winners is not None and self.max_winners < 0:
            raise ValueError(f"max_winners must be >= 0, got {self.max_winners}")
        if any(not np.isfinite(s) for s in self.scores):
            raise ValueError("scores must be finite")

    @property
    def size(self) -> int:
        """Number of candidates."""
        return len(self.scores)

    def without(self, index: int) -> "WinnerDeterminationProblem":
        """Return the subproblem with candidate ``index`` removed.

        Remaining candidates keep their relative order; the caller is
        responsible for index translation (indices ``>= index`` shift down
        by one).
        """
        if not 0 <= index < self.size:
            raise IndexError(f"candidate index {index} out of range")
        keep = [j for j in range(self.size) if j != index]
        return WinnerDeterminationProblem(
            scores=tuple(self.scores[j] for j in keep),
            demands=None if self.demands is None else tuple(self.demands[j] for j in keep),
            capacity=self.capacity,
            max_winners=self.max_winners,
        )

    def with_score(self, index: int, score: float) -> "WinnerDeterminationProblem":
        """Return a copy with one candidate's score replaced."""
        if not 0 <= index < self.size:
            raise IndexError(f"candidate index {index} out of range")
        scores = list(self.scores)
        scores[index] = float(score)
        return WinnerDeterminationProblem(
            scores=tuple(scores),
            demands=self.demands,
            capacity=self.capacity,
            max_winners=self.max_winners,
        )

    def is_feasible(self, selected: tuple[int, ...]) -> bool:
        """Check that a candidate index set satisfies all constraints."""
        if len(set(selected)) != len(selected):
            return False
        if any(not 0 <= i < self.size for i in selected):
            return False
        if self.max_winners is not None and len(selected) > self.max_winners:
            return False
        if self.capacity is not None:
            demands = self.demands or ()
            if sum(demands[i] for i in selected) > self.capacity + 1e-12:
                return False
        return True

    def objective(self, selected: tuple[int, ...]) -> float:
        """Total score of a candidate index set."""
        return float(sum(self.scores[i] for i in selected))


@dataclass(frozen=True)
class Allocation:
    """A solver's answer: selected candidate indices and their total score."""

    selected: tuple[int, ...]
    objective: float

    def __post_init__(self) -> None:
        if list(self.selected) != sorted(set(self.selected)):
            raise ValueError("selected indices must be sorted and unique")


def _empty() -> Allocation:
    return Allocation(selected=(), objective=0.0)


def _finish(problem: WinnerDeterminationProblem, selected: list[int]) -> Allocation:
    selected_sorted = tuple(sorted(selected))
    return Allocation(selected=selected_sorted, objective=problem.objective(selected_sorted))


def solve_top_k(problem: WinnerDeterminationProblem) -> Allocation:
    """Exact solver when there is no knapsack constraint.

    Picks the positive-score candidates with the highest scores, up to
    ``max_winners``.  Raises if a knapsack constraint is present.
    """
    if problem.capacity is not None:
        raise ValueError("solve_top_k cannot handle a knapsack constraint")
    order = sorted(
        (i for i in range(problem.size) if problem.scores[i] > 0),
        key=lambda i: (-problem.scores[i], i),
    )
    if problem.max_winners is not None:
        order = order[: problem.max_winners]
    return _finish(problem, order)


def solve_brute_force(problem: WinnerDeterminationProblem) -> Allocation:
    """Exhaustive exact solver; refuses instances above 22 candidates.

    Only positive-score candidates are enumerated (adding a non-positive
    score candidate never improves a packing-constrained objective).
    """
    candidates = [i for i in range(problem.size) if problem.scores[i] > 0]
    if len(candidates) > _BRUTE_FORCE_LIMIT:
        raise ValueError(
            f"brute force limited to {_BRUTE_FORCE_LIMIT} positive-score "
            f"candidates, got {len(candidates)}"
        )
    max_size = len(candidates)
    if problem.max_winners is not None:
        max_size = min(max_size, problem.max_winners)
    best = _empty()
    for size in range(1, max_size + 1):
        for subset in combinations(candidates, size):
            if not problem.is_feasible(subset):
                continue
            objective = problem.objective(subset)
            if objective > best.objective + 1e-12:
                best = Allocation(selected=tuple(subset), objective=objective)
    return best


def solve_knapsack_dp(
    problem: WinnerDeterminationProblem,
    *,
    resolution: int = 1000,
) -> Allocation:
    """Dynamic-programming knapsack solver with a cardinality dimension.

    Demands are quantised to a grid of ``resolution`` units spanning the
    capacity, rounding demands *up* so the returned allocation is always
    feasible for the original real-valued constraint.  When demands and
    capacity are integers and ``resolution >= capacity`` the solution is
    exact.
    """
    if problem.capacity is None:
        return solve_top_k(problem)
    if resolution <= 0:
        raise ValueError(f"resolution must be > 0, got {resolution}")
    demands = problem.demands or ()
    candidates = [i for i in range(problem.size) if problem.scores[i] > 0]
    if not candidates or problem.capacity <= 0:
        return _empty()

    scale = resolution / problem.capacity
    int_capacity = resolution
    int_demands = {}
    for i in candidates:
        units = int(np.ceil(demands[i] * scale - 1e-9))
        int_demands[i] = max(units, 1)
    candidates = [i for i in candidates if int_demands[i] <= int_capacity]
    if not candidates:
        return _empty()

    k_cap = len(candidates)
    if problem.max_winners is not None:
        k_cap = min(k_cap, problem.max_winners)
    if k_cap == 0:
        return _empty()

    # dp[c, k] = best score using capacity exactly <= c with <= k items.
    dp = np.zeros((int_capacity + 1, k_cap + 1), dtype=float)
    take = np.zeros((len(candidates), int_capacity + 1, k_cap + 1), dtype=bool)
    for item_pos, i in enumerate(candidates):
        weight = int_demands[i]
        score = problem.scores[i]
        shifted = np.full_like(dp, -np.inf)
        shifted[weight:, 1:] = dp[: int_capacity + 1 - weight, : k_cap] + score
        improved = shifted > dp + 1e-12
        take[item_pos] = improved
        dp = np.where(improved, shifted, dp)

    # Backtrack: scan items in reverse; the first recorded improvement at the
    # current cell is the last one applied, i.e. the one the final value used.
    c, k = int_capacity, k_cap
    selected: list[int] = []
    for item_pos in range(len(candidates) - 1, -1, -1):
        if take[item_pos, c, k]:
            i = candidates[item_pos]
            selected.append(i)
            c -= int_demands[i]
            k -= 1
    return _finish(problem, selected)


def solve_greedy(problem: WinnerDeterminationProblem) -> Allocation:
    """Monotone greedy: sort by density, skip infeasible, keep going.

    Density is ``score / demand`` under a knapsack constraint and plain
    ``score`` otherwise.  Lowering a candidate's bid raises its score and
    density, moving it earlier in the order, so the induced allocation rule
    is monotone in each bid — the property required for critical-value
    payments (verified property-based in the test suite).
    """
    demands = problem.demands
    candidates = [i for i in range(problem.size) if problem.scores[i] > 0]

    def priority(i: int) -> tuple[float, float, int]:
        density = problem.scores[i] / demands[i] if demands is not None else problem.scores[i]
        return (-density, -problem.scores[i], i)

    candidates.sort(key=priority)
    selected: list[int] = []
    remaining = problem.capacity
    for i in candidates:
        if problem.max_winners is not None and len(selected) >= problem.max_winners:
            break
        if remaining is not None and demands is not None:
            if demands[i] > remaining + 1e-12:
                continue
            remaining -= demands[i]
        selected.append(i)
    return _finish(problem, selected)


def solve_lp_bound(problem: WinnerDeterminationProblem) -> float:
    """Fractional LP upper bound on the optimal objective (analysis only)."""
    n = problem.size
    positive = [i for i in range(n) if problem.scores[i] > 0]
    if not positive:
        return 0.0
    c = [-problem.scores[i] for i in positive]
    a_ub = []
    b_ub = []
    if problem.capacity is not None and problem.demands is not None:
        a_ub.append([problem.demands[i] for i in positive])
        b_ub.append(problem.capacity)
    if problem.max_winners is not None:
        a_ub.append([1.0] * len(positive))
        b_ub.append(float(problem.max_winners))
    if not a_ub:
        return float(sum(problem.scores[i] for i in positive))
    result = linprog(
        c,
        A_ub=np.array(a_ub),
        b_ub=np.array(b_ub),
        bounds=[(0.0, 1.0)] * len(positive),
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"LP bound failed: {result.message}")
    return float(-result.fun)


def solve(
    problem: WinnerDeterminationProblem,
    method: str = "exact",
    *,
    resolution: int = 1000,
) -> Allocation:
    """Dispatch to a solver by name.

    ``"exact"`` chooses the cheapest exact solver for the instance:
    :func:`solve_top_k` without a knapsack constraint, otherwise
    :func:`solve_brute_force` for small instances and
    :func:`solve_knapsack_dp` beyond.  ``"greedy"`` selects the monotone
    heuristic; ``"brute-force"``, ``"dp"`` and ``"top-k"`` force a specific
    solver.
    """
    if method == "exact":
        if problem.capacity is None:
            return solve_top_k(problem)
        positive = sum(1 for s in problem.scores if s > 0)
        if positive <= _AUTO_BRUTE_FORCE_LIMIT:
            return solve_brute_force(problem)
        return solve_knapsack_dp(problem, resolution=resolution)
    if method == "greedy":
        return solve_greedy(problem)
    if method == "brute-force":
        return solve_brute_force(problem)
    if method == "dp":
        return solve_knapsack_dp(problem, resolution=resolution)
    if method == "top-k":
        return solve_top_k(problem)
    raise ValueError(f"unknown winner-determination method {method!r}")
