"""Server-side valuation of clients.

The auction needs a value ``v_i(t)`` for recruiting client ``i`` in round
``t``.  Crucially this value is computed from the client's *declared data
profile* (sample count, quality score) and from the server's own selection
history — never from the submitted cost — so that the allocation rule remains
an affine maximizer in the bids and the mechanism stays truthful.

Three models are provided:

* :class:`LinearValuation` — value proportional to declared sample count
  times quality; the simplest model, matching "pay for data volume".
* :class:`DiminishingReturnsValuation` — logarithmic in sample count,
  reflecting that the marginal learning benefit of extra samples decays.
* :class:`StalenessAwareValuation` — wraps another model and boosts clients
  the longer they have gone unselected, reflecting that a client whose data
  has not influenced the global model recently contributes more novelty.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Mapping

from repro.core.bids import Bid
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "ValuationModel",
    "LinearValuation",
    "DiminishingReturnsValuation",
    "StalenessAwareValuation",
]


class ValuationModel(ABC):
    """Maps declared client profiles to per-round recruitment values."""

    @abstractmethod
    def value_of(self, bid: Bid) -> float:
        """Return the server's value for recruiting the client behind ``bid``.

        Must not depend on ``bid.cost``.
        """

    def values_for(self, bids: tuple[Bid, ...]) -> dict[int, float]:
        """Vectorised convenience: values for a whole round's bids."""
        return {bid.client_id: self.value_of(bid) for bid in bids}

    def observe_selection(self, selected: tuple[int, ...]) -> None:
        """Hook called after each round with the winner set.

        Stateless models ignore it; history-aware models (staleness) update
        their internal counters.
        """


class LinearValuation(ValuationModel):
    """``v = scale * (data_size / reference_size) * quality``.

    Parameters
    ----------
    scale:
        Value of a reference-size, quality-1 client.
    reference_size:
        Sample count that normalises data size to 1.
    """

    def __init__(self, scale: float = 1.0, reference_size: int = 100) -> None:
        self.scale = check_positive("scale", scale)
        if reference_size <= 0:
            raise ValueError(f"reference_size must be > 0, got {reference_size}")
        self.reference_size = int(reference_size)

    def value_of(self, bid: Bid) -> float:
        return self.scale * (bid.data_size / self.reference_size) * bid.quality

    def __repr__(self) -> str:
        return (
            f"LinearValuation(scale={self.scale}, reference_size={self.reference_size})"
        )


class DiminishingReturnsValuation(ValuationModel):
    """``v = scale * log(1 + data_size / reference_size) * quality``.

    Logarithmic data-size dependence encodes diminishing marginal learning
    utility: the 10,000th sample from one client matters far less than the
    100th.
    """

    def __init__(self, scale: float = 1.0, reference_size: int = 100) -> None:
        self.scale = check_positive("scale", scale)
        if reference_size <= 0:
            raise ValueError(f"reference_size must be > 0, got {reference_size}")
        self.reference_size = int(reference_size)

    def value_of(self, bid: Bid) -> float:
        return self.scale * math.log1p(bid.data_size / self.reference_size) * bid.quality

    def __repr__(self) -> str:
        return (
            "DiminishingReturnsValuation("
            f"scale={self.scale}, reference_size={self.reference_size})"
        )


class StalenessAwareValuation(ValuationModel):
    """Boost unselected clients: ``v = base_v * (1 + boost * staleness)``.

    ``staleness`` is ``min(rounds_since_selected, cap) / cap`` in ``[0, 1]``;
    a never-selected client has staleness 1.  The boost is bid-independent,
    so wrapping preserves truthfulness.

    Parameters
    ----------
    base:
        The wrapped valuation model.
    boost:
        Maximum multiplicative bonus (e.g. 0.5 means up to +50 %).
    cap:
        Number of unselected rounds at which staleness saturates.
    """

    def __init__(self, base: ValuationModel, boost: float = 0.5, cap: int = 20) -> None:
        self.base = base
        self.boost = check_non_negative("boost", boost)
        if cap <= 0:
            raise ValueError(f"cap must be > 0, got {cap}")
        self.cap = int(cap)
        self._rounds_since_selected: dict[int, int] = {}

    def staleness_of(self, client_id: int) -> float:
        """Normalised staleness of ``client_id`` in ``[0, 1]``."""
        since = self._rounds_since_selected.get(client_id, self.cap)
        return min(since, self.cap) / self.cap

    def value_of(self, bid: Bid) -> float:
        base_value = self.base.value_of(bid)
        return base_value * (1.0 + self.boost * self.staleness_of(bid.client_id))

    def observe_selection(self, selected: tuple[int, ...]) -> None:
        selected_set = set(selected)
        for client_id in list(self._rounds_since_selected):
            if client_id not in selected_set:
                self._rounds_since_selected[client_id] += 1
        for client_id in selected_set:
            self._rounds_since_selected[client_id] = 0
        self.base.observe_selection(selected)

    def register_clients(self, client_ids: tuple[int, ...]) -> None:
        """Start tracking staleness for ``client_ids`` (initially maximal)."""
        for client_id in client_ids:
            self._rounds_since_selected.setdefault(client_id, self.cap)

    def __repr__(self) -> str:
        return (
            f"StalenessAwareValuation(base={self.base!r}, "
            f"boost={self.boost}, cap={self.cap})"
        )


def constant_values(bids: tuple[Bid, ...], value: float = 1.0) -> Mapping[int, float]:
    """Uniform values — handy for tests where only costs should matter."""
    return {bid.client_id: float(value) for bid in bids}
