"""Payment rules as *critical-score* computations.

Both payment rules in the library reduce to finding, for each winner, the
**critical score**: the lowest selection score at which the winner would
still be selected, holding everyone else fixed.  Because a client's score is
an affine, strictly decreasing function of its bid
(``score_i = w_i - lambda * b_i`` with ``lambda > 0``), a critical score
``sigma_i`` converts to the *critical bid* ``(w_i - sigma_i) / lambda`` — the
highest bid at which the client still wins — and a truthful mechanism pays
exactly that.

The module is organised as fast analytic/incremental engines with the
original general-purpose implementations retained as reference oracles:

* :func:`clarke_critical_scores` — Clarke pivots for exact winner
  determination.  Dispatches to a closed form under a pure cardinality cap
  (the displaced ``(K+1)``-th candidate is every winner's pivot), to
  prefix/suffix DP tables under a knapsack constraint
  (:func:`repro.core.winner_determination.knapsack_objectives_without` —
  two DP passes total instead of one re-solve per winner), and falls back
  to per-winner re-solves for any custom solver.
* :func:`greedy_critical_scores` — analytic critical scores for the
  density-greedy rule: one shared priority order, then for each winner a
  single forward scan finds the competitor/capacity state that would
  displace it.  O(n log n + winners·n) total, no bisection.
* :func:`critical_scores_by_search` — bisection against any *monotone*
  allocation rule; the fallback for custom rules and the test oracle the
  analytic engine is verified against.

:func:`clarke_payments` / :func:`critical_value_payments` wrap these into
monetary payments given the affine score map.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.telemetry import traced
from repro.core.winner_determination import (
    Allocation,
    WinnerDeterminationProblem,
    exact_method_for,
    greedy_order,
    greedy_order_batch,
    knapsack_objectives_without,
    solve,
    solve_greedy,
)

__all__ = [
    "clarke_critical_scores",
    "top_k_critical_scores",
    "top_k_critical_scores_batch",
    "top_k_critical_sigmas_flat",
    "knapsack_clarke_critical_scores",
    "greedy_critical_scores",
    "greedy_critical_scores_batch",
    "critical_scores_by_search",
    "clarke_payments",
    "critical_value_payments",
]

Solver = Callable[[WinnerDeterminationProblem], Allocation]

_EPS = 1e-12


def _clamp(sigma: float, score: float) -> float:
    """Clamp numerical noise into the theoretically guaranteed interval
    ``0 <= sigma <= score``."""
    return min(max(sigma, 0.0), score)


@traced("pay_topk")
def top_k_critical_scores(
    problem: WinnerDeterminationProblem,
    allocation: Allocation,
) -> dict[int, float]:
    """Clarke critical scores under top-k winner determination, closed form.

    Removing a winner promotes the best unselected positive-score candidate
    (the ``(K+1)``-th by score) — the same candidate for every winner — so
    ``W_{-i} = W - score_i + s_{K+1}`` and the critical score is ``s_{K+1}``
    for all winners (0 when nobody is displaced).  One O(n) scan replaces
    ``K`` re-sorted subproblems.
    """
    if problem.capacity is not None:
        raise ValueError("top_k_critical_scores cannot handle a knapsack constraint")
    scores = problem.scores_array
    selected = set(allocation.selected)
    runner_up = 0.0
    for i in range(problem.size):
        s = float(scores[i])
        if s > 0 and i not in selected and s > runner_up:
            runner_up = s
    return {
        i: _clamp(runner_up, float(scores[i])) for i in allocation.selected
    }


def top_k_critical_sigmas_flat(
    scores: np.ndarray, rows: np.ndarray, columns: np.ndarray
) -> np.ndarray:
    """Winner-major flat form of the batched top-k Clarke pivots.

    ``(rows[i], columns[i])`` address winner ``i`` in the ``(R, N)`` score
    matrix; the result is winner ``i``'s critical score.  Every winner's
    pivot is its row's displaced runner-up — the best positive non-winner
    score — clamped into ``[0, score_i]`` (the runner-up is already >= 0,
    so the clamp reduces to the min).  One masked row-max instead of ``R``
    Python scans; shared by :func:`top_k_critical_scores_batch` and the
    stacked auction (:meth:`repro.core.vcg.SingleRoundVCGAuction.run_batch`).
    """
    losers = np.where(scores > 0, scores, 0.0)
    losers[rows, columns] = 0.0
    runner_ups = (
        losers.max(axis=1) if scores.size else np.zeros(scores.shape[0])
    )
    return np.minimum(runner_ups[rows], scores[rows, columns])


@traced("pay_topk_batch")
def top_k_critical_scores_batch(
    scores: np.ndarray, allocations: Sequence[Allocation]
) -> list[dict[int, float]]:
    """Row-wise :func:`top_k_critical_scores` over an ``(R, N)`` matrix.

    ``allocations[r]`` must be row ``r``'s top-k allocation (column-indexed,
    e.g. from :func:`~repro.core.winner_determination.solve_top_k_batch`).
    """
    scores = np.asarray(scores, dtype=float)
    counts = [len(allocation.selected) for allocation in allocations]
    rows = np.repeat(np.arange(len(allocations)), counts)
    columns = np.fromiter(
        (
            column
            for allocation in allocations
            for column in allocation.selected
        ),
        dtype=np.int64,
        count=int(rows.size),
    )
    sigmas = top_k_critical_sigmas_flat(scores, rows, columns).tolist()
    out = []
    start = 0
    for allocation, count in zip(allocations, counts):
        out.append(dict(zip(allocation.selected, sigmas[start : start + count])))
        start += count
    return out


@traced("pay_knapsack_dp")
def knapsack_clarke_critical_scores(
    problem: WinnerDeterminationProblem,
    allocation: Allocation,
    *,
    resolution: int = 1000,
    prune: bool = True,
) -> dict[int, float]:
    """Clarke critical scores under DP knapsack winner determination.

    ``sigma_i = W_{-i} - (W - score_i)`` with every ``W_{-i}`` answered by
    the prefix/suffix DP tables — two DP passes plus an O(R·K) combine per
    winner instead of ``len(winners)`` independent DP re-solves.  Matches
    :func:`clarke_critical_scores` with a ``solve_knapsack_dp`` solver at
    the same ``resolution`` (verified property-based in the test suite).
    ``prune`` is forwarded to the winner-slackened score-upper-bound prune
    (objectives stay exact either way).
    """
    objectives_without = knapsack_objectives_without(
        problem, allocation.selected, resolution=resolution, prune=prune
    )
    critical: dict[int, float] = {}
    for index in allocation.selected:
        companion = allocation.objective - problem.scores[index]
        critical[index] = _clamp(
            objectives_without[index] - companion, problem.scores[index]
        )
    return critical


@traced("pay_clarke")
def clarke_critical_scores(
    problem: WinnerDeterminationProblem,
    allocation: Allocation,
    *,
    solver: Solver | None = None,
) -> dict[int, float]:
    """Critical scores of all winners under exact winner determination.

    For winner ``i`` with companion score
    ``M_i = W(S*) - score_i`` and best objective without ``i`` equal to
    ``W_{-i}``, the critical score is ``sigma_i = W_{-i} - M_i``:
    ``i`` is selected exactly when ``score_i >= sigma_i``.  Properties (both
    guaranteed by optimality of ``S*`` and feasibility of ``S* \\ {i}``):

    * ``0 <= sigma_i <= score_i`` — hence payments are individually rational.

    When no ``solver`` is given the "without i" objectives come from the
    fast engine matching the instance's exact-dispatch solver
    (:func:`~repro.core.winner_determination.exact_method_for`):
    :func:`top_k_critical_scores` without a knapsack constraint,
    :func:`knapsack_clarke_critical_scores` in the DP regime, and
    per-winner brute-force re-solves only for small instances where they
    are cheap.  Pass an explicit solver to force a specific re-solve rule.
    """
    if solver is None:
        method = exact_method_for(problem)
        if method == "top-k":
            return top_k_critical_scores(problem, allocation)
        if method == "dp":
            return knapsack_clarke_critical_scores(problem, allocation)
        solver = lambda p: solve(p, "exact")  # noqa: E731 - tiny local adapter
    critical: dict[int, float] = {}
    for index in allocation.selected:
        companion = allocation.objective - problem.scores[index]
        without = solver(problem.without(index))
        critical[index] = _clamp(
            without.objective - companion, problem.scores[index]
        )
    return critical


@traced("pay_greedy")
def greedy_critical_scores(
    problem: WinnerDeterminationProblem,
    allocation: Allocation,
) -> dict[int, float]:
    """Analytic critical scores for the density-greedy allocation rule.

    Lowering winner ``i``'s score only moves it later in the greedy priority
    order ``(-density, -score, index)`` — the processing of every *other*
    candidate before that point is unchanged.  So replay the greedy scan
    over the other candidates once per winner, tracking remaining capacity
    ``r_j`` and winner count ``c_j`` after the first ``j`` others: winner
    ``i`` placed after ``j`` others is selected iff ``c_j < K`` and
    ``demand_i <= r_j``.  That predicate is monotone (``r_j`` never grows,
    ``c_j`` never shrinks), so the *first* other candidate whose processing
    breaks it is the displacing competitor ``b``; winner ``i`` stays
    selected exactly while it precedes ``b`` in the order, i.e. while its
    density exceeds ``b``'s.  The critical score is therefore
    ``density_b * demand_i`` (plain ``score_b`` without a knapsack), and 0
    when no competitor/capacity state ever displaces the winner.

    One shared O(n log n) sort plus an O(n) scan per winner — the scan
    short-circuits at the displacing competitor.  Replaces the previous
    per-winner bisection (~100 full greedy solves per winner); matches
    :func:`critical_scores_by_search` to bisection tolerance (verified
    property-based in the test suite).
    """
    order = greedy_order(problem)
    scores = problem.scores_array
    demands = problem.demands_array
    capacity = problem.capacity
    k_cap = problem.max_winners
    order_list = order.tolist()
    demand_list = demands[order].tolist() if demands is not None else None
    density_list = (
        (scores[order] / demands[order]).tolist()
        if demands is not None
        else scores[order].tolist()
    )

    critical: dict[int, float] = {}
    for index in allocation.selected:
        own_demand = demands[index] if demands is not None else None
        remaining = capacity
        count = 0
        sigma = 0.0
        for pos, other in enumerate(order_list):
            if other == index:
                continue
            # Process `other` under greedy skip semantics.
            if remaining is not None:
                if demand_list[pos] > remaining + _EPS:
                    continue
                remaining -= demand_list[pos]
            count += 1
            # Would winner `index`, arriving after `other`, still fit?
            displaced = (k_cap is not None and count >= k_cap) or (
                remaining is not None and own_demand > remaining + _EPS
            )
            if displaced:
                if demands is not None:
                    sigma = density_list[pos] * float(own_demand)
                else:
                    sigma = density_list[pos]
                break
        critical[index] = _clamp(sigma, float(scores[index]))
    return critical


@traced("pay_greedy_batch")
def greedy_critical_scores_batch(
    scores: np.ndarray,
    allocations: Sequence[Allocation],
    demands: np.ndarray | None = None,
    capacity: float | None = None,
    max_winners: int | None = None,
    *,
    order: np.ndarray | None = None,
    counts: np.ndarray | None = None,
) -> list[dict[int, float]]:
    """Row-wise :func:`greedy_critical_scores` over ``(R, N)`` matrices.

    ``allocations[r]`` must be row ``r``'s greedy allocation
    (column-indexed, e.g. from
    :func:`~repro.core.winner_determination.solve_greedy_batch`), and
    non-candidate entries must have non-positive scores — the same contract
    as the batch solver.  Results are bit-identical to calling the scalar
    engine row by row (pinned on ties-heavy instances in the test suite);
    the per-row sort and problem construction the scalar loop would repeat
    are replaced by one shared :func:`greedy_order_batch` lexsort (pass
    ``order``/``counts`` to reuse the solver's) plus batched
    demand/density gathers.

    Without a knapsack constraint the whole batch is answered closed-form:
    every winner of a row is displaced by the same competitor — the
    candidate left at greedy position ``max_winners`` once the winner is
    removed — so one gather of those displacer scores covers all rows.
    Under a knapsack constraint the per-winner displacement scan (which
    short-circuits at the displacing competitor) still runs in Python, but
    off the shared precomputed order/demand/density rows.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 2:
        raise ValueError(f"scores must be 2-D, got shape {scores.shape}")
    if (demands is None) != (capacity is None):
        raise ValueError("demands and capacity must be both set or both None")
    if len(allocations) != scores.shape[0]:
        raise ValueError(
            f"{len(allocations)} allocations for {scores.shape[0]} score rows"
        )
    if demands is not None:
        demands = np.asarray(demands, dtype=float)
        if demands.shape != scores.shape:
            raise ValueError(
                f"demands shape {demands.shape} != scores shape {scores.shape}"
            )
    num_rounds = scores.shape[0]
    if order is None or counts is None:
        order, counts = greedy_order_batch(scores, demands)

    if demands is None:
        if max_winners is None:
            # Nothing can ever displace a winner: every other candidate is
            # processed but the cardinality never binds.
            return [
                {index: 0.0 for index in allocation.selected}
                for allocation in allocations
            ]
        displacer = np.zeros(num_rounds)
        displaced_rows = np.flatnonzero(counts > max_winners)
        if displaced_rows.size:
            displacer[displaced_rows] = scores[
                displaced_rows, order[displaced_rows, max_winners]
            ]
        return [
            {
                index: _clamp(float(displacer[r]), float(scores[r, index]))
                for index in allocations[r].selected
            }
            for r in range(num_rounds)
        ]

    ordered_demands = np.take_along_axis(demands, order, axis=1)
    ordered_scores = np.take_along_axis(scores, order, axis=1)
    ordered_density = ordered_scores / np.where(
        ordered_demands > 0, ordered_demands, 1.0
    )
    out: list[dict[int, float]] = []
    for r in range(num_rounds):
        selected = allocations[r].selected
        if not selected:
            out.append({})
            continue
        npos = int(counts[r])
        order_row = order[r, :npos].tolist()
        demand_row = ordered_demands[r, :npos].tolist()
        density_row = ordered_density[r, :npos].tolist()
        critical: dict[int, float] = {}
        for index in selected:
            own_demand = float(demands[r, index])
            remaining = capacity
            count = 0
            sigma = 0.0
            for pos in range(npos):
                if order_row[pos] == index:
                    continue
                # Process the other candidate under greedy skip semantics.
                if demand_row[pos] > remaining + _EPS:
                    continue
                remaining -= demand_row[pos]
                count += 1
                # Would the winner, arriving after this candidate, still fit?
                if (max_winners is not None and count >= max_winners) or (
                    own_demand > remaining + _EPS
                ):
                    sigma = density_row[pos] * own_demand
                    break
            critical[index] = _clamp(sigma, float(scores[r, index]))
        out.append(critical)
    return out


def critical_scores_by_search(
    problem: WinnerDeterminationProblem,
    allocation: Allocation,
    *,
    solver: Solver = solve_greedy,
    tolerance: float = 1e-9,
    max_iterations: int = 100,
) -> dict[int, float]:
    """Critical scores of all winners under a monotone allocation rule.

    For each winner, bisect on its score over ``(0, score_i]`` to find the
    threshold below which the rule stops selecting it.  Requires the rule to
    be monotone (selected at score ``s`` implies selected at every score
    ``> s``); the library's greedy solver satisfies this (verified
    property-based in the test suite).

    The returned value is a score at which the client *still wins* (the
    lower end of the final bisection bracket), so converting it to a bid
    never charges less than required for the client to win.

    This is the general-purpose fallback and the oracle the analytic
    :func:`greedy_critical_scores` engine is tested against; the mechanism
    hot path no longer calls it for the built-in greedy rule.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be > 0, got {tolerance}")
    critical: dict[int, float] = {}
    for index in allocation.selected:
        original = problem.scores[index]
        low, high = 0.0, original  # wins at `high`; never wins at score <= 0
        for _ in range(max_iterations):
            if high - low <= tolerance * max(1.0, abs(original)):
                break
            mid = 0.5 * (low + high)
            if index in solver(problem.with_score(index, mid)).selected:
                high = mid
            else:
                low = mid
        critical[index] = high
    return critical


def _to_payments(
    critical_scores: dict[int, float],
    weights: dict[int, float],
    cost_weight: float,
) -> dict[int, float]:
    if cost_weight <= 0:
        raise ValueError(f"cost_weight must be > 0, got {cost_weight}")
    return {
        index: (weights[index] - sigma) / cost_weight
        for index, sigma in critical_scores.items()
    }


def clarke_payments(
    problem: WinnerDeterminationProblem,
    allocation: Allocation,
    weights: dict[int, float],
    cost_weight: float,
    *,
    solver: Solver | None = None,
) -> dict[int, float]:
    """Monetary Clarke payments for the affine score map.

    ``weights[i]`` is the bid-independent part ``w_i`` of candidate ``i``'s
    score (``score_i = w_i - cost_weight * bid_i``).  The payment to winner
    ``i`` is its critical bid ``(w_i - sigma_i) / cost_weight``.
    """
    critical = clarke_critical_scores(problem, allocation, solver=solver)
    return _to_payments(critical, weights, cost_weight)


def critical_value_payments(
    problem: WinnerDeterminationProblem,
    allocation: Allocation,
    weights: dict[int, float],
    cost_weight: float,
    *,
    solver: Solver = solve_greedy,
    tolerance: float = 1e-9,
) -> dict[int, float]:
    """Monetary critical-value payments for a monotone allocation rule.

    With the built-in greedy rule (the default ``solver``) the critical
    scores come from the analytic engine; custom monotone rules fall back
    to bisection.
    """
    if solver is solve_greedy:
        critical = greedy_critical_scores(problem, allocation)
    else:
        critical = critical_scores_by_search(
            problem, allocation, solver=solver, tolerance=tolerance
        )
    return _to_payments(critical, weights, cost_weight)
