"""Payment rules as *critical-score* computations.

Both payment rules in the library reduce to finding, for each winner, the
**critical score**: the lowest selection score at which the winner would
still be selected, holding everyone else fixed.  Because a client's score is
an affine, strictly decreasing function of its bid
(``score_i = w_i - lambda * b_i`` with ``lambda > 0``), a critical score
``sigma_i`` converts to the *critical bid* ``(w_i - sigma_i) / lambda`` — the
highest bid at which the client still wins — and a truthful mechanism pays
exactly that.

* :func:`clarke_critical_scores` — closed form for exact winner
  determination; equals the classic Clarke pivot payment and is exactly
  truthful.
* :func:`critical_scores_by_search` — bisection against any *monotone*
  allocation rule (used with the greedy solver); truthful whenever the rule
  is monotone.

:func:`clarke_payments` / :func:`critical_value_payments` wrap these into
monetary payments given the affine score map.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.winner_determination import (
    Allocation,
    WinnerDeterminationProblem,
    solve,
    solve_greedy,
)

__all__ = [
    "clarke_critical_scores",
    "critical_scores_by_search",
    "clarke_payments",
    "critical_value_payments",
]

Solver = Callable[[WinnerDeterminationProblem], Allocation]


def clarke_critical_scores(
    problem: WinnerDeterminationProblem,
    allocation: Allocation,
    *,
    solver: Solver | None = None,
) -> dict[int, float]:
    """Critical scores of all winners under exact winner determination.

    For winner ``i`` with companion score
    ``M_i = W(S*) - score_i`` and best objective without ``i`` equal to
    ``W_{-i}``, the critical score is ``sigma_i = W_{-i} - M_i``:
    ``i`` is selected exactly when ``score_i >= sigma_i``.  Properties (both
    guaranteed by optimality of ``S*`` and feasibility of ``S* \\ {i}``):

    * ``0 <= sigma_i <= score_i`` — hence payments are individually rational.
    """
    if solver is None:
        solver = lambda p: solve(p, "exact")  # noqa: E731 - tiny local adapter
    critical: dict[int, float] = {}
    for index in allocation.selected:
        companion = allocation.objective - problem.scores[index]
        without = solver(problem.without(index))
        sigma = without.objective - companion
        # Clamp numerical noise into the theoretically guaranteed interval.
        sigma = min(max(sigma, 0.0), problem.scores[index])
        critical[index] = sigma
    return critical


def critical_scores_by_search(
    problem: WinnerDeterminationProblem,
    allocation: Allocation,
    *,
    solver: Solver = solve_greedy,
    tolerance: float = 1e-9,
    max_iterations: int = 100,
) -> dict[int, float]:
    """Critical scores of all winners under a monotone allocation rule.

    For each winner, bisect on its score over ``(0, score_i]`` to find the
    threshold below which the rule stops selecting it.  Requires the rule to
    be monotone (selected at score ``s`` implies selected at every score
    ``> s``); the library's greedy solver satisfies this (verified
    property-based in the test suite).

    The returned value is a score at which the client *still wins* (the
    lower end of the final bisection bracket), so converting it to a bid
    never charges less than required for the client to win.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be > 0, got {tolerance}")
    critical: dict[int, float] = {}
    for index in allocation.selected:
        original = problem.scores[index]
        low, high = 0.0, original  # wins at `high`; never wins at score <= 0
        for _ in range(max_iterations):
            if high - low <= tolerance * max(1.0, abs(original)):
                break
            mid = 0.5 * (low + high)
            if index in solver(problem.with_score(index, mid)).selected:
                high = mid
            else:
                low = mid
        critical[index] = high
    return critical


def _to_payments(
    critical_scores: dict[int, float],
    weights: dict[int, float],
    cost_weight: float,
) -> dict[int, float]:
    if cost_weight <= 0:
        raise ValueError(f"cost_weight must be > 0, got {cost_weight}")
    return {
        index: (weights[index] - sigma) / cost_weight
        for index, sigma in critical_scores.items()
    }


def clarke_payments(
    problem: WinnerDeterminationProblem,
    allocation: Allocation,
    weights: dict[int, float],
    cost_weight: float,
    *,
    solver: Solver | None = None,
) -> dict[int, float]:
    """Monetary Clarke payments for the affine score map.

    ``weights[i]`` is the bid-independent part ``w_i`` of candidate ``i``'s
    score (``score_i = w_i - cost_weight * bid_i``).  The payment to winner
    ``i`` is its critical bid ``(w_i - sigma_i) / cost_weight``.
    """
    critical = clarke_critical_scores(problem, allocation, solver=solver)
    return _to_payments(critical, weights, cost_weight)


def critical_value_payments(
    problem: WinnerDeterminationProblem,
    allocation: Allocation,
    weights: dict[int, float],
    cost_weight: float,
    *,
    solver: Solver = solve_greedy,
    tolerance: float = 1e-9,
) -> dict[int, float]:
    """Monetary critical-value payments for a monotone allocation rule."""
    critical = critical_scores_by_search(
        problem, allocation, solver=solver, tolerance=tolerance
    )
    return _to_payments(critical, weights, cost_weight)
