"""Lyapunov virtual queues and the drift-plus-penalty controller.

The long-term budget constraint — average payment per round at most ``B`` —
is enforced with the standard Lyapunov machinery:

* a :class:`VirtualQueue` ``Q`` accumulates per-round overspend,
  ``Q(t+1) = max(Q(t) + P(t) - B, 0)``;
* :class:`DriftPlusPenaltyController` turns the constrained problem into the
  per-round weighted objective ``V * welfare - Q(t) * payment`` by handing
  the auction the weights ``value_weight = V`` and
  ``cost_weight = V + Q(t)``.

The classic trade-off follows: a larger ``V`` puts more emphasis on welfare
and achieves an ``O(1/V)`` optimality gap at the price of an ``O(V)`` queue
backlog (i.e. transient budget violation); the queue-length bound implies
that the long-run average spend converges to at most ``B``.  Benchmark E4
reproduces this trade-off empirically.
"""

from __future__ import annotations

from repro.utils.validation import check_non_negative, check_positive

__all__ = ["VirtualQueue", "BudgetQueue", "DriftPlusPenaltyController"]


class VirtualQueue:
    """A scalar virtual queue ``Q(t+1) = max(Q(t) + arrival - service, 0)``.

    Tracks its full backlog history so analysis code can plot trajectories
    and compute time averages without re-simulation.
    """

    def __init__(self, initial: float = 0.0) -> None:
        self._backlog = check_non_negative("initial", initial)
        self._history: list[float] = [self._backlog]
        self._total_arrivals = 0.0
        self._total_service = 0.0
        self._steps = 0

    @property
    def backlog(self) -> float:
        """Current queue length ``Q(t)``."""
        return self._backlog

    @property
    def history(self) -> tuple[float, ...]:
        """Backlog after each update, starting with the initial value."""
        return tuple(self._history)

    @property
    def steps(self) -> int:
        """Number of updates applied so far."""
        return self._steps

    def update(self, arrival: float, service: float) -> float:
        """Apply one queue update and return the new backlog."""
        check_non_negative("arrival", arrival)
        check_non_negative("service", service)
        self._backlog = max(self._backlog + arrival - service, 0.0)
        self._history.append(self._backlog)
        self._total_arrivals += arrival
        self._total_service += service
        self._steps += 1
        return self._backlog

    def average_arrival(self) -> float:
        """Time-average arrival rate over all updates (0 before any update)."""
        return self._total_arrivals / self._steps if self._steps else 0.0

    def average_service(self) -> float:
        """Time-average service rate over all updates (0 before any update)."""
        return self._total_service / self._steps if self._steps else 0.0

    def is_rate_stable(self, slack: float = 0.0) -> bool:
        """Empirical rate stability: ``Q(T)/T <= slack``.

        A mean-rate-stable queue certifies that the long-run constraint
        ``average_arrival <= average_service`` holds up to ``Q(T)/T``.
        """
        if self._steps == 0:
            return True
        return self._backlog / self._steps <= slack + 1e-12

    def reset(self, initial: float = 0.0) -> None:
        """Reset to a fresh queue with backlog ``initial``."""
        self._backlog = check_non_negative("initial", initial)
        self._history = [self._backlog]
        self._total_arrivals = 0.0
        self._total_service = 0.0
        self._steps = 0

    def __repr__(self) -> str:
        return f"VirtualQueue(backlog={self._backlog:.4g}, steps={self._steps})"


class BudgetQueue(VirtualQueue):
    """Virtual queue tracking overspend against a per-round budget.

    ``record_spend(p)`` performs ``Q <- max(Q + p - budget_per_round, 0)``.
    """

    def __init__(self, budget_per_round: float, initial: float = 0.0) -> None:
        super().__init__(initial)
        self.budget_per_round = check_positive("budget_per_round", budget_per_round)

    def record_spend(self, payment_total: float) -> float:
        """Record one round's total payment and return the new backlog."""
        return self.update(payment_total, self.budget_per_round)

    def average_spend(self) -> float:
        """Time-average payment per round so far."""
        return self.average_arrival()

    def spend_bound(self) -> float:
        """Certified bound on average spend: ``budget + Q(T)/T``."""
        if self.steps == 0:
            return self.budget_per_round
        return self.budget_per_round + self.backlog / self.steps

    def __repr__(self) -> str:
        return (
            f"BudgetQueue(budget_per_round={self.budget_per_round}, "
            f"backlog={self.backlog:.4g}, steps={self.steps})"
        )


class DriftPlusPenaltyController:
    """Maps queue state to the per-round auction weights.

    Parameters
    ----------
    v:
        The Lyapunov trade-off parameter ``V > 0``.  Large ``V`` prioritises
        welfare (small optimality gap, large transient overspend); small
        ``V`` prioritises the budget.
    budget_per_round:
        Long-term average payment budget ``B`` per round.
    """

    def __init__(self, v: float, budget_per_round: float) -> None:
        self.v = check_positive("v", v)
        self.queue = BudgetQueue(budget_per_round)

    @property
    def value_weight(self) -> float:
        """Weight on valuations in the per-round objective (``V``)."""
        return self.v

    @property
    def cost_weight(self) -> float:
        """Weight on bids/payments in the per-round objective (``V + Q(t)``)."""
        return self.v + self.queue.backlog

    def post_round(self, payment_total: float) -> float:
        """Feed back the realised spend of the round; returns new backlog."""
        return self.queue.record_spend(payment_total)

    def reset(self) -> None:
        """Reset the budget queue to empty."""
        self.queue.reset()

    def __repr__(self) -> str:
        return (
            f"DriftPlusPenaltyController(v={self.v}, "
            f"budget_per_round={self.queue.budget_per_round}, "
            f"backlog={self.queue.backlog:.4g})"
        )
