"""Lyapunov virtual queues and the drift-plus-penalty controller.

The long-term budget constraint — average payment per round at most ``B`` —
is enforced with the standard Lyapunov machinery:

* a :class:`VirtualQueue` ``Q`` accumulates per-round overspend,
  ``Q(t+1) = max(Q(t) + P(t) - B, 0)``;
* :class:`DriftPlusPenaltyController` turns the constrained problem into the
  per-round weighted objective ``V * welfare - Q(t) * payment`` by handing
  the auction the weights ``value_weight = V`` and
  ``cost_weight = V + Q(t)``.

The classic trade-off follows: a larger ``V`` puts more emphasis on welfare
and achieves an ``O(1/V)`` optimality gap at the price of an ``O(V)`` queue
backlog (i.e. transient budget violation); the queue-length bound implies
that the long-run average spend converges to at most ``B``.  Benchmark E4
reproduces this trade-off empirically.

Queues are built to live inside a *long-running server* as well as a
closed-horizon simulation: the per-update backlog trace is kept in a
bounded ring (:data:`DEFAULT_HISTORY_LIMIT` entries by default, full
history opt-in via ``history_limit=None``), while the statistics analysis
code actually consumes — time averages, the peak backlog, the spend
certificate — are maintained as exact running aggregates that never
depend on the retained window.  Queue state round-trips through
:meth:`VirtualQueue.state_dict` / :meth:`VirtualQueue.load_state_dict`
bit-identically, which is what lets an auction service snapshot a market's
budget backlog to disk and resume it after a restart.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "DEFAULT_HISTORY_LIMIT",
    "VirtualQueue",
    "BudgetQueue",
    "DriftPlusPenaltyController",
]

#: Backlog-trace entries retained by default.  Generous enough that every
#: closed-horizon experiment in the repo (≤ a few thousand rounds) keeps its
#: complete trajectory, small enough that a server running millions of
#: rounds holds O(1) memory per queue.
DEFAULT_HISTORY_LIMIT = 4096


class VirtualQueue:
    """A scalar virtual queue ``Q(t+1) = max(Q(t) + arrival - service, 0)``.

    Tracks the backlog trajectory so analysis code can plot trajectories
    and compute time averages without re-simulation.  The trajectory is
    bounded to the most recent ``history_limit`` entries (pass ``None`` to
    opt into the full unbounded history for analysis runs); the scalar
    statistics — :meth:`average_arrival`, :meth:`average_service`,
    :meth:`average_backlog`, :attr:`peak_backlog`, the rate-stability
    certificate — are exact running aggregates regardless of how much of
    the trace is retained.
    """

    def __init__(
        self,
        initial: float = 0.0,
        *,
        history_limit: int | None = DEFAULT_HISTORY_LIMIT,
    ) -> None:
        self._backlog = check_non_negative("initial", initial)
        if history_limit is not None and history_limit < 1:
            raise ValueError(f"history_limit must be >= 1 or None, got {history_limit}")
        self._history_limit = history_limit
        self._history: deque[float] = deque([self._backlog], maxlen=history_limit)
        self._total_arrivals = 0.0
        self._total_service = 0.0
        self._steps = 0
        self._backlog_sum = self._backlog
        self._peak = self._backlog

    @property
    def backlog(self) -> float:
        """Current queue length ``Q(t)``."""
        return self._backlog

    @property
    def history(self) -> tuple[float, ...]:
        """Backlog after each update, starting with the initial value.

        When the queue is bounded (the default) only the most recent
        ``history_limit`` entries are retained; construct with
        ``history_limit=None`` when the full trajectory matters.
        """
        return tuple(self._history)

    @property
    def history_limit(self) -> int | None:
        """Retained-trace bound (``None`` = full history)."""
        return self._history_limit

    @property
    def steps(self) -> int:
        """Number of updates applied so far."""
        return self._steps

    @property
    def peak_backlog(self) -> float:
        """Largest backlog ever observed (exact, independent of bounding)."""
        return self._peak

    def update(self, arrival: float, service: float) -> float:
        """Apply one queue update and return the new backlog."""
        check_non_negative("arrival", arrival)
        check_non_negative("service", service)
        self._backlog = max(self._backlog + arrival - service, 0.0)
        self._history.append(self._backlog)
        self._total_arrivals += arrival
        self._total_service += service
        self._steps += 1
        self._backlog_sum += self._backlog
        if self._backlog > self._peak:
            self._peak = self._backlog
        return self._backlog

    def average_arrival(self) -> float:
        """Time-average arrival rate over all updates (0 before any update)."""
        return self._total_arrivals / self._steps if self._steps else 0.0

    def average_service(self) -> float:
        """Time-average service rate over all updates (0 before any update)."""
        return self._total_service / self._steps if self._steps else 0.0

    def average_backlog(self) -> float:
        """Time-average backlog over the whole trajectory (incl. initial).

        Equal to ``sum(history) / len(history)`` of an unbounded queue, but
        computed from a running sum so it stays exact after the retained
        trace is clipped.
        """
        return self._backlog_sum / (self._steps + 1)

    def is_rate_stable(self, slack: float = 0.0) -> bool:
        """Empirical rate stability: ``Q(T)/T <= slack``.

        A mean-rate-stable queue certifies that the long-run constraint
        ``average_arrival <= average_service`` holds up to ``Q(T)/T``.
        """
        if self._steps == 0:
            return True
        return self._backlog / self._steps <= slack + 1e-12

    def reset(self, initial: float = 0.0) -> None:
        """Reset to a fresh queue with backlog ``initial``."""
        self._backlog = check_non_negative("initial", initial)
        self._history = deque([self._backlog], maxlen=self._history_limit)
        self._total_arrivals = 0.0
        self._total_service = 0.0
        self._steps = 0
        self._backlog_sum = self._backlog
        self._peak = self._backlog

    def state_dict(self) -> dict[str, Any]:
        """Serializable snapshot of the queue's dynamic state.

        Round-trips bit-identically through :meth:`load_state_dict` (the
        retained trace travels verbatim), so a restored queue produces
        exactly the decisions and statistics the original would have.
        Configuration (the history bound) is *not* state; it belongs to
        whoever constructs the queue.
        """
        return {
            "backlog": self._backlog,
            "steps": self._steps,
            "total_arrivals": self._total_arrivals,
            "total_service": self._total_service,
            "backlog_sum": self._backlog_sum,
            "peak": self._peak,
            "history": list(self._history),
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore dynamic state captured by :meth:`state_dict`."""
        try:
            backlog = float(state["backlog"])
            steps = int(state["steps"])
            history = [float(value) for value in state["history"]]
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(f"malformed VirtualQueue state: {error}") from error
        if not history or history[-1] != backlog:
            raise ValueError(
                "malformed VirtualQueue state: history tail does not match backlog"
            )
        self._backlog = check_non_negative("backlog", backlog)
        self._steps = steps
        self._total_arrivals = float(state["total_arrivals"])
        self._total_service = float(state["total_service"])
        self._backlog_sum = float(state["backlog_sum"])
        self._peak = float(state["peak"])
        self._history = deque(history, maxlen=self._history_limit)

    def __repr__(self) -> str:
        return f"VirtualQueue(backlog={self._backlog:.4g}, steps={self._steps})"


class BudgetQueue(VirtualQueue):
    """Virtual queue tracking overspend against a per-round budget.

    ``record_spend(p)`` performs ``Q <- max(Q + p - budget_per_round, 0)``.
    """

    def __init__(
        self,
        budget_per_round: float,
        initial: float = 0.0,
        *,
        history_limit: int | None = DEFAULT_HISTORY_LIMIT,
    ) -> None:
        super().__init__(initial, history_limit=history_limit)
        self.budget_per_round = check_positive("budget_per_round", budget_per_round)

    def record_spend(self, payment_total: float) -> float:
        """Record one round's total payment and return the new backlog."""
        return self.update(payment_total, self.budget_per_round)

    def average_spend(self) -> float:
        """Time-average payment per round so far."""
        return self.average_arrival()

    def spend_bound(self) -> float:
        """Certified bound on average spend: ``budget + Q(T)/T``."""
        if self.steps == 0:
            return self.budget_per_round
        return self.budget_per_round + self.backlog / self.steps

    def __repr__(self) -> str:
        return (
            f"BudgetQueue(budget_per_round={self.budget_per_round}, "
            f"backlog={self.backlog:.4g}, steps={self.steps})"
        )


class DriftPlusPenaltyController:
    """Maps queue state to the per-round auction weights.

    Parameters
    ----------
    v:
        The Lyapunov trade-off parameter ``V > 0``.  Large ``V`` prioritises
        welfare (small optimality gap, large transient overspend); small
        ``V`` prioritises the budget.
    budget_per_round:
        Long-term average payment budget ``B`` per round.
    history_limit:
        Backlog-trace bound of the underlying queue (``None`` = unbounded,
        for analysis runs that plot the whole trajectory).
    """

    def __init__(
        self,
        v: float,
        budget_per_round: float,
        *,
        history_limit: int | None = DEFAULT_HISTORY_LIMIT,
    ) -> None:
        self.v = check_positive("v", v)
        self.queue = BudgetQueue(budget_per_round, history_limit=history_limit)

    @property
    def value_weight(self) -> float:
        """Weight on valuations in the per-round objective (``V``)."""
        return self.v

    @property
    def cost_weight(self) -> float:
        """Weight on bids/payments in the per-round objective (``V + Q(t)``)."""
        return self.v + self.queue.backlog

    def post_round(self, payment_total: float) -> float:
        """Feed back the realised spend of the round; returns new backlog."""
        return self.queue.record_spend(payment_total)

    def reset(self) -> None:
        """Reset the budget queue to empty."""
        self.queue.reset()

    def __repr__(self) -> str:
        return (
            f"DriftPlusPenaltyController(v={self.v}, "
            f"budget_per_round={self.queue.budget_per_round}, "
            f"backlog={self.queue.backlog:.4g})"
        )
