"""The single-round weighted (affine-maximizer) VCG reverse auction.

This is the per-round engine that the long-term mechanism
(:mod:`repro.core.longterm_vcg`) instantiates with time-varying weights.  In
round ``t`` every candidate ``i`` receives a selection score

    ``score_i = value_weight * v_i + offset_i - cost_weight * b_i``

where ``v_i`` is the server's valuation, ``offset_i`` is a bid-independent
bonus (used for sustainability queues), ``b_i`` the submitted bid, and the
two weights come from the drift-plus-penalty controller
(``value_weight = V``, ``cost_weight = V + Q(t)``).  The winner set maximises
the total score subject to cardinality / knapsack constraints, and winners
are paid their *critical bid*:

* with exact winner determination, via Clarke pivot payments — the mechanism
  is then an affine maximizer and hence dominant-strategy truthful and
  individually rational;
* with greedy winner determination, via critical-value payments — truthful
  whenever the greedy rule is monotone, which the density greedy satisfies.

Payments run through the incremental engines of :mod:`repro.core.payments`
(closed-form / prefix-suffix-DP Clarke pivots, analytic greedy criticals),
so a round costs one winner-determination solve plus O(n log n)-ish payment
work rather than one re-solve (or bisection search) per winner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro import telemetry
from repro.core.bids import AuctionRound, RoundBatch
from repro.core.payments import (
    clarke_critical_scores,
    greedy_critical_scores,
    greedy_critical_scores_batch,
    knapsack_clarke_critical_scores,
    top_k_critical_scores,
    top_k_critical_sigmas_flat,
)
from repro.core.winner_determination import (
    Allocation,
    SolveCache,
    WinnerDeterminationProblem,
    exact_method_for,
    greedy_order_batch,
    solve,
    solve_greedy_batch,
    solve_knapsack_dp_rows,
    solve_top_k_batch,
)
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["SingleRoundVCGAuction", "VCGAuctionResult"]


@dataclass(frozen=True)
class VCGAuctionResult:
    """Outcome of one weighted VCG auction.

    Attributes
    ----------
    selected:
        Winning client ids, sorted ascending.
    payments:
        Monetary payment per winner (client id keyed).
    objective:
        The optimal (or greedy) drift-plus-penalty objective value.
    scores:
        The selection score of every candidate (client id keyed).
    declared_welfare:
        ``sum(v_i - b_i)`` over winners — social welfare *as declared*; equals
        true welfare when clients bid truthfully.
    """

    selected: tuple[int, ...]
    payments: Mapping[int, float]
    objective: float
    scores: Mapping[int, float] = field(default_factory=dict)
    declared_welfare: float = 0.0

    @property
    def total_payment(self) -> float:
        """Total money paid to winners."""
        return float(sum(self.payments.values()))


class SingleRoundVCGAuction:
    """Weighted VCG auction with configurable winner determination.

    Parameters
    ----------
    value_weight:
        Multiplier on server valuations (the Lyapunov ``V``); must be > 0.
    cost_weight:
        Multiplier on bids (``V + Q(t)``); must be > 0.
    offsets:
        Optional bid-independent per-client score bonuses (sustainability
        queue backlogs).  Missing clients default to 0.
    max_winners:
        Cardinality cap per round, or ``None``.
    demands:
        Optional per-client resource demand for a knapsack constraint.
    capacity:
        Knapsack capacity (must accompany ``demands``).
    wd_method:
        ``"exact"`` (Clarke payments) or ``"greedy"`` (critical-value
        payments); ``"dp"``/``"brute-force"``/``"top-k"`` force a specific
        exact solver.
    reserve_price:
        Optional per-client payment cap.  Bids above the reserve are
        rejected outright and winner payments are capped at the reserve —
        equivalent to the auctioneer adding a posted ceiling, which
        preserves truthfulness (a client wins iff its bid is at most
        ``min(critical bid, reserve)`` and is paid exactly that threshold).
    solve_cache:
        Optional :class:`~repro.core.winner_determination.SolveCache`
        threaded through winner determination and payment re-solves.  Pass
        a shared cache to reuse solutions across rounds (the long-term
        mechanism does); by default each auction gets a private cache so the
        same instance is never solved twice within a round.

    Payments use the incremental engines in :mod:`repro.core.payments`:
    closed-form pivots under a pure cardinality cap, prefix/suffix DP
    tables under a knapsack constraint, and the analytic one-sort critical
    scores for the greedy rule — per-winner re-solves survive only for the
    small brute-force regime, where they are cheap and share this auction's
    solve cache.
    """

    _EXACT_METHODS = frozenset({"exact", "dp", "brute-force", "top-k"})

    def __init__(
        self,
        *,
        value_weight: float = 1.0,
        cost_weight: float = 1.0,
        offsets: Mapping[int, float] | None = None,
        max_winners: int | None = None,
        demands: Mapping[int, float] | None = None,
        capacity: float | None = None,
        wd_method: str = "exact",
        reserve_price: float | None = None,
        solve_cache: SolveCache | None = None,
    ) -> None:
        self.value_weight = check_positive("value_weight", value_weight)
        self.cost_weight = check_positive("cost_weight", cost_weight)
        self.offsets = dict(offsets or {})
        for client_id, offset in self.offsets.items():
            check_non_negative(f"offsets[{client_id}]", offset)
        self.max_winners = max_winners
        self.demands = dict(demands) if demands is not None else None
        self.capacity = capacity
        if (self.demands is None) != (self.capacity is None):
            raise ValueError("demands and capacity must be both set or both None")
        if wd_method not in self._EXACT_METHODS and wd_method != "greedy":
            raise ValueError(f"unknown wd_method {wd_method!r}")
        self.wd_method = wd_method
        if reserve_price is not None:
            check_positive("reserve_price", reserve_price)
        self.reserve_price = reserve_price
        self.solve_cache = solve_cache if solve_cache is not None else SolveCache()

    def weight_of(self, client_id: int, value: float) -> float:
        """Bid-independent score component ``w_i`` of a client."""
        return self.value_weight * value + self.offsets.get(client_id, 0.0)

    def build_problem(
        self, auction_round: AuctionRound
    ) -> tuple[WinnerDeterminationProblem, list[int]]:
        """Translate a round into a winner-determination problem.

        Returns the problem plus the candidate-index → client-id mapping.
        """
        ids = list(auction_round.client_ids)
        scores = []
        demands: list[float] | None = [] if self.demands is not None else None
        for bid in auction_round.bids:
            weight = self.weight_of(bid.client_id, auction_round.values[bid.client_id])
            scores.append(weight - self.cost_weight * bid.cost)
            if demands is not None:
                try:
                    demands.append(float(self.demands[bid.client_id]))  # type: ignore[index]
                except KeyError:
                    raise KeyError(
                        f"no demand configured for client {bid.client_id}"
                    ) from None
        problem = WinnerDeterminationProblem(
            scores=tuple(scores),
            demands=None if demands is None else tuple(demands),
            capacity=self.capacity,
            max_winners=self.max_winners,
        )
        return problem, ids

    def _solve(self, problem: WinnerDeterminationProblem) -> Allocation:
        return self.solve_cache.solve(problem, self.wd_method)

    def _critical_scores(
        self, problem: WinnerDeterminationProblem, allocation: Allocation
    ) -> dict[int, float]:
        """Per-winner critical scores via the cheapest applicable engine."""
        if self.wd_method == "greedy":
            return greedy_critical_scores(problem, allocation)
        if problem.capacity is None:
            # Every exact method reduces to top-k without a knapsack.
            return top_k_critical_scores(problem, allocation)
        resolved = self.wd_method
        if resolved == "exact":
            # Use the same dispatch rule as winner determination so the
            # "without i" objectives are computed by the same solver that
            # picked the winners.
            resolved = exact_method_for(problem)
        if resolved == "dp":
            return knapsack_clarke_critical_scores(problem, allocation)
        # Small brute-force regime: per-winner re-solves are cheap and go
        # through the cache so repeated instances are never re-enumerated.
        return clarke_critical_scores(problem, allocation, solver=self._solve)

    def _knapsack_exact_batch(
        self, scores: np.ndarray, demands: np.ndarray, num: int
    ) -> tuple[list[Allocation], list[dict[int, float]]]:
        """Winner determination + critical scores for an exact knapsack batch.

        Mirrors the scalar pipeline round for round — same cache keys, same
        allocations, same pivots — but rounds whose (uncached) instance
        resolves to the DP solver are collected and solved as one stacked DP
        (:func:`solve_knapsack_dp_rows`) instead of one table fill per
        round.  Brute-force-sized instances keep the scalar solver.
        """
        problems: list[WinnerDeterminationProblem] = []
        allocations: list[Allocation] = [None] * num  # type: ignore[list-item]
        pending: list[int] = []
        for r in range(num):
            problem = WinnerDeterminationProblem._unchecked(
                scores[r], demands[r], self.capacity, self.max_winners
            )
            problems.append(problem)
            cached = self.solve_cache.lookup(problem, self.wd_method)
            if cached is not None:
                allocations[r] = cached
                continue
            resolved = self.wd_method
            if resolved == "exact":
                resolved = exact_method_for(problem)
            if resolved == "dp":
                pending.append(r)
            else:
                allocation = solve(problem, resolved)
                self.solve_cache.store(problem, self.wd_method, allocation)
                allocations[r] = allocation
        if pending:
            with telemetry.span("wd_solve_batch"):
                solved = solve_knapsack_dp_rows([problems[r] for r in pending])
            for r, allocation in zip(pending, solved):
                self.solve_cache.store(problems[r], self.wd_method, allocation)
                allocations[r] = allocation
        criticals = [
            self._critical_scores(problems[r], allocations[r]) for r in range(num)
        ]
        return allocations, criticals

    def run(self, auction_round: AuctionRound) -> VCGAuctionResult:
        """Run the auction: select winners and compute truthful payments."""
        with telemetry.span("auction"):
            return self._run(auction_round)

    def _run(self, auction_round: AuctionRound) -> VCGAuctionResult:
        if self.reserve_price is not None:
            for bid in tuple(auction_round.bids):
                if bid.cost > self.reserve_price + 1e-12:
                    auction_round = auction_round.without_client(bid.client_id)
            if not auction_round.bids:
                return VCGAuctionResult(
                    selected=(), payments={}, objective=0.0,
                    scores={}, declared_welfare=0.0,
                )
        problem, ids = self.build_problem(auction_round)
        allocation = self._solve(problem)

        critical = self._critical_scores(problem, allocation)
        payments_by_index = {
            index: (
                self.weight_of(ids[index], auction_round.values[ids[index]]) - sigma
            )
            / self.cost_weight
            for index, sigma in critical.items()
        }

        selected_ids = tuple(sorted(ids[index] for index in allocation.selected))
        payments = {}
        for index, payment in payments_by_index.items():
            client_id = ids[index]
            payment = max(payment, auction_round.bid_of(client_id).cost)
            if self.reserve_price is not None:
                payment = min(payment, self.reserve_price)
            payments[client_id] = payment
        scores = {
            ids[index]: float(problem.scores[index]) for index in range(problem.size)
        }
        declared_welfare = sum(
            auction_round.values[client_id] - auction_round.bid_of(client_id).cost
            for client_id in selected_ids
        )
        return VCGAuctionResult(
            selected=selected_ids,
            payments=payments,
            objective=allocation.objective,
            scores=scores,
            declared_welfare=float(declared_welfare),
        )

    @staticmethod
    def _lookup_matrix(
        ids: np.ndarray, active: np.ndarray, getter
    ) -> np.ndarray:
        """Per-cell ``getter(client_id)`` over an id matrix (0 where inactive)."""
        out = np.zeros(ids.shape, dtype=float)
        if not active.any():
            return out
        unique = np.unique(ids[active])
        table = np.fromiter(
            (getter(int(i)) for i in unique), dtype=float, count=unique.size
        )
        filled = np.where(active, ids, unique[0])
        np.copyto(out, table[np.searchsorted(unique, filled)], where=active)
        return out

    def run_batch(
        self, batch: RoundBatch, *, with_scores: bool = False
    ) -> list[VCGAuctionResult]:
        """Run this auction independently on every round of a batch.

        Equivalent to ``[self.run(r) for r in batch]`` — same winners,
        payments and diagnostics bit for bit (pinned property-based in the
        test suite) — but the per-round problem construction, the winner
        determination and (without a knapsack constraint) the Clarke pivots
        run as stacked matrix operations.  Knapsack instances under an exact
        method fall back to the scalar per-round pipeline, which still
        shares this auction's solve cache.

        The per-candidate :attr:`VCGAuctionResult.scores` mapping is built
        only when ``with_scores`` is set — it is O(candidates) per round and
        the batched callers (probes, batched simulation) never read it.
        """
        with telemetry.span("auction_batch"):
            return self._run_batch(batch, with_scores=with_scores)

    def _run_batch(
        self, batch: RoundBatch, *, with_scores: bool = False
    ) -> list[VCGAuctionResult]:
        num = len(batch)
        if num == 0:
            return []
        ids = batch.client_ids
        active = batch.mask
        if self.reserve_price is not None:
            # Bids above the reserve are rejected outright; forcing their
            # score to the never-selected 0 is equivalent to the scalar
            # path's removal (relative candidate order is preserved).
            active = active & (batch.costs <= self.reserve_price + 1e-12)
        if self.offsets:
            offsets = self._lookup_matrix(
                ids, active, lambda cid: self.offsets.get(cid, 0.0)
            )
        else:
            offsets = 0.0
        weights = self.value_weight * batch.values + offsets
        scores = np.where(active, weights - self.cost_weight * batch.costs, 0.0)

        demands = None
        if self.demands is not None:
            def demand_of(cid: int) -> float:
                try:
                    return float(self.demands[cid])  # type: ignore[index]
                except KeyError:
                    raise KeyError(f"no demand configured for client {cid}") from None

            demands = self._lookup_matrix(ids, active, demand_of)

        criticals: list[dict[int, float]] | None = None
        if self.wd_method == "greedy":
            # One lexsort shared by winner determination and the batched
            # critical-score engine (previously the criticals re-sorted and
            # re-scanned every round through the scalar engine).
            order, counts = greedy_order_batch(scores, demands)
            allocations = solve_greedy_batch(
                scores, demands, self.capacity, self.max_winners,
                order=order, counts=counts,
            )
            criticals = greedy_critical_scores_batch(
                scores, allocations, demands, self.capacity, self.max_winners,
                order=order, counts=counts,
            )
        elif self.capacity is None:
            # Every exact method reduces to top-k without a knapsack; the
            # Clarke sigmas are computed flat below.
            allocations = solve_top_k_batch(scores, self.max_winners)
        else:
            # Exact + knapsack: stacked DP over the cache misses.
            allocations, criticals = self._knapsack_exact_batch(scores, demands, num)

        # One winner-major gather instead of per-round numpy scalar reads:
        # every winner's (id, cost, value, weight, sigma) lands in flat
        # Python lists, and the per-round loop below only slices them.
        winner_counts = [len(allocation.selected) for allocation in allocations]
        rows = np.repeat(np.arange(num), winner_counts)
        columns = np.fromiter(
            (
                column
                for allocation in allocations
                for column in allocation.selected
            ),
            dtype=np.int64,
            count=int(rows.size),
        )
        winner_ids = ids[rows, columns].tolist()
        winner_costs = batch.costs[rows, columns].tolist()
        winner_values = batch.values[rows, columns].tolist()
        winner_weights = weights[rows, columns].tolist()
        if criticals is None:
            winner_sigmas = top_k_critical_sigmas_flat(scores, rows, columns).tolist()
        else:
            # Critical-score dicts iterate in allocation.selected order for
            # every engine, so they align with the flat winner arrays.
            winner_sigmas = [
                sigma for r in range(num) for sigma in criticals[r].values()
            ]

        results = []
        start = 0
        for r in range(num):
            end = start + winner_counts[r]
            # Sorted by client id — the scalar path's payment/welfare order.
            winners = sorted(
                zip(
                    winner_ids[start:end],
                    winner_costs[start:end],
                    winner_values[start:end],
                    winner_weights[start:end],
                    winner_sigmas[start:end],
                )
            )
            start = end
            payments: dict[int, float] = {}
            declared_welfare = 0.0
            for client_id, cost, value, weight, sigma in winners:
                payment = (weight - sigma) / self.cost_weight
                payment = max(payment, cost)
                if self.reserve_price is not None:
                    payment = min(payment, self.reserve_price)
                payments[client_id] = payment
                declared_welfare += value - cost
            scores_map = {}
            if with_scores:
                scores_map = {
                    int(ids[r, column]): float(scores[r, column])
                    for column in np.flatnonzero(active[r])
                }
            results.append(
                VCGAuctionResult(
                    selected=tuple(payments),
                    payments=payments,
                    objective=allocations[r].objective,
                    scores=scores_map,
                    declared_welfare=float(declared_welfare),
                )
            )
        return results
