"""Core auction machinery: the Long-Term online VCG mechanism (LT-VCG).

This package contains the paper's primary contribution and its direct
dependencies:

* :mod:`repro.core.bids` — bid and auction-round datatypes,
* :mod:`repro.core.valuation` — server-side client valuation models,
* :mod:`repro.core.winner_determination` — exact and approximate solvers for
  the per-round selection problem,
* :mod:`repro.core.payments` — Clarke (VCG) and critical-value payment rules,
* :mod:`repro.core.vcg` — the single-round weighted VCG auction,
* :mod:`repro.core.lyapunov` — virtual queues and drift-plus-penalty control,
* :mod:`repro.core.sustainability` — per-client participation queues,
* :mod:`repro.core.longterm_vcg` — the full LT-VCG mechanism,
* :mod:`repro.core.properties` — truthfulness / IR / feasibility verifiers,
* :mod:`repro.core.mechanism` — the abstract mechanism interface.
"""

from repro.core.bids import AuctionRound, Bid, RoundOutcome
from repro.core.longterm_vcg import LongTermVCGConfig, LongTermVCGMechanism
from repro.core.lyapunov import BudgetQueue, DriftPlusPenaltyController, VirtualQueue
from repro.core.mechanism import Mechanism
from repro.core.payments import (
    clarke_payments,
    critical_value_payments,
    greedy_critical_scores,
    greedy_critical_scores_batch,
)
from repro.core.properties import (
    verify_individual_rationality,
    verify_monotonicity,
    verify_truthfulness,
)
from repro.core.quality_estimation import LearnedValuation
from repro.core.theory import LyapunovBounds, check_run_against_bounds, lyapunov_bounds
from repro.core.sustainability import ParticipationTracker
from repro.core.valuation import (
    DiminishingReturnsValuation,
    LinearValuation,
    StalenessAwareValuation,
    ValuationModel,
)
from repro.core.vcg import SingleRoundVCGAuction, VCGAuctionResult
from repro.core.winner_determination import (
    Allocation,
    SolveCache,
    WinnerDeterminationProblem,
    solve,
    solve_brute_force,
    solve_greedy,
    solve_knapsack_dp,
    solve_lp_bound,
    solve_top_k,
)

__all__ = [
    "Allocation",
    "AuctionRound",
    "Bid",
    "BudgetQueue",
    "DiminishingReturnsValuation",
    "DriftPlusPenaltyController",
    "LearnedValuation",
    "LinearValuation",
    "LongTermVCGConfig",
    "LongTermVCGMechanism",
    "LyapunovBounds",
    "check_run_against_bounds",
    "lyapunov_bounds",
    "Mechanism",
    "ParticipationTracker",
    "RoundOutcome",
    "SingleRoundVCGAuction",
    "SolveCache",
    "StalenessAwareValuation",
    "VCGAuctionResult",
    "ValuationModel",
    "VirtualQueue",
    "WinnerDeterminationProblem",
    "clarke_payments",
    "critical_value_payments",
    "greedy_critical_scores",
    "greedy_critical_scores_batch",
    "solve",
    "solve_brute_force",
    "solve_greedy",
    "solve_knapsack_dp",
    "solve_lp_bound",
    "solve_top_k",
    "verify_individual_rationality",
    "verify_monotonicity",
    "verify_truthfulness",
]
