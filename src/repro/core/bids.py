"""Bid and round datatypes shared by every mechanism.

A *reverse auction* runs once per federated-learning round: each available
client submits a sealed :class:`Bid` claiming its cost for one round of local
training plus upload, and the server (the single buyer) selects a winner set
and computes payments.  :class:`AuctionRound` packages exactly the
information a mechanism is allowed to see — in particular the clients' *true*
costs are never part of it; only the simulator knows those, which is what
makes truthfulness experiments meaningful.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field, replace
from typing import Mapping

import numpy as np

from repro.utils.validation import check_non_negative

__all__ = ["Bid", "AuctionRound", "RoundBatch", "RoundOutcome"]


@dataclass(frozen=True)
class Bid:
    """A sealed bid from one client for one round.

    Attributes
    ----------
    client_id:
        Stable integer identity of the bidding client.
    cost:
        The client's *claimed* cost (monetary units) for participating in this
        round.  Equal to the true cost only if the client bids truthfully.
    data_size:
        Declared number of local training samples.  Used by the server-side
        valuation model, never by the payment rule directly.
    quality:
        Declared data-quality score in ``[0, 1]`` (e.g. label diversity).
        Also an input to valuation only.
    """

    client_id: int
    cost: float
    data_size: int = 1
    quality: float = 1.0

    def __post_init__(self) -> None:
        if self.client_id < 0:
            raise ValueError(f"client_id must be >= 0, got {self.client_id}")
        check_non_negative("cost", self.cost)
        if self.data_size < 0:
            raise ValueError(f"data_size must be >= 0, got {self.data_size}")
        check_non_negative("quality", self.quality)

    def with_cost(self, cost: float) -> "Bid":
        """Return a copy of this bid with a different claimed cost.

        Used by truthfulness verifiers to construct unilateral deviations.
        """
        return replace(self, cost=cost)


@dataclass(frozen=True)
class AuctionRound:
    """Everything a mechanism may observe when running one round.

    Attributes
    ----------
    index:
        Zero-based round number.
    bids:
        Bids from the clients available this round, in arbitrary order.
        At most one bid per client.
    values:
        Server-side value estimate ``v_i`` for recruiting each bidding
        client, keyed by client id.  Values are derived from declared data
        profiles and selection history — never from the bid's cost — which is
        a prerequisite for truthfulness.
    """

    index: int
    bids: tuple[Bid, ...]
    values: Mapping[int, float]

    def __post_init__(self) -> None:
        ids = [bid.client_id for bid in self.bids]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate client_id in bids")
        missing = [i for i in ids if i not in self.values]
        if missing:
            raise ValueError(f"values missing for client ids {missing}")

    @property
    def client_ids(self) -> tuple[int, ...]:
        """Client ids present this round, in bid order."""
        return tuple(bid.client_id for bid in self.bids)

    def bid_of(self, client_id: int) -> Bid:
        """Return the bid submitted by ``client_id``.

        Raises
        ------
        KeyError
            If the client did not bid this round.
        """
        for bid in self.bids:
            if bid.client_id == client_id:
                return bid
        raise KeyError(f"no bid from client {client_id} in round {self.index}")

    def with_replaced_bid(self, new_bid: Bid) -> "AuctionRound":
        """Return a copy of the round with one client's bid swapped out.

        The deviation primitive used by :mod:`repro.core.properties`.
        """
        if new_bid.client_id not in self.client_ids:
            raise KeyError(f"client {new_bid.client_id} is not part of this round")
        bids = tuple(
            new_bid if bid.client_id == new_bid.client_id else bid for bid in self.bids
        )
        return AuctionRound(index=self.index, bids=bids, values=self.values)

    def without_client(self, client_id: int) -> "AuctionRound":
        """Return a copy of the round with one client removed entirely."""
        bids = tuple(bid for bid in self.bids if bid.client_id != client_id)
        values = {bid.client_id: self.values[bid.client_id] for bid in bids}
        return AuctionRound(index=self.index, bids=bids, values=values)


class RoundBatch:
    """A columnar batch of ``R`` auction rounds (padded ragged layout).

    Row ``r`` holds round ``r``'s bids *in their original bid order* in
    columns ``0..size_r-1``; :attr:`mask` marks the valid columns.  Keeping
    column order equal to bid order is load-bearing: winner-determination
    tie-breaking is positional, so batched solvers reproduce the sequential
    path's tie-breaks exactly.

    The batch is the unit the batched mechanism API consumes
    (:meth:`repro.core.mechanism.Mechanism.run_rounds`).  It can be built
    from materialised :class:`AuctionRound` objects (:meth:`from_rounds`) or
    directly from arrays (:meth:`from_columns`, :meth:`deviations`) —
    the latter is how the truthfulness probes avoid constructing and
    re-validating thousands of near-identical rounds.

    Attributes
    ----------
    indices:
        ``(R,)`` int array of round indices.
    client_ids:
        ``(R, N)`` int array, ``client_ids[r, j]`` is the id of round ``r``'s
        ``j``-th bidder (-1 in padded cells).
    mask:
        ``(R, N)`` bool participation mask.
    costs / values / data_sizes / qualities:
        ``(R, N)`` float/int arrays of the corresponding bid fields and
        server-side values (0 in padded cells).
    """

    __slots__ = (
        "indices",
        "client_ids",
        "mask",
        "costs",
        "values",
        "data_sizes",
        "qualities",
        "_rounds",
    )

    def __init__(
        self,
        indices: np.ndarray,
        client_ids: np.ndarray,
        mask: np.ndarray,
        costs: np.ndarray,
        values: np.ndarray,
        data_sizes: np.ndarray,
        qualities: np.ndarray,
        _rounds: list | None = None,
    ) -> None:
        self.indices = indices
        self.client_ids = client_ids
        self.mask = mask
        self.costs = costs
        self.values = values
        self.data_sizes = data_sizes
        self.qualities = qualities
        self._rounds = _rounds if _rounds is not None else [None] * len(indices)

    @classmethod
    def from_rounds(cls, rounds: Sequence[AuctionRound]) -> "RoundBatch":
        """Stack materialised rounds into a columnar batch."""
        rounds = list(rounds)
        num = len(rounds)
        width = max((len(r.bids) for r in rounds), default=0)
        indices = np.fromiter((r.index for r in rounds), dtype=np.int64, count=num)
        client_ids = np.full((num, width), -1, dtype=np.int64)
        mask = np.zeros((num, width), dtype=bool)
        costs = np.zeros((num, width), dtype=float)
        values = np.zeros((num, width), dtype=float)
        data_sizes = np.zeros((num, width), dtype=np.int64)
        qualities = np.zeros((num, width), dtype=float)
        for r, auction_round in enumerate(rounds):
            for j, bid in enumerate(auction_round.bids):
                client_ids[r, j] = bid.client_id
                mask[r, j] = True
                costs[r, j] = bid.cost
                values[r, j] = auction_round.values[bid.client_id]
                data_sizes[r, j] = bid.data_size
                qualities[r, j] = bid.quality
        return cls(
            indices, client_ids, mask, costs, values, data_sizes, qualities,
            _rounds=list(rounds),
        )

    @classmethod
    def from_columns(
        cls,
        indices: np.ndarray,
        client_ids: np.ndarray,
        mask: np.ndarray,
        costs: np.ndarray,
        values: np.ndarray,
        data_sizes: np.ndarray | None = None,
        qualities: np.ndarray | None = None,
    ) -> "RoundBatch":
        """Build a batch straight from columnar arrays (no round objects).

        All arrays must share the ``(R, N)`` shape of ``mask``; bid fields in
        padded (masked-out) cells are ignored.  ``data_sizes`` defaults to 1
        and ``qualities`` to 1.0, matching :class:`Bid`'s defaults.
        """
        mask = np.asarray(mask, dtype=bool)
        num, width = mask.shape
        indices = np.asarray(indices, dtype=np.int64)
        if indices.shape != (num,):
            raise ValueError(f"indices must have shape ({num},), got {indices.shape}")
        client_ids = np.asarray(client_ids, dtype=np.int64)
        costs = np.asarray(costs, dtype=float)
        values = np.asarray(values, dtype=float)
        for name, array in (("client_ids", client_ids), ("costs", costs), ("values", values)):
            if array.shape != mask.shape:
                raise ValueError(
                    f"{name} must have shape {mask.shape}, got {array.shape}"
                )
        if costs[mask].size and (costs[mask] < 0).any():
            raise ValueError("bid costs must be >= 0")
        if num and width and mask.any():
            # Duplicate-id check, vectorised: padded cells get per-column
            # sentinels strictly below every real id, so after the row sort
            # only genuine duplicates sit adjacent (previously an O(R*N)
            # Python set loop on the truthfulness-probe hot path).
            sentinels = client_ids[mask].min() - 1 - np.arange(width, dtype=np.int64)
            checked = np.sort(np.where(mask, client_ids, sentinels[None, :]), axis=1)
            duplicate_rows = (checked[:, 1:] == checked[:, :-1]).any(axis=1)
            if duplicate_rows.any():
                r = int(np.flatnonzero(duplicate_rows)[0])
                raise ValueError(f"duplicate client_id in batch row {r}")
        if data_sizes is None:
            data_sizes = np.ones((num, width), dtype=np.int64)
        else:
            data_sizes = np.asarray(data_sizes, dtype=np.int64)
        if qualities is None:
            qualities = np.ones((num, width), dtype=float)
        else:
            qualities = np.asarray(qualities, dtype=float)
        for name, array in (("data_sizes", data_sizes), ("qualities", qualities)):
            if array.shape != mask.shape:
                raise ValueError(
                    f"{name} must have shape {mask.shape}, got {array.shape}"
                )
        return cls(indices, client_ids, mask, costs, values, data_sizes, qualities)

    @classmethod
    def deviation_grid(
        cls,
        auction_round: AuctionRound,
        deviations: Sequence[tuple[int, float]],
    ) -> "RoundBatch":
        """Unilateral bid deviations of one base round as a columnar batch.

        Row ``d`` equals ``auction_round`` with client ``deviations[d][0]``'s
        bid cost replaced by ``deviations[d][1]`` — the vector analogue of
        :meth:`AuctionRound.with_replaced_bid` without building ``R`` round
        objects.  A whole truthfulness sweep (every client × every misreport
        factor) is one grid.
        """
        ids = auction_round.client_ids
        column_of = {client_id: column for column, client_id in enumerate(ids)}
        num = len(deviations)
        width = len(ids)
        columns = np.empty(num, dtype=np.int64)
        deviated = np.empty(num, dtype=float)
        for d, (client_id, cost) in enumerate(deviations):
            if client_id not in column_of:
                raise KeyError(f"client {client_id} is not part of this round")
            columns[d] = column_of[client_id]
            deviated[d] = cost
        if deviated.size and (deviated < 0).any():
            raise ValueError("deviated bid costs must be >= 0")
        base_costs = np.fromiter(
            (bid.cost for bid in auction_round.bids), dtype=float, count=width
        )
        costs = np.tile(base_costs, (num, 1))
        costs[np.arange(num), columns] = deviated
        values_row = np.fromiter(
            (auction_round.values[i] for i in ids), dtype=float, count=width
        )
        data_row = np.fromiter(
            (bid.data_size for bid in auction_round.bids), dtype=np.int64, count=width
        )
        quality_row = np.fromiter(
            (bid.quality for bid in auction_round.bids), dtype=float, count=width
        )
        return cls(
            indices=np.full(num, auction_round.index, dtype=np.int64),
            client_ids=np.tile(np.asarray(ids, dtype=np.int64), (num, 1)),
            mask=np.ones((num, width), dtype=bool),
            costs=costs,
            values=np.tile(values_row, (num, 1)),
            data_sizes=np.tile(data_row, (num, 1)),
            qualities=np.tile(quality_row, (num, 1)),
        )

    @classmethod
    def deviations(
        cls,
        auction_round: AuctionRound,
        client_id: int,
        deviated_costs: Sequence[float],
    ) -> "RoundBatch":
        """One client's deviation sweep (a single-client :meth:`deviation_grid`)."""
        return cls.deviation_grid(
            auction_round, [(client_id, cost) for cost in deviated_costs]
        )

    def __len__(self) -> int:
        return int(self.indices.shape[0])

    @property
    def width(self) -> int:
        """Padded column count (the widest round's size)."""
        return int(self.mask.shape[1])

    def sizes(self) -> np.ndarray:
        """Per-round bidder counts."""
        return self.mask.sum(axis=1)

    def index_at(self, r: int) -> int:
        """Round index of batch row ``r``."""
        return int(self.indices[r])

    def round_at(self, r: int) -> AuctionRound:
        """Materialise row ``r`` as an :class:`AuctionRound` (cached)."""
        cached = self._rounds[r]
        if cached is not None:
            return cached
        cols = np.flatnonzero(self.mask[r])
        bids = tuple(
            Bid(
                client_id=int(self.client_ids[r, j]),
                cost=float(self.costs[r, j]),
                data_size=int(self.data_sizes[r, j]),
                quality=float(self.qualities[r, j]),
            )
            for j in cols
        )
        values = {
            int(self.client_ids[r, j]): float(self.values[r, j]) for j in cols
        }
        auction_round = AuctionRound(
            index=int(self.indices[r]), bids=bids, values=values
        )
        self._rounds[r] = auction_round
        return auction_round

    def __iter__(self) -> Iterator[AuctionRound]:
        for r in range(len(self)):
            yield self.round_at(r)


@dataclass(frozen=True)
class RoundOutcome:
    """The decision a mechanism returns for one round.

    Attributes
    ----------
    round_index:
        Echo of :attr:`AuctionRound.index`.
    selected:
        Winning client ids, sorted ascending.
    payments:
        Monetary payment per winning client id.  Every selected client must
        have an entry; losers are paid nothing and have no entry.
    diagnostics:
        Mechanism-specific extras for analysis (e.g. queue backlogs, the
        drift-plus-penalty objective).  Values must be JSON-friendly scalars.
    """

    round_index: int
    selected: tuple[int, ...]
    payments: Mapping[int, float]
    diagnostics: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if list(self.selected) != sorted(set(self.selected)):
            raise ValueError("selected ids must be sorted and unique")
        missing = [i for i in self.selected if i not in self.payments]
        if missing:
            raise ValueError(f"payments missing for selected clients {missing}")
        extra = [i for i in self.payments if i not in self.selected]
        if extra:
            raise ValueError(f"payments present for unselected clients {extra}")
        for client_id, payment in self.payments.items():
            if payment < 0:
                raise ValueError(
                    f"negative payment {payment} for client {client_id}"
                )

    @property
    def total_payment(self) -> float:
        """Total money spent this round."""
        return float(sum(self.payments.values()))

    def payment_of(self, client_id: int) -> float:
        """Payment to ``client_id`` (0 for losers)."""
        return float(self.payments.get(client_id, 0.0))
