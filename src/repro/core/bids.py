"""Bid and round datatypes shared by every mechanism.

A *reverse auction* runs once per federated-learning round: each available
client submits a sealed :class:`Bid` claiming its cost for one round of local
training plus upload, and the server (the single buyer) selects a winner set
and computes payments.  :class:`AuctionRound` packages exactly the
information a mechanism is allowed to see — in particular the clients' *true*
costs are never part of it; only the simulator knows those, which is what
makes truthfulness experiments meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.utils.validation import check_non_negative

__all__ = ["Bid", "AuctionRound", "RoundOutcome"]


@dataclass(frozen=True)
class Bid:
    """A sealed bid from one client for one round.

    Attributes
    ----------
    client_id:
        Stable integer identity of the bidding client.
    cost:
        The client's *claimed* cost (monetary units) for participating in this
        round.  Equal to the true cost only if the client bids truthfully.
    data_size:
        Declared number of local training samples.  Used by the server-side
        valuation model, never by the payment rule directly.
    quality:
        Declared data-quality score in ``[0, 1]`` (e.g. label diversity).
        Also an input to valuation only.
    """

    client_id: int
    cost: float
    data_size: int = 1
    quality: float = 1.0

    def __post_init__(self) -> None:
        if self.client_id < 0:
            raise ValueError(f"client_id must be >= 0, got {self.client_id}")
        check_non_negative("cost", self.cost)
        if self.data_size < 0:
            raise ValueError(f"data_size must be >= 0, got {self.data_size}")
        check_non_negative("quality", self.quality)

    def with_cost(self, cost: float) -> "Bid":
        """Return a copy of this bid with a different claimed cost.

        Used by truthfulness verifiers to construct unilateral deviations.
        """
        return replace(self, cost=cost)


@dataclass(frozen=True)
class AuctionRound:
    """Everything a mechanism may observe when running one round.

    Attributes
    ----------
    index:
        Zero-based round number.
    bids:
        Bids from the clients available this round, in arbitrary order.
        At most one bid per client.
    values:
        Server-side value estimate ``v_i`` for recruiting each bidding
        client, keyed by client id.  Values are derived from declared data
        profiles and selection history — never from the bid's cost — which is
        a prerequisite for truthfulness.
    """

    index: int
    bids: tuple[Bid, ...]
    values: Mapping[int, float]

    def __post_init__(self) -> None:
        ids = [bid.client_id for bid in self.bids]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate client_id in bids")
        missing = [i for i in ids if i not in self.values]
        if missing:
            raise ValueError(f"values missing for client ids {missing}")

    @property
    def client_ids(self) -> tuple[int, ...]:
        """Client ids present this round, in bid order."""
        return tuple(bid.client_id for bid in self.bids)

    def bid_of(self, client_id: int) -> Bid:
        """Return the bid submitted by ``client_id``.

        Raises
        ------
        KeyError
            If the client did not bid this round.
        """
        for bid in self.bids:
            if bid.client_id == client_id:
                return bid
        raise KeyError(f"no bid from client {client_id} in round {self.index}")

    def with_replaced_bid(self, new_bid: Bid) -> "AuctionRound":
        """Return a copy of the round with one client's bid swapped out.

        The deviation primitive used by :mod:`repro.core.properties`.
        """
        if new_bid.client_id not in self.client_ids:
            raise KeyError(f"client {new_bid.client_id} is not part of this round")
        bids = tuple(
            new_bid if bid.client_id == new_bid.client_id else bid for bid in self.bids
        )
        return AuctionRound(index=self.index, bids=bids, values=self.values)

    def without_client(self, client_id: int) -> "AuctionRound":
        """Return a copy of the round with one client removed entirely."""
        bids = tuple(bid for bid in self.bids if bid.client_id != client_id)
        values = {bid.client_id: self.values[bid.client_id] for bid in bids}
        return AuctionRound(index=self.index, bids=bids, values=values)


@dataclass(frozen=True)
class RoundOutcome:
    """The decision a mechanism returns for one round.

    Attributes
    ----------
    round_index:
        Echo of :attr:`AuctionRound.index`.
    selected:
        Winning client ids, sorted ascending.
    payments:
        Monetary payment per winning client id.  Every selected client must
        have an entry; losers are paid nothing and have no entry.
    diagnostics:
        Mechanism-specific extras for analysis (e.g. queue backlogs, the
        drift-plus-penalty objective).  Values must be JSON-friendly scalars.
    """

    round_index: int
    selected: tuple[int, ...]
    payments: Mapping[int, float]
    diagnostics: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if list(self.selected) != sorted(set(self.selected)):
            raise ValueError("selected ids must be sorted and unique")
        missing = [i for i in self.selected if i not in self.payments]
        if missing:
            raise ValueError(f"payments missing for selected clients {missing}")
        extra = [i for i in self.payments if i not in self.selected]
        if extra:
            raise ValueError(f"payments present for unselected clients {extra}")
        for client_id, payment in self.payments.items():
            if payment < 0:
                raise ValueError(
                    f"negative payment {payment} for client {client_id}"
                )

    @property
    def total_payment(self) -> float:
        """Total money spent this round."""
        return float(sum(self.payments.values()))

    def payment_of(self, client_id: int) -> float:
        """Payment to ``client_id`` (0 for losers)."""
        return float(self.payments.get(client_id, 0.0))
