"""Per-client participation queues — the "sustainable" in sustainable FL.

A federation is sustainable only if every client keeps contributing over a
long horizon: data coverage requires that no client starves, and clients
with tight energy budgets must not be drained.  The mechanism enforces a
*long-term participation-rate target* ``r_i`` per client with per-client
virtual queues

    ``Z_i(t+1) = max(Z_i(t) + r_i - selected_i(t), 0)``

whose backlog is added (scaled by ``weight``) to the client's selection
score as a bid-independent offset.  A client falling behind its target
accumulates backlog and becomes progressively more attractive to select;
because the offset never depends on the client's own bid, truthfulness of
the affine-maximizer auction is preserved.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.lyapunov import VirtualQueue
from repro.utils.validation import check_non_negative, check_probability

__all__ = ["ParticipationTracker"]


class ParticipationTracker:
    """Tracks per-client participation-rate queues and selection offsets.

    Parameters
    ----------
    targets:
        Mapping from client id to its long-term participation-rate target
        ``r_i`` in ``[0, 1]`` (fraction of rounds the client should win).
        The targets must be jointly feasible given the per-round winner cap;
        :meth:`check_feasibility` validates this.
    weight:
        Scale applied to queue backlogs when converting them to score
        offsets.  ``0`` disables the sustainability mechanism (ablation).
    max_offset:
        Optional cap on the offset, bounding how strongly starvation can
        override the welfare objective.
    """

    def __init__(
        self,
        targets: Mapping[int, float],
        *,
        weight: float = 1.0,
        max_offset: float | None = None,
    ) -> None:
        self.targets = {
            int(client_id): check_probability(f"targets[{client_id}]", rate)
            for client_id, rate in targets.items()
        }
        self.weight = check_non_negative("weight", weight)
        if max_offset is not None:
            check_non_negative("max_offset", max_offset)
        self.max_offset = max_offset
        self._queues = {client_id: VirtualQueue() for client_id in self.targets}
        self._selection_counts = {client_id: 0 for client_id in self.targets}
        self._rounds = 0

    def check_feasibility(self, max_winners: int | None) -> None:
        """Raise if the targets exceed the per-round selection capacity.

        With at most ``K`` winners per round the total achievable selection
        rate is ``K``, so ``sum_i r_i <= K`` is necessary for stability.
        """
        total = sum(self.targets.values())
        if max_winners is not None and total > max_winners + 1e-9:
            raise ValueError(
                f"participation targets sum to {total:.4g} but at most "
                f"{max_winners} clients can win per round"
            )

    def backlog_of(self, client_id: int) -> float:
        """Current queue backlog ``Z_i(t)`` of a client (0 if untracked)."""
        queue = self._queues.get(client_id)
        return queue.backlog if queue is not None else 0.0

    def offsets(self, client_ids: Iterable[int]) -> dict[int, float]:
        """Score offsets for this round's candidates.

        Untracked clients get offset 0.
        """
        offsets = {}
        for client_id in client_ids:
            offset = self.weight * self.backlog_of(client_id)
            if self.max_offset is not None:
                offset = min(offset, self.max_offset)
            offsets[client_id] = offset
        return offsets

    def observe_round(self, selected: Iterable[int]) -> None:
        """Update every tracked queue with this round's selection outcome."""
        selected_set = set(selected)
        for client_id, queue in self._queues.items():
            won = 1.0 if client_id in selected_set else 0.0
            queue.update(self.targets[client_id], won)
            if won:
                self._selection_counts[client_id] += 1
        self._rounds += 1

    def participation_rate(self, client_id: int) -> float:
        """Empirical selection rate of a client so far."""
        if self._rounds == 0:
            return 0.0
        return self._selection_counts.get(client_id, 0) / self._rounds

    def participation_rates(self) -> dict[int, float]:
        """Empirical selection rates of all tracked clients."""
        return {client_id: self.participation_rate(client_id) for client_id in self.targets}

    def deficits(self) -> dict[int, float]:
        """Target minus achieved rate per client (positive = behind target)."""
        return {
            client_id: self.targets[client_id] - self.participation_rate(client_id)
            for client_id in self.targets
        }

    def max_backlog(self) -> float:
        """Largest queue backlog across clients (0 when no clients tracked)."""
        if not self._queues:
            return 0.0
        return max(queue.backlog for queue in self._queues.values())

    def state_dict(self) -> dict:
        """Serializable snapshot of every participation queue and counter.

        Keys are stringified client ids (the JSON object constraint);
        :meth:`load_state_dict` restores bit-identically.
        """
        return {
            "queues": {
                str(client_id): queue.state_dict()
                for client_id, queue in self._queues.items()
            },
            "selection_counts": {
                str(client_id): count
                for client_id, count in self._selection_counts.items()
            },
            "rounds": self._rounds,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`.

        Raises
        ------
        ValueError
            If the snapshot's client ids do not match this tracker's
            targets — restoring a snapshot into a differently-configured
            tracker would silently corrupt the participation constraints.
        """
        try:
            queues = {int(cid): qstate for cid, qstate in state["queues"].items()}
            counts = {
                int(cid): int(count)
                for cid, count in state["selection_counts"].items()
            }
            rounds = int(state["rounds"])
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(
                f"malformed ParticipationTracker state: {error}"
            ) from error
        if set(queues) != set(self.targets) or set(counts) != set(self.targets):
            raise ValueError(
                "participation snapshot client ids do not match the "
                "configured targets"
            )
        for client_id, queue_state in queues.items():
            self._queues[client_id].load_state_dict(queue_state)
        self._selection_counts = counts
        self._rounds = rounds

    def reset(self) -> None:
        """Reset all queues and counters."""
        for queue in self._queues.values():
            queue.reset()
        self._selection_counts = {client_id: 0 for client_id in self.targets}
        self._rounds = 0

    def __repr__(self) -> str:
        return (
            f"ParticipationTracker(clients={len(self.targets)}, "
            f"weight={self.weight}, rounds={self._rounds})"
        )
