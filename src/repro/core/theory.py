"""Theoretical bounds of the drift-plus-penalty analysis, computable.

The Lyapunov analysis behind LT-VCG yields closed-form bounds that the
empirical sweeps (benchmark E4) can be checked against:

With Lyapunov function ``L(Q) = Q^2 / 2``, per-round payments bounded by
``P_max`` and budget ``B``, the one-step drift satisfies
``Delta(Q) <= B0 + Q (P(t) - B)`` with the constant
``B0 = max(P_max - B, B)^2 / 2``.  Maximising ``V * welfare - Q * payment``
each round then gives, for any horizon ``T``:

* **welfare gap** — time-average welfare is within ``B0 / V`` of the best
  stationary policy that satisfies the budget:
  ``welfare_avg >= welfare_opt - B0 / V``;
* **queue bound** — if some stationary policy meets the budget with slack
  ``epsilon > 0``, the time-average backlog obeys
  ``Q_avg <= (B0 + V * welfare_span) / epsilon``,
  i.e. transient overspend grows (at most) linearly in ``V``;
* **constraint violation** — the realised average spend satisfies
  ``spend_avg <= B + Q(T) / T`` (exact, from the queue recursion — see
  :meth:`repro.core.lyapunov.BudgetQueue.spend_bound`).

These are *bounds*, not predictions: measured curves must lie on the
feasible side, which :func:`check_run_against_bounds` verifies for a
completed run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.lyapunov import BudgetQueue
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["LyapunovBounds", "lyapunov_bounds", "check_run_against_bounds"]


@dataclass(frozen=True)
class LyapunovBounds:
    """The [O(1/V), O(V)] bound pair for one parameterisation.

    Attributes
    ----------
    drift_constant:
        ``B0``, the per-round drift bound constant.
    welfare_gap:
        ``B0 / V`` — the maximum time-average welfare sacrificed relative to
        the budget-feasible optimum.
    queue_bound:
        ``(B0 + V * welfare_span) / slack`` — bound on the time-average
        backlog (None when ``slack`` is 0: no interior policy assumed).
    """

    v: float
    budget_per_round: float
    max_payment_per_round: float
    welfare_span: float
    slack: float
    drift_constant: float
    welfare_gap: float
    queue_bound: float | None


def lyapunov_bounds(
    *,
    v: float,
    budget_per_round: float,
    max_payment_per_round: float,
    welfare_span: float,
    slack: float = 0.0,
) -> LyapunovBounds:
    """Compute the bound pair for given problem parameters.

    Parameters
    ----------
    v:
        The trade-off parameter.
    budget_per_round:
        ``B``.
    max_payment_per_round:
        ``P_max``: the largest total payment any single round can incur
        (e.g. ``K * reserve_price``, or ``K * max critical bid``).
    welfare_span:
        ``f_max - f_min``: the range of achievable per-round welfare.
    slack:
        ``epsilon``: the budget slack of some stationary feasible policy;
        0 disables the queue bound (it needs an interior policy).
    """
    check_positive("v", v)
    check_positive("budget_per_round", budget_per_round)
    check_positive("max_payment_per_round", max_payment_per_round)
    check_non_negative("welfare_span", welfare_span)
    check_non_negative("slack", slack)
    worst_deviation = max(max_payment_per_round - budget_per_round, budget_per_round)
    drift_constant = 0.5 * worst_deviation**2
    queue_bound = None
    if slack > 0:
        queue_bound = (drift_constant + v * welfare_span) / slack
    return LyapunovBounds(
        v=v,
        budget_per_round=budget_per_round,
        max_payment_per_round=max_payment_per_round,
        welfare_span=welfare_span,
        slack=slack,
        drift_constant=drift_constant,
        welfare_gap=drift_constant / v,
        queue_bound=queue_bound,
    )


def check_run_against_bounds(
    queue: BudgetQueue, bounds: LyapunovBounds
) -> list[str]:
    """Verify a completed run's queue statistics against the bounds.

    Returns a list of violation descriptions (empty = consistent).  Checks:

    * the exact spend certificate ``spend_avg <= B + Q(T)/T``;
    * the average backlog against ``queue_bound`` when available.
    """
    violations = []
    if queue.average_spend() > queue.spend_bound() + 1e-9:
        violations.append(
            f"spend certificate violated: avg {queue.average_spend():.4g} > "
            f"bound {queue.spend_bound():.4g}"
        )
    if bounds.queue_bound is not None and queue.steps > 0:
        # Exact running aggregate — unlike the retained (bounded) history
        # window, this covers the whole trajectory of a long-lived queue.
        average_backlog = queue.average_backlog()
        if average_backlog > bounds.queue_bound + 1e-9:
            violations.append(
                f"queue bound violated: avg backlog {average_backlog:.4g} > "
                f"bound {bounds.queue_bound:.4g}"
            )
    return violations
