"""Abstract interface every selection/payment mechanism implements.

A mechanism is a stateful object driven round by round: the simulator builds
an :class:`~repro.core.bids.AuctionRound` (bids plus server-side values) and
calls :meth:`Mechanism.run_round`, receiving a
:class:`~repro.core.bids.RoundOutcome` (winners and payments).  Mechanisms
may carry state across rounds (virtual queues, price estimates); the
simulator resets them between repetitions via :meth:`Mechanism.reset`.

The contract deliberately hides true costs: a mechanism only ever sees bids,
so truthfulness experiments can compare outcomes under bid manipulation
without giving any mechanism an unfair information advantage.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.bids import AuctionRound, RoundOutcome

__all__ = ["Mechanism"]


class Mechanism(ABC):
    """Base class for per-round client selection + payment mechanisms."""

    #: Short human-readable identifier used in tables and logs.
    name: str = "mechanism"

    @abstractmethod
    def run_round(self, auction_round: AuctionRound) -> RoundOutcome:
        """Select winners and compute payments for one round.

        Implementations must:

        * select only clients that actually bid this round,
        * return non-negative payments for exactly the selected clients,
        * update any internal long-term state (queues, counters) so that the
          next call observes the consequences of this round.
        """

    def reset(self) -> None:
        """Clear all cross-round state.  Stateless mechanisms need not override."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
