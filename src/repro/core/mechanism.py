"""Abstract interface every selection/payment mechanism implements.

A mechanism is a stateful object driven round by round: the simulator builds
an :class:`~repro.core.bids.AuctionRound` (bids plus server-side values) and
calls :meth:`Mechanism.run_round`, receiving a
:class:`~repro.core.bids.RoundOutcome` (winners and payments).  Mechanisms
may carry state across rounds (virtual queues, price estimates); the
simulator resets them between repetitions via :meth:`Mechanism.reset`.

Beyond the scalar call, the interface is batched:

* :meth:`Mechanism.run_rounds` consumes a columnar
  :class:`~repro.core.bids.RoundBatch` with *sequential* semantics — round
  ``r+1`` observes the consequences of round ``r``, exactly as a loop of
  :meth:`run_round` calls would.  The base implementation is that loop;
  mechanisms whose decisions carry no cross-round state
  (:attr:`Mechanism.stateless`) override it with vectorised stacked solves
  that are bit-identical to the sequential path (pinned property-based in
  the test suite).
* :meth:`Mechanism.probe_rounds` evaluates *independent counterfactual*
  rounds, each from the mechanism's current state, mutating nothing — the
  primitive the truthfulness/IR probes (:mod:`repro.core.properties`) batch
  their deviation sweeps through.

The contract deliberately hides true costs: a mechanism only ever sees bids,
so truthfulness experiments can compare outcomes under bid manipulation
without giving any mechanism an unfair information advantage.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod

from repro import telemetry
from repro.core.bids import AuctionRound, RoundBatch, RoundOutcome
from repro.core.winner_determination import SolveCache

__all__ = ["Mechanism"]


class Mechanism(ABC):
    """Base class for per-round client selection + payment mechanisms."""

    #: Short human-readable identifier used in tables and logs.
    name: str = "mechanism"

    #: True when :meth:`run_round` carries no decision-relevant state across
    #: rounds (no virtual queues, learned estimates, or consumed randomness),
    #: so a batch of rounds may be solved in any order — the precondition for
    #: vectorised :meth:`run_rounds` overrides and for feeding whole
    #: campaigns through one batch.
    stateless: bool = False

    @abstractmethod
    def run_round(self, auction_round: AuctionRound) -> RoundOutcome:
        """Select winners and compute payments for one round.

        Implementations must:

        * select only clients that actually bid this round,
        * return non-negative payments for exactly the selected clients,
        * update any internal long-term state (queues, counters) so that the
          next call observes the consequences of this round.
        """

    def run_rounds(self, batch: RoundBatch) -> list[RoundOutcome]:
        """Run a batch of rounds with sequential semantics.

        The fallback simply loops :meth:`run_round`, so stateful mechanisms
        (LT-VCG's virtual queues) keep their round-by-round behaviour.
        Stateless mechanisms override this with stacked vectorised solves;
        overrides must produce outcomes bit-identical to the fallback.
        """
        return [self.run_round(auction_round) for auction_round in batch]

    def probe_rounds(self, batch: RoundBatch) -> list[RoundOutcome]:
        """Evaluate independent counterfactual rounds from the current state.

        Unlike :meth:`run_rounds`, every round in the batch is answered from
        the mechanism's *current* state and no state is mutated — exactly
        the "re-run from an identical state" semantics the deviation probes
        need.  Stateless mechanisms delegate to :meth:`run_rounds`; the
        stateful fallback runs each round on a deep copy of the mechanism
        (identical state per counterfactual).  Stateful mechanisms whose
        per-round decision is a cheap function of their state (LT-VCG)
        override this with a vectorised implementation.
        """
        if self.stateless:
            return self.run_rounds(batch)
        cache = getattr(self, "solve_cache", None)
        outcomes = []
        with telemetry.span("probe_rounds"):
            for auction_round in batch:
                # Seeding the deepcopy memo shares (instead of copying) the
                # solve cache, so subproblems repeated across counterfactuals
                # are still solved once.
                memo = {id(cache): cache} if cache is not None else {}
                counterfactual = copy.deepcopy(self, memo)
                outcomes.append(counterfactual.run_round(auction_round))
        return outcomes

    def attach_solve_cache(self, cache: SolveCache) -> None:
        """Adopt a shared winner-determination solve cache.

        Mechanisms that re-solve :class:`WinnerDeterminationProblem`
        instances (the VCG family) override this to thread ``cache`` through
        their solves, letting callers share one cache across many short-lived
        mechanism instances — the truthfulness probes build a fresh mechanism
        per deviation but share every repeated subproblem this way.
        Mechanisms without a solver ignore the call.
        """

    def state_dict(self) -> dict:
        """Serializable snapshot of all cross-round decision state.

        Stateless mechanisms have nothing to capture and return ``{}``.
        Stateful mechanisms must override this (with a matching
        :meth:`load_state_dict`) to be resumable by long-lived hosts such
        as :mod:`repro.service` — the default raises so a host can detect
        (and honestly report) a mechanism whose state cannot survive a
        restart, instead of silently resuming it fresh.
        """
        if self.stateless:
            return {}
        raise NotImplementedError(
            f"{type(self).__name__} does not support state snapshots"
        )

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict` (bit-identical)."""
        if self.stateless:
            if state:
                raise ValueError(
                    f"stateless mechanism {type(self).__name__} cannot load "
                    f"state {sorted(state)}"
                )
            return
        raise NotImplementedError(
            f"{type(self).__name__} does not support state snapshots"
        )

    def reset(self) -> None:
        """Clear all cross-round state.  Stateless mechanisms need not override.

        Implementations holding a :class:`SolveCache` (private or attached
        via :meth:`attach_solve_cache`) must *drop* it here — replace it with
        a fresh private cache — so repetitions share no object state
        (enforced by the test suite for the built-in mechanisms).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
