"""Online learned valuation: UCB estimation of client quality.

Declared data profiles are a prior, not ground truth — the *realised*
usefulness of a client (how much its updates actually move the global
model) is only observable after selecting it.  :class:`LearnedValuation`
treats client valuation as a combinatorial bandit problem:

* each client's value is ``blend * prior + (1 - blend) * ucb`` where
  ``ucb = mean observed contribution + bonus * sqrt(log(t) / n_i)``,
* contributions are fed back per round via :meth:`observe_contributions`
  (the FL attachment reports the aggregation-weighted update magnitude of
  each winner),
* unexplored clients carry the optimistic initial value, so the mechanism
  explores the population before concentrating.

Crucially the estimate depends only on selection history and observed
contributions — never on bids — so wrapping the valuation preserves the
affine-maximizer structure and hence truthfulness.
"""

from __future__ import annotations

import math

from repro.core.bids import Bid
from repro.core.valuation import ValuationModel
from repro.utils.validation import check_in_range, check_non_negative

__all__ = ["LearnedValuation"]


class LearnedValuation(ValuationModel):
    """UCB-style learned client values blended with a declared-profile prior.

    Parameters
    ----------
    prior:
        The declared-profile valuation used before observations accumulate
        (and blended in permanently with weight ``blend``).
    blend:
        Weight of the prior in the final value, in ``[0, 1]``; ``1`` reduces
        to the prior (no learning), ``0`` to pure UCB.
    bonus:
        Exploration-bonus scale (the UCB constant).
    optimistic_value:
        Value reported for never-observed clients' UCB term.
    """

    def __init__(
        self,
        prior: ValuationModel,
        *,
        blend: float = 0.5,
        bonus: float = 0.5,
        optimistic_value: float = 2.0,
    ) -> None:
        self.prior = prior
        self.blend = check_in_range("blend", blend, 0.0, 1.0)
        self.bonus = check_non_negative("bonus", bonus)
        self.optimistic_value = check_non_negative("optimistic_value", optimistic_value)
        self._sums: dict[int, float] = {}
        self._counts: dict[int, int] = {}
        self._round = 0

    def observations_of(self, client_id: int) -> int:
        """How many contribution observations this client has."""
        return self._counts.get(client_id, 0)

    def mean_contribution(self, client_id: int) -> float:
        """Empirical mean contribution (0 before any observation)."""
        count = self._counts.get(client_id, 0)
        if count == 0:
            return 0.0
        return self._sums[client_id] / count

    def ucb_of(self, client_id: int) -> float:
        """The optimistic (UCB) value estimate for a client."""
        count = self._counts.get(client_id, 0)
        if count == 0:
            return self.optimistic_value
        exploration = self.bonus * math.sqrt(
            math.log(max(self._round, 2)) / count
        )
        return self.mean_contribution(client_id) + exploration

    def value_of(self, bid: Bid) -> float:
        prior_value = self.prior.value_of(bid)
        return self.blend * prior_value + (1.0 - self.blend) * self.ucb_of(
            bid.client_id
        )

    def observe_contributions(self, contributions: dict[int, float]) -> None:
        """Feed back realised contributions of this round's winners.

        Contributions must be non-negative (magnitudes, not signed deltas).
        """
        for client_id, contribution in contributions.items():
            check_non_negative(f"contributions[{client_id}]", contribution)
            self._sums[client_id] = self._sums.get(client_id, 0.0) + float(contribution)
            self._counts[client_id] = self._counts.get(client_id, 0) + 1

    def observe_selection(self, selected: tuple[int, ...]) -> None:
        self._round += 1
        self.prior.observe_selection(selected)

    def __repr__(self) -> str:
        return (
            f"LearnedValuation(prior={self.prior!r}, blend={self.blend}, "
            f"bonus={self.bonus}, clients_observed={len(self._counts)})"
        )
