"""Command-line experiment runner.

Runs one configured experiment end to end and archives everything needed to
regenerate its numbers: the resolved config, the JSON event log, and the
printed summary tables.

Usage::

    python -m repro.cli --mechanism lt-vcg --rounds 300 --out results/run1
    python -m repro.cli --config my_experiment.json --out results/run2
    python -m repro.cli --list-mechanisms

The config file is an :class:`repro.config.ExperimentConfig` JSON document;
command-line flags override its fields.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.analysis.budget import budget_report
from repro.analysis.fairness import jain_index, participation_rates
from repro.analysis.welfare import welfare_summary
from repro.config import ExperimentConfig
from repro.core.longterm_vcg import LongTermVCGConfig, LongTermVCGMechanism
from repro.core.mechanism import Mechanism
from repro.mechanisms import (
    AllAvailableMechanism,
    FixedPriceMechanism,
    GreedyFirstPriceMechanism,
    MyopicVCGMechanism,
    ProportionalShareMechanism,
    RandomSelectionMechanism,
)
from repro.simulation.replay import save_event_log
from repro.simulation.runner import SimulationRunner
from repro.simulation.scenarios import build_fl_scenario, build_mechanism_scenario
from repro.utils.tables import format_table

__all__ = ["main", "build_mechanism", "MECHANISM_NAMES"]

MECHANISM_NAMES = (
    "lt-vcg",
    "lt-vcg-greedy",
    "myopic-vcg",
    "prop-share",
    "greedy-first-price",
    "fixed-price",
    "random",
    "all-available",
)


def build_mechanism(config: ExperimentConfig) -> Mechanism:
    """Instantiate the mechanism named in ``config.name``-agnostic field.

    The mechanism name is taken from ``config.extras['mechanism']``
    (defaulting to ``lt-vcg``).
    """
    name = str(config.extras.get("mechanism", "lt-vcg"))
    targets = None
    if config.participation_target > 0:
        targets = {
            cid: config.participation_target for cid in range(config.num_clients)
        }
    if name in ("lt-vcg", "lt-vcg-greedy"):
        return LongTermVCGMechanism(
            LongTermVCGConfig(
                v=config.v,
                budget_per_round=config.budget_per_round,
                max_winners=config.max_winners,
                wd_method="greedy" if name.endswith("greedy") else config.wd_method,
                participation_targets=targets,
                sustainability_weight=config.sustainability_weight,
            )
        )
    if name == "myopic-vcg":
        return MyopicVCGMechanism(max_winners=config.max_winners)
    if name == "prop-share":
        return ProportionalShareMechanism(config.budget_per_round, config.max_winners)
    if name == "greedy-first-price":
        return GreedyFirstPriceMechanism(config.budget_per_round, config.max_winners)
    if name == "fixed-price":
        price = float(config.extras.get("price", 1.0))
        return FixedPriceMechanism(price=price, max_winners=config.max_winners)
    if name == "random":
        return RandomSelectionMechanism(
            config.max_winners, np.random.default_rng(config.seed + 1)
        )
    if name == "all-available":
        return AllAvailableMechanism()
    raise ValueError(
        f"unknown mechanism {name!r}; choose from {', '.join(MECHANISM_NAMES)}"
    )


def run_experiment(config: ExperimentConfig, out_dir: Path | None) -> dict:
    """Run one experiment; returns the summary dictionary."""
    mechanism = build_mechanism(config)
    with_fl = bool(config.extras.get("fl", False))
    if with_fl:
        scenario = build_fl_scenario(
            config.num_clients,
            seed=config.seed,
            num_samples=config.num_samples,
            dirichlet_alpha=config.dirichlet_alpha,
            model=config.model,
            local_steps=config.local_steps,
            batch_size=config.batch_size,
            learning_rate=config.learning_rate,
            eval_every=config.eval_every,
            energy_constrained=config.energy_constrained,
        )
    else:
        scenario = build_mechanism_scenario(
            config.num_clients,
            seed=config.seed,
            energy_constrained=config.energy_constrained,
        )
    runner = SimulationRunner(
        mechanism,
        scenario.clients,
        scenario.valuation,
        fl=scenario.fl,
        seed=config.seed + 7,
    )
    log = runner.run(config.num_rounds)

    summary = welfare_summary(log)
    budget = budget_report(log, config.budget_per_round)
    rates = list(
        participation_rates(log, list(range(config.num_clients))).values()
    )
    result = {
        "mechanism": str(config.extras.get("mechanism", "lt-vcg")),
        "rounds": len(log),
        "total_welfare": summary.total_welfare,
        "average_payment": summary.average_payment,
        "spend_over_budget": budget.final_overspend_ratio,
        "budget_compliant": budget.compliant,
        "winners_per_round": summary.winners_per_round,
        "jain_index": jain_index(rates),
    }
    xs, accuracies = log.accuracy_series()
    if accuracies:
        result["final_accuracy"] = accuracies[-1]

    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        config.save(out_dir / "config.json")
        save_event_log(out_dir / "event_log.json", log)
        from repro.utils.serialization import save_json

        save_json(out_dir / "summary.json", result)
    return result


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="Run one LT-VCG experiment end to end."
    )
    parser.add_argument("--config", type=Path, help="ExperimentConfig JSON file")
    parser.add_argument("--mechanism", choices=MECHANISM_NAMES)
    parser.add_argument("--rounds", type=int, dest="num_rounds")
    parser.add_argument("--clients", type=int, dest="num_clients")
    parser.add_argument("--seed", type=int)
    parser.add_argument("--v", type=float)
    parser.add_argument("--budget", type=float, dest="budget_per_round")
    parser.add_argument("--max-winners", type=int, dest="max_winners")
    parser.add_argument(
        "--fl", action="store_true", help="attach the FL substrate (slower)"
    )
    parser.add_argument(
        "--energy", action="store_true", dest="energy_constrained",
        help="battery-gated clients",
    )
    parser.add_argument("--out", type=Path, help="output directory for artifacts")
    parser.add_argument(
        "--list-mechanisms", action="store_true", help="print mechanism names and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_mechanisms:
        print("\n".join(MECHANISM_NAMES))
        return 0

    if args.config is not None:
        config = ExperimentConfig.load(args.config)
    else:
        config = ExperimentConfig()
    overrides = {}
    for field in ("num_rounds", "num_clients", "seed", "v", "budget_per_round",
                  "max_winners", "energy_constrained"):
        value = getattr(args, field, None)
        if value is not None and value is not False:
            overrides[field] = value
    extras = dict(config.extras)
    if args.mechanism is not None:
        extras["mechanism"] = args.mechanism
    if args.fl:
        extras["fl"] = True
    overrides["extras"] = extras
    config = config.with_overrides(**overrides)

    result = run_experiment(config, args.out)
    print(
        format_table(
            ["metric", "value"],
            [[key, value] for key, value in result.items()],
            title=f"Experiment summary ({result['mechanism']}, seed {config.seed})",
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
