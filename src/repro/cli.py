"""Command-line experiment runner and campaign orchestrator.

Single runs (the original interface) execute one configured experiment end
to end and archive everything needed to regenerate its numbers: the
resolved config, the JSON event log, and the printed summary tables.
Campaigns fan a sweep grid across worker processes through
:mod:`repro.orchestration`, persist per-cell results in a campaign
directory, and resume after interruption without re-running finished cells.

Usage::

    # single runs
    python -m repro.cli --mechanism lt-vcg --rounds 300 --out results/run1
    python -m repro.cli --config my_experiment.json --out results/run2
    python -m repro.cli --list-mechanisms

    # campaigns
    python -m repro.cli sweep --out results/camp \\
        --mechanisms lt-vcg,myopic-vcg,random --scenarios mechanism,energy \\
        --seeds 0,1,2 --rounds 300
    python -m repro.cli resume results/camp --retry-failed
    python -m repro.cli report results/camp --logs

    # distributed / observed campaigns
    python -m repro.cli sweep --out results/camp --backend work-queue \\
        --store columnar --workers 0 ...   # enqueue; drainers do the work
    python -m repro.cli work results/camp  # drain cells (run on any host)
    python -m repro.cli watch results/camp # live dashboard off events.jsonl

    # the auction service (long-lived online allocation server)
    python -m repro.cli serve --port 7464 --dir results/svc
    python -m repro.cli replay results/run1 --market live --create --speedup 50
    python -m repro.cli markets --port 7464
    python -m repro.cli watch results/svc   # same dashboard, service trail

The config file is an :class:`repro.config.ExperimentConfig` JSON document;
command-line flags override its fields.  Mechanism names resolve through
the :mod:`repro.mechanisms.registry`, the single source of truth shared
with the orchestrator.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any

from repro.config import ExperimentConfig
from repro.logging_utils import TELEMETRY_LEVELS, set_telemetry_level
from repro.mechanisms.registry import build_mechanism, mechanism_names
from repro.utils.tables import format_table

__all__ = ["main", "build_mechanism", "run_experiment", "MECHANISM_NAMES"]

MECHANISM_NAMES = mechanism_names()


def run_experiment(config: ExperimentConfig, out_dir: Path | None) -> dict:
    """Run one experiment; returns the summary dictionary.

    Delegates to :func:`repro.orchestration.worker.execute_config` (the same
    code path sweep cells run) and strips the wall-clock timing keys so the
    summary is deterministic for a given config.
    """
    from repro.orchestration.worker import execute_config

    result = execute_config(config, out_dir)
    for key in ("sim_seconds", "rounds_per_second"):
        result.pop(key, None)
    if out_dir is not None:
        from repro.utils.serialization import save_json

        save_json(Path(out_dir) / "summary.json", result)
    return result


# -- single-run interface (legacy flags, no subcommand) ----------------------


def _build_single_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="Run one LT-VCG experiment end to end."
    )
    parser.add_argument("--config", type=Path, help="ExperimentConfig JSON file")
    parser.add_argument("--mechanism", choices=MECHANISM_NAMES)
    parser.add_argument("--rounds", type=int, dest="num_rounds")
    parser.add_argument("--clients", type=int, dest="num_clients")
    parser.add_argument("--seed", type=int)
    parser.add_argument("--v", type=float)
    parser.add_argument("--budget", type=float, dest="budget_per_round")
    parser.add_argument("--max-winners", type=int, dest="max_winners")
    parser.add_argument(
        "--fl", action="store_true", help="attach the FL substrate (slower)"
    )
    parser.add_argument(
        "--energy", action="store_true", dest="energy_constrained",
        help="battery-gated clients",
    )
    parser.add_argument("--out", type=Path, help="output directory for artifacts")
    _add_telemetry_flag(parser)
    parser.add_argument(
        "--list-mechanisms", action="store_true", help="print mechanism names and exit"
    )
    return parser


def _add_telemetry_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry", choices=TELEMETRY_LEVELS, default=None,
        help="instrumentation level (default: the REPRO_TELEMETRY env var, "
             "else off); 'spans' records per-span latency histograms",
    )


def _add_fault_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults", default=None, metavar="PLAN",
        help="arm deterministic fault injection (chaos testing): comma list "
             "of site:mode[@prob][#max], e.g. "
             "'queue.claim:crash@0.1,store.flush:torn_write'; default: the "
             "REPRO_FAULTS env var, else off",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed of the fault injector's RNG (default: REPRO_FAULTS_SEED, "
             "else 0)",
    )


def _configure_faults(args: argparse.Namespace) -> None:
    if args.faults is not None:
        from repro import faults

        faults.configure(args.faults, seed=args.fault_seed)


def _main_single(argv: list[str]) -> int:
    args = _build_single_parser().parse_args(argv)
    if args.list_mechanisms:
        print("\n".join(MECHANISM_NAMES))
        return 0
    if args.telemetry is not None:
        set_telemetry_level(args.telemetry)

    if args.config is not None:
        config = ExperimentConfig.load(args.config)
    else:
        config = ExperimentConfig()
    overrides = {}
    for field in ("num_rounds", "num_clients", "seed", "v", "budget_per_round",
                  "max_winners", "energy_constrained"):
        value = getattr(args, field, None)
        if value is not None and value is not False:
            overrides[field] = value
    extras = dict(config.extras)
    if args.mechanism is not None:
        extras["mechanism"] = args.mechanism
    if args.fl:
        extras["fl"] = True
    overrides["extras"] = extras
    config = config.with_overrides(**overrides)

    result = run_experiment(config, args.out)
    print(
        format_table(
            ["metric", "value"],
            [[key, value] for key, value in result.items()],
            title=f"Experiment summary ({result['mechanism']}, seed {config.seed})",
        )
    )
    from repro import telemetry

    if telemetry.enabled(telemetry.TELEMETRY_SPANS):
        print()
        print(telemetry.render_snapshot(telemetry.snapshot(), title="Span timing"))
    return 0


# -- campaign subcommands ----------------------------------------------------


def _parse_value(token: str) -> Any:
    """int → float → bool → str, in that order (for --seeds/--param values)."""
    for cast in (int, float):
        try:
            return cast(token)
        except ValueError:
            pass
    if token.lower() in ("true", "false"):
        return token.lower() == "true"
    return token


def _parse_axis(text: str) -> tuple[Any, ...]:
    return tuple(_parse_value(token) for token in text.split(",") if token)


def _print_progress(outcome: dict, done: int, total: int) -> None:
    status = outcome["status"]
    print(
        f"[{done}/{total}] {outcome['cell_id']}: {status} "
        f"({outcome['duration_seconds']:.2f}s)",
        flush=True,
    )


def _main_sweep(argv: list[str]) -> int:
    from repro.orchestration import (
        EXECUTION_BACKENDS,
        SCENARIO_NAMES,
        STORE_BACKENDS,
        RetryPolicy,
        SweepSpec,
        run_campaign,
    )

    parser = argparse.ArgumentParser(
        prog="repro.cli sweep",
        description="Run a (mechanism × scenario × seed × params) campaign.",
    )
    parser.add_argument("--out", type=Path, required=True, help="campaign directory")
    parser.add_argument("--config", type=Path, help="base ExperimentConfig JSON")
    parser.add_argument(
        "--mechanisms", default="lt-vcg",
        help=f"comma list from: {', '.join(MECHANISM_NAMES)}",
    )
    parser.add_argument(
        "--scenarios", default="mechanism",
        help=f"comma list from: {', '.join(SCENARIO_NAMES)}",
    )
    parser.add_argument("--seeds", default="0", help="comma list of seeds")
    parser.add_argument(
        "--param", action="append", default=[], metavar="KEY=V1,V2",
        help="extra sweep axis (repeatable); config fields or extras keys",
    )
    parser.add_argument("--rounds", type=int, dest="num_rounds")
    parser.add_argument("--clients", type=int, dest="num_clients")
    parser.add_argument("--max-winners", type=int, dest="max_winners")
    parser.add_argument("--v", type=float)
    parser.add_argument("--budget", type=float, dest="budget_per_round")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker width (0 = run inline; default: cpu count; with "
             "--backend work-queue, 0 = rely on external `work` drainers)",
    )
    parser.add_argument(
        "--backend", choices=EXECUTION_BACKENDS, default=None,
        help="execution backend (default: process pool; inline when "
             "--workers 0)",
    )
    parser.add_argument(
        "--store", choices=STORE_BACKENDS, default=None,
        help="result-store backend (default: sqlite for new campaigns; an "
             "existing campaign's store is sniffed)",
    )
    parser.add_argument(
        "--retry-failed", action="store_true",
        help="re-queue cells previously recorded as failed",
    )
    parser.add_argument(
        "--regret", action="store_true", help="also compute hindsight regret per cell"
    )
    parser.add_argument(
        "--fresh", action="store_true", help="re-run cells already recorded"
    )
    parser.add_argument(
        "--max-attempts", type=int, default=None,
        help="total attempts per cell before a transient failure is "
             "quarantined (default: 3; 1 disables in-flight retries)",
    )
    parser.add_argument("--name", default="campaign")
    _add_telemetry_flag(parser)
    _add_fault_flags(parser)
    args = parser.parse_args(argv)
    _configure_faults(args)
    if args.telemetry is not None:
        # The campaign payloads carry this level to every worker (including
        # remote work-queue drainers), and the campaign collects their
        # snapshots on its telemetry.jsonl trail.
        set_telemetry_level(args.telemetry)

    base = ExperimentConfig.load(args.config) if args.config else ExperimentConfig()
    overrides = {
        field: getattr(args, field)
        for field in ("num_rounds", "num_clients", "max_winners", "v",
                      "budget_per_round")
        if getattr(args, field) is not None
    }
    if overrides:
        base = base.with_overrides(**overrides)

    params: dict[str, tuple[Any, ...]] = {}
    for item in args.param:
        key, _, values = item.partition("=")
        if not key or not values:
            parser.error(f"--param must look like KEY=V1,V2 (got {item!r})")
        params[key] = _parse_axis(values)

    try:
        spec = SweepSpec(
            base=base,
            mechanisms=tuple(m for m in args.mechanisms.split(",") if m),
            scenarios=tuple(s for s in args.scenarios.split(",") if s),
            seeds=tuple(int(seed) for seed in _parse_axis(args.seeds)),
            params=params,
            compute_regret=args.regret,
            name=args.name,
        )
        # Expanding up front surfaces invalid config-field param values
        # (e.g. --param num_rounds=0) as a clean CLI error too.
        num_cells = len(spec.expand())
    except ValueError as error:
        parser.error(str(error))
    print(f"campaign {spec.name!r}: {num_cells} cells -> {args.out}")
    try:
        summary = run_campaign(
            spec,
            args.out,
            max_workers=args.workers,
            resume=not args.fresh,
            progress=_print_progress,
            backend=args.backend,
            store=args.store,
            retry_failed=args.retry_failed,
            retry=(
                RetryPolicy(max_attempts=args.max_attempts)
                if args.max_attempts is not None
                else None
            ),
        )
    except ValueError as error:  # e.g. directory holds a different campaign
        parser.error(str(error))
    return _finish_campaign(summary, args.out)


def _main_resume(argv: list[str]) -> int:
    from repro.orchestration import EXECUTION_BACKENDS, RetryPolicy, resume_campaign

    parser = argparse.ArgumentParser(
        prog="repro.cli resume",
        description="Resume an interrupted campaign from its directory.",
    )
    parser.add_argument("campaign_dir", type=Path)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument(
        "--backend", choices=EXECUTION_BACKENDS, default=None,
        help="execution backend (the store backend is always sniffed)",
    )
    parser.add_argument(
        "--retry-failed", action="store_true",
        help="re-queue cells previously recorded as failed",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=None,
        help="total attempts per cell before a transient failure is "
             "quarantined (default: 3; 1 disables in-flight retries)",
    )
    _add_fault_flags(parser)
    args = parser.parse_args(argv)
    _configure_faults(args)
    summary = resume_campaign(
        args.campaign_dir,
        max_workers=args.workers,
        progress=_print_progress,
        backend=args.backend,
        retry_failed=args.retry_failed,
        retry=(
            RetryPolicy(max_attempts=args.max_attempts)
            if args.max_attempts is not None
            else None
        ),
    )
    return _finish_campaign(summary, args.campaign_dir)


def _finish_campaign(summary, campaign_dir: Path) -> int:
    from repro.orchestration import campaign_report

    line = (
        f"done: {summary.completed} completed, {summary.skipped} skipped "
        f"(already done), {summary.failed} failed"
    )
    if summary.retried:
        line += f", {summary.retried} transient retries"
    if summary.quarantined:
        line += (
            f" [{summary.quarantined} cells quarantined; see "
            f"{campaign_dir / 'quarantine'}]"
        )
    if summary.skipped_failed:
        line += (
            f" [{summary.skipped_failed} previously-failed cells skipped; "
            f"--retry-failed re-queues them]"
        )
    print(line)
    print()
    print(campaign_report(campaign_dir))
    # Skipped-but-still-failed cells keep the campaign red: a pipeline
    # gating on this exit code must not publish a partly-failed grid.
    return 1 if (summary.failed or summary.skipped_failed) else 0


def _main_report(argv: list[str]) -> int:
    from repro.orchestration import campaign_report

    parser = argparse.ArgumentParser(
        prog="repro.cli report",
        description="Regenerate comparison tables from a campaign directory.",
    )
    parser.add_argument("campaign_dir", type=Path)
    parser.add_argument(
        "--by", default="mechanism,scenario",
        help="comma list of grouping axes (mechanism, scenario, seed, or a param)",
    )
    parser.add_argument(
        "--logs", action="store_true",
        help="also rebuild single-slice tables from archived event logs",
    )
    parser.add_argument(
        "--timing", action="store_true",
        help="append the span-tree timing breakdown from the telemetry trail",
    )
    args = parser.parse_args(argv)
    print(
        campaign_report(
            args.campaign_dir,
            by=tuple(args.by.split(",")),
            include_event_logs=args.logs,
            include_timing=args.timing,
        )
    )
    return 0


def _main_profile(argv: list[str]) -> int:
    """Render a span-tree timing breakdown from archived telemetry."""
    import json

    from repro.orchestration import timing_report

    parser = argparse.ArgumentParser(
        prog="repro.cli profile",
        description=(
            "Render the span-tree latency breakdown of a campaign directory "
            "(telemetry.jsonl trail) or a single-run output directory "
            "(telemetry.json snapshot)."
        ),
    )
    parser.add_argument("run_dir", type=Path, help="campaign or single-run dir")
    args = parser.parse_args(argv)

    timing = timing_report(args.run_dir)
    if timing is None:
        # Single-run archive (or one campaign cell): one snapshot document.
        from repro import telemetry
        from repro.orchestration.worker import TELEMETRY_SNAPSHOT_NAME

        snapshot_path = args.run_dir / TELEMETRY_SNAPSHOT_NAME
        if snapshot_path.exists():
            timing = telemetry.render_snapshot(
                json.loads(snapshot_path.read_text()),
                title=f"Span timing ({args.run_dir})",
            )
    if timing is None:
        print(
            f"no telemetry found under {args.run_dir} — run with "
            "--telemetry spans (or REPRO_TELEMETRY=spans) first",
            file=sys.stderr,
        )
        return 1
    print(timing)
    return 0


# -- distributed workers and live observation ---------------------------------


def _main_work(argv: list[str]) -> int:
    """Drain cells from a campaign's work queue in this process."""
    from repro.orchestration import drain_queue

    parser = argparse.ArgumentParser(
        prog="repro.cli work",
        description=(
            "Drain cells from a work-queue campaign (start any number of "
            "these, on any host sharing the campaign directory)."
        ),
    )
    parser.add_argument("campaign_dir", type=Path)
    parser.add_argument(
        "--max-cells", type=int, default=None, help="stop after this many cells"
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=None,
        help="keep polling this many seconds for new work before exiting "
             "(default: exit as soon as the queue is drained)",
    )
    parser.add_argument(
        "--lease-seconds", type=float, default=600.0,
        help="how long a claimed cell may run before others may reclaim it",
    )
    parser.add_argument("--worker-id", default=None, help="label in the event trail")
    parser.add_argument(
        "--no-heartbeat", action="store_true",
        help="disable the mid-cell lease heartbeat (leases then expire "
             "after --lease-seconds regardless of cell progress)",
    )
    _add_telemetry_flag(parser)
    _add_fault_flags(parser)
    args = parser.parse_args(argv)
    _configure_faults(args)
    if args.telemetry is not None:
        # A default for cells whose payload carries no level; payloads from
        # a --telemetry sweep coordinator override this per cell.
        set_telemetry_level(args.telemetry)

    def progress(outcome: dict, executed: int) -> None:
        print(
            f"[{executed}] {outcome['cell_id']}: {outcome['status']} "
            f"({outcome['duration_seconds']:.2f}s)",
            flush=True,
        )

    executed = drain_queue(
        args.campaign_dir,
        worker=args.worker_id,
        lease_seconds=args.lease_seconds,
        idle_timeout=args.idle_timeout,
        max_cells=args.max_cells,
        heartbeat=not args.no_heartbeat,
        progress=progress,
    )
    print(f"drained {executed} cells from {args.campaign_dir}")
    return 0


class _WatchState:
    """Incremental dashboard aggregation over a campaign's event trail.

    Events fold in one at a time (the watch loop tails the file by
    offset, so a long campaign never re-parses its backlog), and a
    ``campaign_started`` event resets the counters — an append-only trail
    accumulates every invocation of a resumed campaign, and the dashboard
    must describe the *latest* one, not the union.
    """

    RECENT = 5
    THROUGHPUT_WINDOW = 20

    def __init__(self, grid_cells: int | None) -> None:
        self.grid_cells = grid_cells
        self._begin({})

    def _begin(self, meta: dict) -> None:
        self.meta = meta
        self.skipped = int(meta.get("skipped", 0) or 0)
        if meta.get("total_cells"):
            self.grid_cells = int(meta["total_cells"])
        self.in_flight: set[str] = set()
        self.finished = 0
        self.failed = 0
        self.retried = 0
        self.quarantined: set[str] = set()
        self.lease_lost = 0
        self.duration_sum = 0.0
        self.finish_times: list[float] = []
        self.workers: set[str] = set()
        self.recent: list[str] = []
        self.campaign_done = False
        # Per-round decision latency merged across every cell that shipped
        # a telemetry record on its cell_finished event (--telemetry spans).
        self.latency = None
        self.latency_cells = 0

    def add(self, event) -> None:
        if event.type == "campaign_started":
            self._begin(dict(event.data))
            return
        if event.worker:
            self.workers.add(event.worker)
        if event.type in ("campaign_finished", "campaign_interrupted"):
            self.campaign_done = True
        elif event.type == "cell_started" and event.cell_id:
            self.in_flight.add(event.cell_id)
        elif event.type == "cell_retry" and event.cell_id:
            self.retried += 1
            # The attempt's cell_failed already counted; the cell is being
            # re-queued, so it is not a *final* failure (nor done).
            self.failed = max(0, self.failed - 1)
            attempt = event.data.get("attempt", "?")
            self.recent = (
                self.recent
                + [
                    f"  {event.cell_id}: retry (attempt {attempt} failed: "
                    f"{event.data.get('exception_type', '?')})"
                ]
            )[-self.RECENT:]
        elif event.type == "cell_quarantined" and event.cell_id:
            self.quarantined.add(event.cell_id)
        elif event.type == "cell_lease_lost" and event.cell_id:
            self.lease_lost += 1
        elif event.type in ("cell_finished", "cell_failed") and event.cell_id:
            self.in_flight.discard(event.cell_id)
            duration = float(event.data.get("duration_seconds", 0.0))
            self.duration_sum += duration
            self.finish_times = (
                self.finish_times + [event.timestamp]
            )[-self.THROUGHPUT_WINDOW:]
            if event.type == "cell_finished":
                self.finished += 1
                welfare = event.data.get("metrics", {}).get("total_welfare")
                tail = (
                    f" welfare={welfare:.3f}" if isinstance(welfare, float) else ""
                )
                self._fold_latency(event.data.get("telemetry"))
            else:
                self.failed += 1
                tail = f" error={event.data.get('error', '?')}"
            self.recent = (
                self.recent
                + [
                    f"  {event.cell_id}: {event.type.removeprefix('cell_')} "
                    f"({duration:.2f}s){tail}"
                ]
            )[-self.RECENT:]

    def _fold_latency(self, record) -> None:
        """Merge one cell's compact decision-latency record (or ignore it)."""
        if not isinstance(record, dict) or "hist" not in record:
            return
        from repro.telemetry import Histogram

        try:
            histogram = Histogram.from_dict(record["hist"])
        except (TypeError, ValueError):
            return
        if self.latency is None:
            self.latency = histogram
        else:
            self.latency.merge(histogram)
        self.latency_cells += 1

    def render(self) -> str:
        lines = [
            f"campaign {self.meta.get('name', '?')!r}  "
            f"backend={self.meta.get('backend', '?')}  "
            f"store={self.meta.get('store', '?')}"
        ]
        done = self.skipped + self.finished + self.failed
        if self.grid_cells:
            bar_width = 30
            filled = int(bar_width * min(1.0, done / self.grid_cells))
            lines.append(
                f"[{'#' * filled}{'.' * (bar_width - filled)}] "
                f"{done}/{self.grid_cells} cells"
                + (f" ({self.skipped} from checkpoint)" if self.skipped else "")
            )
        status = (
            f"finished={self.finished} failed={self.failed} "
            f"in-flight={len(self.in_flight)} workers-seen={len(self.workers)}"
        )
        if self.retried:
            status += f" retried={self.retried}"
        if self.quarantined:
            status += f" quarantined={len(self.quarantined)}"
        if self.lease_lost:
            status += f" lease-lost={self.lease_lost}"
        lines.append(status)
        executed = self.finished + self.failed
        if executed:
            span = self.finish_times[-1] - self.finish_times[0]
            rate = (
                (len(self.finish_times) - 1) / span if span > 0 else float("inf")
            )
            lines.append(
                f"mean cell {self.duration_sum / executed:.2f}s; "
                f"recent throughput {rate:.2f} cells/s"
            )
        if self.latency is not None and self.latency.count:
            summary = self.latency.summary()
            lines.append(
                f"round latency ({self.latency_cells} cells, "
                f"{self.latency.count} rounds): "
                f"p50={summary['p50_ms']:.3f}ms p95={summary['p95_ms']:.3f}ms "
                f"p99={summary['p99_ms']:.3f}ms max={summary['max_ms']:.3f}ms"
            )
        if self.recent:
            lines.append("recent:")
            lines.extend(self.recent)
        return "\n".join(lines)


def _main_watch(argv: list[str]) -> int:
    """Tail a campaign's event trail into a live terminal dashboard."""
    import json
    import time

    from repro.orchestration import EVENTS_NAME
    from repro.orchestration.events import CampaignEvent
    from repro.orchestration.executor import SWEEP_SPEC_NAME
    from repro.orchestration.sweep import SweepSpec

    parser = argparse.ArgumentParser(
        prog="repro.cli watch",
        description="Live dashboard over a campaign's events.jsonl trail.",
    )
    parser.add_argument("campaign_dir", type=Path)
    parser.add_argument("--poll", type=float, default=0.5, help="refresh seconds")
    parser.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit (non-interactive use)",
    )
    args = parser.parse_args(argv)

    events_path = args.campaign_dir / EVENTS_NAME
    total_cells = None
    spec_path = args.campaign_dir / SWEEP_SPEC_NAME
    if spec_path.exists():
        total_cells = SweepSpec.load(spec_path).num_cells

    state = _AutoWatchState(total_cells)
    position = 0
    buffer = ""
    clear = "\x1b[2J\x1b[H" if sys.stdout.isatty() else ""
    try:
        while True:
            if events_path.exists():
                with open(events_path) as handle:
                    handle.seek(position)
                    buffer += handle.read()
                    position = handle.tell()
                while "\n" in buffer:
                    line, buffer = buffer.split("\n", 1)
                    try:
                        state.add(CampaignEvent.from_dict(json.loads(line)))
                    except (ValueError, KeyError):
                        continue  # torn write; skip the line
            print(clear + state.render(), flush=True)
            if args.once:
                return 0
            if state.campaign_done:
                return 0
            time.sleep(args.poll)
    except KeyboardInterrupt:
        return 0


# -- the auction service ------------------------------------------------------


def _main_serve(argv: list[str]) -> int:
    """Run the long-lived auction server (see :mod:`repro.service`)."""
    import asyncio
    import signal

    from repro.service.server import AuctionServer

    parser = argparse.ArgumentParser(
        prog="repro.cli serve",
        description=(
            "Serve named auction markets over newline-delimited JSON/TCP "
            "(and optionally a thin HTTP facade).  Markets persisted under "
            "--dir are restored on start, so a restarted server resumes "
            "with the same budget backlogs."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7464)
    parser.add_argument(
        "--http-port", type=int, default=None,
        help="also expose POST /v1/<op> on this port",
    )
    parser.add_argument(
        "--dir", type=Path, default=None, dest="directory",
        help="service state root (snapshots, outcome trails, events.jsonl); "
             "omit for a purely in-memory server",
    )
    _add_telemetry_flag(parser)
    args = parser.parse_args(argv)
    if args.telemetry is not None:
        set_telemetry_level(args.telemetry)

    server = AuctionServer(
        args.host, args.port, directory=args.directory, http_port=args.http_port
    )

    async def _serve() -> None:
        await server.start()
        print(
            f"auction service on {args.host}:{server.bound_port}"
            + (
                f" (http {server.http_bound_port})"
                if server.http_bound_port is not None
                else ""
            )
            + (f", state in {args.directory}" if args.directory else " (in-memory)"),
            flush=True,
        )
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(
                sig, lambda: loop.create_task(server.stop())
            )
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _main_replay(argv: list[str]) -> int:
    """Replay an archived event trail into a live market (load generator)."""
    import json

    from repro.service.client import ServiceClient, ServiceError
    from repro.service.replay import load_trace, replay_trace

    parser = argparse.ArgumentParser(
        prog="repro.cli replay",
        description=(
            "Re-emit an archived run (event_log.json, a run directory, or "
            "a campaign directory) as live bid traffic against a running "
            "auction service, preserving round boundaries."
        ),
    )
    parser.add_argument("trail", type=Path, help="archived trail to replay")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7464)
    parser.add_argument("--market", default="replay", help="target market name")
    parser.add_argument(
        "--speedup", type=float, default=float("inf"),
        help="divide archived round durations by this (default: no sleeping)",
    )
    parser.add_argument(
        "--interval", type=float, default=0.0,
        help="fallback per-round gap (s) when the trail has no durations",
    )
    parser.add_argument(
        "--jitter", action="store_true",
        help="resample gaps from an exponential (Poisson-like arrivals)",
    )
    parser.add_argument("--seed", type=int, default=0, help="jitter RNG seed")
    parser.add_argument("--max-rounds", type=int, default=None)
    parser.add_argument(
        "--create", action="store_true",
        help="create the market first (exist_ok) with the flags below",
    )
    parser.add_argument("--mechanism", choices=MECHANISM_NAMES, default=None)
    parser.add_argument("--config", type=Path, help="ExperimentConfig JSON")
    parser.add_argument("--clients", type=int, dest="num_clients")
    parser.add_argument("--v", type=float)
    parser.add_argument("--budget", type=float, dest="budget_per_round")
    parser.add_argument("--max-winners", type=int, dest="max_winners")
    parser.add_argument(
        "--min-selected", type=int, default=1,
        help="exit nonzero unless at least this many replayed rounds "
             "produced a nonzero allocation",
    )
    parser.add_argument("--json", action="store_true", help="print stats as JSON")
    args = parser.parse_args(argv)

    trace = load_trace(args.trail)
    try:
        with ServiceClient(args.host, args.port) as client:
            if args.create:
                config = (
                    ExperimentConfig.load(args.config)
                    if args.config
                    else ExperimentConfig()
                )
                overrides = {
                    field: getattr(args, field)
                    for field in ("num_clients", "v", "budget_per_round",
                                  "max_winners")
                    if getattr(args, field) is not None
                }
                if overrides:
                    config = config.with_overrides(**overrides)
                client.create_market(
                    args.market,
                    experiment=config.to_dict(),
                    mechanism=args.mechanism,
                    exist_ok=True,
                )
            stats = replay_trace(
                client,
                args.market,
                trace,
                speedup=args.speedup,
                interval=args.interval,
                jitter=args.jitter,
                seed=args.seed,
                max_rounds=args.max_rounds,
            )
    except (ConnectionError, OSError) as error:
        print(f"cannot reach service at {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 1
    except ServiceError as error:
        print(f"service error [{error.error_type}]: {error.message}",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(stats.to_dict(), indent=2, sort_keys=True))
    else:
        print(
            format_table(
                ["metric", "value"],
                [[key, value] for key, value in stats.to_dict().items()],
                title=f"Replay into {args.market!r}",
            )
        )
    if stats.rounds_with_allocations < args.min_selected:
        print(
            f"only {stats.rounds_with_allocations} replayed round(s) produced "
            f"allocations (--min-selected {args.min_selected})",
            file=sys.stderr,
        )
        return 1
    return 0


def _main_markets(argv: list[str]) -> int:
    """Inspect (and optionally snapshot/stop) a running auction service."""
    import json

    from repro.service.client import ServiceClient, ServiceError

    parser = argparse.ArgumentParser(
        prog="repro.cli markets",
        description="List a running auction service's markets and their stats.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7464)
    parser.add_argument("--json", action="store_true", help="print raw JSON")
    parser.add_argument(
        "--snapshot", action="store_true",
        help="ask the server to snapshot all markets first",
    )
    parser.add_argument(
        "--stop", action="store_true",
        help="request a graceful shutdown (snapshots everything) after listing",
    )
    args = parser.parse_args(argv)
    try:
        with ServiceClient(args.host, args.port) as client:
            if args.snapshot:
                client.snapshot()
            rows = client.markets()
            if args.stop:
                client.shutdown()
    except (ConnectionError, OSError) as error:
        print(f"cannot reach service at {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 1
    except ServiceError as error:
        print(f"service error [{error.error_type}]: {error.message}",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        columns = ["market", "mechanism", "rounds", "empty", "bids", "rejected",
                   "pending", "backlog", "p50 ms", "p99 ms"]
        table_rows = []
        for row in rows:
            latency = row.get("decision_latency_ms", {})
            table_rows.append([
                row["name"], row["mechanism"], row["rounds_closed"],
                row["empty_rounds"], row["bids_accepted"], row["bids_rejected"],
                row["pending"],
                (f"{row['budget_backlog']:.3f}"
                 if "budget_backlog" in row else "-"),
                (f"{latency['p50_ms']:.3f}" if latency else "-"),
                (f"{latency['p99_ms']:.3f}" if latency else "-"),
            ])
        print(format_table(columns, table_rows, title="Auction service markets"))
        if args.stop:
            print("graceful shutdown requested")
    return 0


_SERVICE_EVENT_TYPES = (
    "server_started", "server_stopped", "market_created", "round_closed"
)


class _ServiceWatchState:
    """Dashboard aggregation over an auction service's event trail.

    The same ``repro.cli watch`` loop tails both trail kinds;
    :class:`_AutoWatchState` flips to this one as soon as a service event
    appears.  ``server_started`` resets per-incarnation aggregates (the
    trail is append-only across restarts) but market rows rebuild from the
    subsequent ``round_closed`` stream.
    """

    RECENT = 5

    def __init__(self) -> None:
        self.meta: dict = {}
        self.markets: dict[str, dict] = {}
        self.recent: list[str] = []
        self.campaign_done = False
        self.restarts = -1

    def add(self, event) -> None:
        if event.type == "server_started":
            self.meta = dict(event.data)
            self.campaign_done = False
            self.restarts += 1
            return
        if event.type == "server_stopped":
            self.campaign_done = True
            return
        if event.type == "market_created" and event.cell_id:
            self.markets.setdefault(
                event.cell_id,
                {"mechanism": event.data.get("mechanism", "?"), "rounds": 0,
                 "bids": 0, "payment": 0.0, "backlog": None},
            )
            return
        if event.type == "round_closed" and event.cell_id:
            row = self.markets.setdefault(
                event.cell_id,
                {"mechanism": "?", "rounds": 0, "bids": 0, "payment": 0.0,
                 "backlog": None},
            )
            row["rounds"] += 1
            row["bids"] += int(event.data.get("num_bids", 0))
            row["payment"] += float(event.data.get("total_payment", 0.0))
            if event.data.get("budget_backlog") is not None:
                row["backlog"] = float(event.data["budget_backlog"])
            decision = event.data.get("decision_ms")
            tail = f" ({decision:.2f}ms)" if isinstance(decision, float) else ""
            self.recent = (
                self.recent
                + [
                    f"  {event.cell_id} r{event.data.get('round_index', '?')}: "
                    f"{event.data.get('num_selected', 0)}/"
                    f"{event.data.get('num_bids', 0)} selected "
                    f"[{event.data.get('trigger', '?')}]{tail}"
                ]
            )[-self.RECENT:]

    def render(self) -> str:
        lines = [
            f"auction service on "
            f"{self.meta.get('host', '?')}:{self.meta.get('port', '?')}"
            + (f"  (restarts: {self.restarts})" if self.restarts > 0 else "")
        ]
        for name in sorted(self.markets):
            row = self.markets[name]
            backlog = (
                f" backlog={row['backlog']:.3f}"
                if row["backlog"] is not None
                else ""
            )
            lines.append(
                f"  {name} [{row['mechanism']}]: {row['rounds']} rounds, "
                f"{row['bids']} bids, paid {row['payment']:.3f}{backlog}"
            )
        if not self.markets:
            lines.append("  (no markets yet)")
        if self.recent:
            lines.append("recent rounds:")
            lines.extend(self.recent)
        if self.campaign_done:
            lines.append("server stopped")
        return "\n".join(lines)


class _AutoWatchState:
    """Dispatch a watched trail to the campaign or the service dashboard."""

    def __init__(self, grid_cells: int | None) -> None:
        self._campaign = _WatchState(grid_cells)
        self._service: _ServiceWatchState | None = None

    def add(self, event) -> None:
        if self._service is None and event.type in _SERVICE_EVENT_TYPES:
            self._service = _ServiceWatchState()
        (self._service or self._campaign).add(event)

    @property
    def campaign_done(self) -> bool:
        return (self._service or self._campaign).campaign_done

    def render(self) -> str:
        return (self._service or self._campaign).render()


_SUBCOMMANDS = {
    "sweep": _main_sweep,
    "resume": _main_resume,
    "report": _main_report,
    "profile": _main_profile,
    "work": _main_work,
    "watch": _main_watch,
    "serve": _main_serve,
    "replay": _main_replay,
    "markets": _main_markets,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in _SUBCOMMANDS:
        return _SUBCOMMANDS[argv[0]](argv[1:])
    return _main_single(argv)


if __name__ == "__main__":
    sys.exit(main())
