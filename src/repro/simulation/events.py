"""Structured per-round simulation records.

The :class:`EventLog` is the simulator's output: one :class:`RoundRecord`
per round with everything the analysis layer needs — who was available, who
bid what, whose costs were what (ground truth the mechanism never saw), who
won, what was paid, and the mechanism diagnostics.  All analysis and
reporting derives from this log, so experiments never reach into live
simulator state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RoundRecord", "EventLog"]


@dataclass(frozen=True)
class RoundRecord:
    """Ground-truth record of one simulated round."""

    round_index: int
    available: tuple[int, ...]
    bids: dict[int, float]
    true_costs: dict[int, float]
    values: dict[int, float]
    selected: tuple[int, ...]
    payments: dict[int, float]
    failed: tuple[int, ...] = ()
    diagnostics: dict[str, float] = field(default_factory=dict)
    round_duration: float = 0.0
    battery_levels: dict[int, float] = field(default_factory=dict)
    test_accuracy: float = float("nan")
    test_loss: float = float("nan")

    @property
    def total_payment(self) -> float:
        """Money spent this round."""
        return float(sum(self.payments.values()))

    @property
    def true_welfare(self) -> float:
        """Realised social welfare: sum of (value - true cost) over winners."""
        return float(
            sum(self.values[cid] - self.true_costs[cid] for cid in self.selected)
        )

    @property
    def server_surplus(self) -> float:
        """Value obtained minus money paid (the buyer's net)."""
        return float(
            sum(self.values[cid] for cid in self.selected) - self.total_payment
        )


class EventLog:
    """Ordered round records plus series/summary helpers."""

    def __init__(self) -> None:
        self._records: list[RoundRecord] = []

    def record(self, record: RoundRecord) -> None:
        """Append one round (must arrive in index order)."""
        if self._records and record.round_index <= self._records[-1].round_index:
            raise ValueError(
                f"round {record.round_index} recorded after "
                f"{self._records[-1].round_index}"
            )
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index: int) -> RoundRecord:
        return self._records[index]

    def __iter__(self):
        return iter(self._records)

    @property
    def records(self) -> tuple[RoundRecord, ...]:
        """All records, in order."""
        return tuple(self._records)

    def round_indices(self) -> list[int]:
        """The x-axis of every per-round series."""
        return [r.round_index for r in self._records]

    def payment_series(self) -> list[float]:
        """Per-round total payment."""
        return [r.total_payment for r in self._records]

    def welfare_series(self) -> list[float]:
        """Per-round realised welfare."""
        return [r.true_welfare for r in self._records]

    def cumulative(self, series: list[float]) -> list[float]:
        """Running sum of any per-round series."""
        return np.cumsum(series).tolist()

    def diagnostics_series(self, key: str) -> list[float]:
        """Per-round mechanism diagnostic (NaN where missing)."""
        return [float(r.diagnostics.get(key, float("nan"))) for r in self._records]

    def selection_counts(self) -> dict[int, int]:
        """Rounds won per client id."""
        counts: dict[int, int] = {}
        for record in self._records:
            for client_id in record.selected:
                counts[client_id] = counts.get(client_id, 0) + 1
        return counts

    def availability_counts(self) -> dict[int, int]:
        """Rounds each client was available (bid) in."""
        counts: dict[int, int] = {}
        for record in self._records:
            for client_id in record.available:
                counts[client_id] = counts.get(client_id, 0) + 1
        return counts

    def total_payment(self) -> float:
        """Money spent over the whole run."""
        return float(sum(r.total_payment for r in self._records))

    def total_welfare(self) -> float:
        """Welfare accumulated over the whole run."""
        return float(sum(r.true_welfare for r in self._records))

    def average_payment(self) -> float:
        """Average spend per round."""
        return self.total_payment() / len(self._records) if self._records else 0.0

    def accuracy_series(self) -> tuple[list[int], list[float]]:
        """(rounds, accuracy) with NaN (unevaluated) rounds dropped."""
        xs, ys = [], []
        for record in self._records:
            if not np.isnan(record.test_accuracy):
                xs.append(record.round_index)
                ys.append(record.test_accuracy)
        return xs, ys
