"""The end-to-end simulation loop.

:class:`SimulationRunner` drives one mechanism against one economic
population for ``T`` rounds.  Per round it:

1. determines the available clients (presence model + battery gating),
2. collects sealed bids via each client's bidding strategy,
3. computes server-side valuations (bid-independent),
4. runs the mechanism to get winners and payments,
5. applies consequences — battery drain/harvest, strategy learning,
   valuation staleness updates, optional FL training of the winners,
6. appends a ground-truth :class:`~repro.simulation.events.RoundRecord`.

Two modes: *mechanism-only* (no FL attached — thousands of rounds per
second, used by the economic experiments E2-E6/E8/E9) and *with-FL* (an
:class:`FLAttachment` trains the global model with the winner set each
round — experiments E1/E7/E10).

The loop can additionally run *batched* (``run(..., batch_rounds=R)``):
rounds are prepared in windows — availability, bids and values computed
from the state at window start, consuming every random stream in the same
order as the sequential loop — the window is handed to the mechanism as one
columnar :class:`~repro.core.bids.RoundBatch` via
:meth:`~repro.core.mechanism.Mechanism.run_rounds` (sequential semantics,
vectorised for stateless mechanisms), and the per-round consequences are
then applied in order.  For history-free populations (truthful static
bidders, mains power, stateless valuation — the canonical mechanism-only
scenario) this is exactly equivalent to the sequential loop; populations
whose bids, availability or values react to outcomes see that feedback only
at window boundaries, so callers opt in per run.  With FL attached, windows
never span an evaluation round.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.core.bids import AuctionRound, RoundBatch, RoundOutcome
from repro.core.mechanism import Mechanism
from repro.core.valuation import ValuationModel
from repro.economics.client_profile import EconomicClient
from repro.fl.batch import LocalSolver, VectorizedLocalSolver
from repro.fl.client import FLClient
from repro.fl.server import FLServer
from repro.logging_utils import get_logger
from repro.simulation.environment import AlwaysAvailable
from repro.simulation.events import EventLog, RoundRecord
from repro.simulation.network import NetworkModel

__all__ = ["FLAttachment", "SimulationRunner"]

_LOGGER = get_logger("simulation.runner")


class FLAttachment:
    """Couples a federated-learning substrate to the simulation.

    Parameters
    ----------
    server:
        The global-model holder.
    fl_clients:
        Client id -> :class:`~repro.fl.client.FLClient` (ids must match the
        economic clients').
    eval_every:
        Evaluate the global model every this many rounds.
    local_solver:
        The engine running the winners' local phases; defaults to the
        vectorised solver (:class:`~repro.fl.batch.VectorizedLocalSolver`),
        which stacks homogeneous winner groups and falls back to the scalar
        path per client otherwise.
    """

    def __init__(
        self,
        server: FLServer,
        fl_clients: dict[int, FLClient],
        *,
        eval_every: int = 5,
        local_solver: LocalSolver | None = None,
    ) -> None:
        if eval_every <= 0:
            raise ValueError(f"eval_every must be > 0, got {eval_every}")
        self.server = server
        self.fl_clients = dict(fl_clients)
        self.eval_every = int(eval_every)
        self.local_solver = (
            local_solver if local_solver is not None else VectorizedLocalSolver()
        )

    def step(
        self, round_index: int, selected: tuple[int, ...], *, force_eval: bool = False
    ) -> tuple[float, float, dict[int, float]]:
        """Train the winners, aggregate, optionally evaluate.

        Returns ``(test_loss, test_accuracy, contributions)``; losses are
        NaN when evaluation was skipped this round.  ``contributions`` maps
        each trained winner to the magnitude (L2 norm) of its parameter
        update — the realised-usefulness signal consumed by
        :class:`repro.core.quality_estimation.LearnedValuation`.
        """
        with telemetry.span("fl_step"):
            global_params = self.server.global_params()
            updates = self.local_solver.train(
                [self.fl_clients[cid] for cid in selected if cid in self.fl_clients],
                global_params,
            )
            with telemetry.span("fl_aggregate"):
                self.server.apply_updates(updates)
        contributions = dict(
            zip(
                updates.client_ids,
                np.linalg.norm(updates.deltas, axis=1).tolist(),
            )
        )
        if force_eval or round_index % self.eval_every == 0:
            loss, accuracy = self.server.evaluate()
            return loss, accuracy, contributions
        return float("nan"), float("nan"), contributions


class SimulationRunner:
    """Runs a mechanism against an economic population.

    Parameters
    ----------
    mechanism:
        Any :class:`~repro.core.mechanism.Mechanism`.
    clients:
        The economic population.
    valuation:
        Server-side valuation model.
    presence:
        Optional client id -> presence model (default: always present).
    network:
        Optional timing model (round durations recorded when given).
    fl:
        Optional FL attachment (winners train the global model).
    seed:
        Seed for the runner's own randomness (presence dropouts).
    """

    def __init__(
        self,
        mechanism: Mechanism,
        clients: list[EconomicClient],
        valuation: ValuationModel,
        *,
        presence: dict[int, object] | None = None,
        network: NetworkModel | None = None,
        fl: FLAttachment | None = None,
        seed: int = 0,
    ) -> None:
        ids = [client.client_id for client in clients]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate economic client ids")
        self.mechanism = mechanism
        self.clients = {client.client_id: client for client in clients}
        self.valuation = valuation
        self.presence = presence or {}
        self._default_presence = AlwaysAvailable()
        self.network = network
        self.fl = fl
        self.rng = np.random.default_rng(seed)
        self.log = EventLog()

    def _available_clients(self, round_index: int) -> list[EconomicClient]:
        available = []
        for client_id in sorted(self.clients):
            client = self.clients[client_id]
            presence = self.presence.get(client_id, self._default_presence)
            if presence.is_present(round_index, self.rng) and client.is_available():
                available.append(client)
        return available

    def _prepare_round(self, round_index: int) -> "_PreparedRound":
        """Phase 1 of a round: availability, bids, values, the auction round.

        Consumes exactly the random draws the sequential loop would, in the
        same order, so batched windows stay on the same streams.
        """
        with telemetry.span("round_prepare"):
            available = self._available_clients(round_index)
            bids = tuple(client.make_bid(round_index) for client in available)
            if bids:
                values = self.valuation.values_for(bids)
                auction_round = AuctionRound(
                    index=round_index, bids=bids, values=values
                )
            else:
                values = {}
                auction_round = None
        return _PreparedRound(round_index, available, bids, values, auction_round)

    def run_round(self, round_index: int, *, force_eval: bool = False) -> RoundRecord:
        """Simulate one round end to end and append its record."""
        prepared = self._prepare_round(round_index)
        if prepared.auction_round is not None:
            # The per-round decision latency the SLO harness gates on: the
            # mechanism's whole decide path (winner determination, payments,
            # queue feedback), excluding simulation bookkeeping.
            with telemetry.span("round_decide"):
                outcome = self.mechanism.run_round(prepared.auction_round)
        else:
            outcome = RoundOutcome(round_index=round_index, selected=(), payments={})
        return self._apply_outcome(prepared, outcome, force_eval=force_eval)

    def _apply_outcome(
        self,
        prepared: "_PreparedRound",
        outcome: RoundOutcome,
        *,
        force_eval: bool = False,
    ) -> RoundRecord:
        """Phase 2 of a round: consequences, learning, FL step, the record."""
        with telemetry.span("round_apply"):
            return self._apply_outcome_inner(
                prepared, outcome, force_eval=force_eval
            )

    def _apply_outcome_inner(
        self,
        prepared: "_PreparedRound",
        outcome: RoundOutcome,
        *,
        force_eval: bool = False,
    ) -> RoundRecord:
        round_index = prepared.round_index
        available = prepared.available
        bids = prepared.bids
        values = prepared.values

        # Pay-on-delivery: winners whose upload fails drain their battery
        # (the work happened) but receive no payment and contribute nothing.
        winners = set(outcome.selected)
        delivered = tuple(
            cid for cid in outcome.selected if self.clients[cid].attempt_delivery()
        )
        delivered_set = set(delivered)
        failed = tuple(cid for cid in outcome.selected if cid not in delivered_set)

        work = 0.0
        for client_id in sorted(self.clients):
            client = self.clients[client_id]
            payment = (
                outcome.payment_of(client_id) if client_id in delivered_set else 0.0
            )
            client.post_round(
                round_index,
                selected=client_id in winners,
                payment=payment,
            )
            if client_id in winners:
                work = max(work, float(client.local_steps * client.batch_size))
        self.valuation.observe_selection(delivered)

        duration = 0.0
        if self.network is not None:
            duration = self.network.round_duration(outcome.selected, work)

        test_loss = test_accuracy = float("nan")
        if self.fl is not None:
            test_loss, test_accuracy, contributions = self.fl.step(
                round_index, delivered, force_eval=force_eval
            )
            observe = getattr(self.valuation, "observe_contributions", None)
            if observe is not None and contributions:
                observe(contributions)

        diagnostics = dict(outcome.diagnostics)
        if failed:
            diagnostics["committed_payment"] = outcome.total_payment
        record = RoundRecord(
            round_index=round_index,
            available=tuple(client.client_id for client in available),
            bids={bid.client_id: bid.cost for bid in bids},
            true_costs={
                client.client_id: client.true_cost() for client in available
            },
            values=dict(values),
            selected=delivered,
            payments={cid: outcome.payments[cid] for cid in delivered},
            failed=failed,
            diagnostics=diagnostics,
            round_duration=duration,
            battery_levels={
                client_id: client.battery.level
                for client_id, client in self.clients.items()
                if client.battery is not None
            },
            test_loss=test_loss,
            test_accuracy=test_accuracy,
        )
        self.log.record(record)
        return record

    def _window_sizes(self, num_rounds: int, batch_rounds: int) -> list[int]:
        """Cut the horizon into flush windows of at most ``batch_rounds``.

        With FL attached, a window never spans an evaluation round: every
        round satisfying the ``eval_every`` schedule (and the final
        force-eval round) starts a new window, so evaluation always sees a
        model trained on fully applied prior rounds.
        """
        boundaries = {0, num_rounds - 1}
        if self.fl is not None:
            boundaries.update(range(0, num_rounds, self.fl.eval_every))
        sizes = []
        start = 0
        while start < num_rounds:
            end = min(start + batch_rounds, num_rounds)
            for boundary in sorted(boundaries):
                if start < boundary < end:
                    end = boundary
                    break
            sizes.append(end - start)
            start = end
        return sizes

    def _run_window(self, start: int, size: int, last_round: int) -> None:
        """Prepare, batch-solve and apply one window of rounds."""
        prepared = [self._prepare_round(start + offset) for offset in range(size)]
        with_bids = [p for p in prepared if p.auction_round is not None]
        outcomes: dict[int, RoundOutcome] = {}
        if with_bids:
            batch = RoundBatch.from_rounds([p.auction_round for p in with_bids])
            # The batched decision latency: one sample covers the whole
            # window, so per-round figures are amortised (count = windows).
            with telemetry.span("round_decide_batch"):
                decided = self.mechanism.run_rounds(batch)
            for p, outcome in zip(with_bids, decided):
                outcomes[p.round_index] = outcome
        for p in prepared:
            outcome = outcomes.get(
                p.round_index,
                RoundOutcome(round_index=p.round_index, selected=(), payments={}),
            )
            self._apply_outcome(p, outcome, force_eval=p.round_index == last_round)

    def run(
        self,
        num_rounds: int,
        *,
        log_every: int | None = None,
        batch_rounds: int | None = None,
    ) -> EventLog:
        """Simulate ``num_rounds`` rounds; returns the event log.

        ``batch_rounds`` > 1 opts into windowed batched execution (see the
        module docstring): exact for history-free populations, feedback
        deferred to window boundaries otherwise.
        """
        if num_rounds <= 0:
            raise ValueError(f"num_rounds must be > 0, got {num_rounds}")
        if batch_rounds is not None and batch_rounds > 1:
            start = 0
            for size in self._window_sizes(num_rounds, batch_rounds):
                self._run_window(start, size, last_round=num_rounds - 1)
                start += size
                if log_every:
                    # Same cadence as the sequential loop: every round on
                    # the log_every schedule, logged at its window's flush.
                    for record in self.log.records()[start - size : start]:
                        if record.round_index % log_every == 0:
                            _LOGGER.info(
                                "round %d: %d available, %d selected, paid %.3f",
                                record.round_index,
                                len(record.available),
                                len(record.selected),
                                record.total_payment,
                            )
            return self.log
        for round_index in range(num_rounds):
            force_eval = round_index == num_rounds - 1
            record = self.run_round(round_index, force_eval=force_eval)
            if log_every and round_index % log_every == 0:
                _LOGGER.info(
                    "round %d: %d available, %d selected, paid %.3f",
                    round_index,
                    len(record.available),
                    len(record.selected),
                    record.total_payment,
                )
        return self.log


@dataclass(frozen=True)
class _PreparedRound:
    """Phase-1 output of one round (see :meth:`SimulationRunner.run_round`)."""

    round_index: int
    available: list
    bids: tuple
    values: dict
    auction_round: AuctionRound | None
