"""Online simulation environment and end-to-end orchestration.

* :mod:`repro.simulation.events` — structured per-round records,
* :mod:`repro.simulation.environment` — client availability dynamics
  (join/leave windows, random dropout) on top of the energy gating,
* :mod:`repro.simulation.network` — communication/compute timing model,
* :mod:`repro.simulation.runner` — the :class:`SimulationRunner` driving
  mechanism + economics (+ optionally FL training) round by round,
* :mod:`repro.simulation.scenarios` — canned, seeded scenario builders used
  by the examples and every benchmark.
"""

from repro.simulation.environment import AlwaysAvailable, OnlineAvailability
from repro.simulation.events import EventLog, RoundRecord
from repro.simulation.network import NetworkModel
from repro.simulation.replay import load_event_log, save_event_log
from repro.simulation.runner import FLAttachment, SimulationRunner
from repro.simulation.scenarios import (
    Scenario,
    build_fl_scenario,
    build_mechanism_scenario,
    icdcs_defaults,
)
from repro.simulation.topology import HierarchicalTopology

__all__ = [
    "AlwaysAvailable",
    "EventLog",
    "FLAttachment",
    "HierarchicalTopology",
    "NetworkModel",
    "OnlineAvailability",
    "RoundRecord",
    "Scenario",
    "SimulationRunner",
    "build_fl_scenario",
    "build_mechanism_scenario",
    "icdcs_defaults",
    "load_event_log",
    "save_event_log",
]
