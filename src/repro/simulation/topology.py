"""Network topologies for hierarchical federations (networkx based).

Real deployments are not a star: clients attach to edge aggregators that
relay to the cloud.  :class:`HierarchicalTopology` models a two-tier tree —
clients -> edge servers -> cloud — and derives per-client upload latency
from the tree's edge latencies.  One synchronous round then lasts

    ``max over edges e of [ max over winners under e of client latency
                            + edge-to-cloud latency ]``

because edge aggregators forward as soon as their slowest local winner
arrives.  The topology also answers locality queries (which winners share
an edge) used by the topology-aware reporting.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.utils.validation import check_positive

__all__ = ["HierarchicalTopology"]

_CLOUD = "cloud"


class HierarchicalTopology:
    """A clients -> edges -> cloud aggregation tree.

    Parameters
    ----------
    edge_of:
        Client id -> edge-server index.
    client_latency:
        Client id -> seconds to upload one model to its edge server.
    edge_latency:
        Edge index -> seconds to forward one aggregate to the cloud.
    """

    def __init__(
        self,
        edge_of: dict[int, int],
        client_latency: dict[int, float],
        edge_latency: dict[int, float],
    ) -> None:
        if set(edge_of) != set(client_latency):
            raise ValueError("edge_of and client_latency must cover the same clients")
        missing = {edge for edge in edge_of.values() if edge not in edge_latency}
        if missing:
            raise ValueError(f"edge_latency missing for edges {sorted(missing)}")
        self.edge_of = {int(c): int(e) for c, e in edge_of.items()}
        self.client_latency = {
            int(c): check_positive(f"client_latency[{c}]", latency)
            for c, latency in client_latency.items()
        }
        self.edge_latency = {
            int(e): check_positive(f"edge_latency[{e}]", latency)
            for e, latency in edge_latency.items()
        }

        self._graph = nx.DiGraph()
        self._graph.add_node(_CLOUD)
        for edge, latency in self.edge_latency.items():
            self._graph.add_edge(f"edge/{edge}", _CLOUD, latency=latency)
        for client, edge in self.edge_of.items():
            self._graph.add_edge(
                f"client/{client}", f"edge/{edge}",
                latency=self.client_latency[client],
            )

    @classmethod
    def random(
        cls,
        client_ids: list[int],
        num_edges: int,
        rng: np.random.Generator,
        *,
        client_latency_range: tuple[float, float] = (0.05, 0.5),
        edge_latency_range: tuple[float, float] = (0.01, 0.1),
    ) -> "HierarchicalTopology":
        """Random attachment of clients to ``num_edges`` edge servers."""
        if num_edges <= 0:
            raise ValueError(f"num_edges must be > 0, got {num_edges}")
        return cls(
            edge_of={cid: int(rng.integers(num_edges)) for cid in client_ids},
            client_latency={
                cid: float(rng.uniform(*client_latency_range)) for cid in client_ids
            },
            edge_latency={
                e: float(rng.uniform(*edge_latency_range)) for e in range(num_edges)
            },
        )

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying aggregation tree (clients -> edges -> cloud)."""
        return self._graph

    @property
    def num_edges(self) -> int:
        """Number of edge servers."""
        return len(self.edge_latency)

    def clients_under(self, edge: int) -> tuple[int, ...]:
        """Client ids attached to one edge server, sorted."""
        return tuple(
            sorted(c for c, e in self.edge_of.items() if e == edge)
        )

    def path_latency(self, client_id: int) -> float:
        """End-to-end upload latency of one client (client + edge hop)."""
        if client_id not in self.edge_of:
            raise KeyError(f"unknown client {client_id}")
        return self.client_latency[client_id] + self.edge_latency[self.edge_of[client_id]]

    def round_duration(self, selected: tuple[int, ...]) -> float:
        """Synchronous round duration with per-edge pipelined aggregation."""
        if not selected:
            return 0.0
        per_edge: dict[int, float] = {}
        for client_id in selected:
            edge = self.edge_of[client_id]
            per_edge[edge] = max(
                per_edge.get(edge, 0.0), self.client_latency[client_id]
            )
        return max(
            slowest_client + self.edge_latency[edge]
            for edge, slowest_client in per_edge.items()
        )

    def edge_concentration(self, selected: tuple[int, ...]) -> float:
        """Fraction of winners on the most loaded edge (1.0 = all on one).

        A locality metric: selecting everyone behind one congested edge
        makes rounds straggler-bound even if each client is fast.
        """
        if not selected:
            return 0.0
        counts: dict[int, int] = {}
        for client_id in selected:
            edge = self.edge_of[client_id]
            counts[edge] = counts.get(edge, 0) + 1
        return max(counts.values()) / len(selected)

    def __repr__(self) -> str:
        return (
            f"HierarchicalTopology(clients={len(self.edge_of)}, "
            f"edges={self.num_edges})"
        )
