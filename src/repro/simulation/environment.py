"""Client availability dynamics beyond energy.

The *online* part of the mechanism: clients are not a fixed pool.  They join
and leave the federation (churn) and suffer transient dropouts (connectivity,
user activity) independent of their battery.  An availability model answers
one question per round: could this client bid right now, energy aside?
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_probability

__all__ = ["AlwaysAvailable", "OnlineAvailability"]


class AlwaysAvailable:
    """The static-population model: present from round 0 forever."""

    def is_present(self, round_index: int, rng: np.random.Generator) -> bool:
        """Always True."""
        return True

    def __repr__(self) -> str:
        return "AlwaysAvailable()"


class OnlineAvailability:
    """Join/leave window plus i.i.d. per-round dropout.

    Parameters
    ----------
    join_round:
        First round the client exists in the system.
    leave_round:
        First round the client is gone (``None`` = never leaves).
    dropout_prob:
        Per-round probability of being unreachable while present.
    """

    def __init__(
        self,
        join_round: int = 0,
        leave_round: int | None = None,
        dropout_prob: float = 0.0,
    ) -> None:
        if join_round < 0:
            raise ValueError(f"join_round must be >= 0, got {join_round}")
        if leave_round is not None and leave_round <= join_round:
            raise ValueError(
                f"leave_round ({leave_round}) must be > join_round ({join_round})"
            )
        self.join_round = int(join_round)
        self.leave_round = None if leave_round is None else int(leave_round)
        self.dropout_prob = check_probability("dropout_prob", dropout_prob)

    def is_present(self, round_index: int, rng: np.random.Generator) -> bool:
        """Whether the client can bid in ``round_index``."""
        if round_index < self.join_round:
            return False
        if self.leave_round is not None and round_index >= self.leave_round:
            return False
        if self.dropout_prob > 0 and rng.random() < self.dropout_prob:
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"OnlineAvailability(join={self.join_round}, "
            f"leave={self.leave_round}, dropout={self.dropout_prob})"
        )
