"""Round timing: a simple compute + upload latency model.

Synchronous FL rounds last as long as the slowest selected client
(straggler effect).  The model assigns each client a compute rate
(sample-gradient evaluations per second) and an uplink bandwidth
(parameters per second); one round's duration is the maximum over winners of
``work / rate + model_size / bandwidth``.  Used to convert "rounds" into
wall-clock time in the reporting, and to show that value-aware selection
does not accidentally pick straggler-heavy winner sets.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["NetworkModel"]


class NetworkModel:
    """Per-client latency parameters and round-duration computation.

    Parameters
    ----------
    compute_rates:
        Client id -> sample-gradient evaluations per second.
    bandwidths:
        Client id -> parameters uploaded per second.
    model_size:
        Number of model parameters transmitted per round.
    server_overhead:
        Fixed per-round coordination time (seconds).
    """

    def __init__(
        self,
        compute_rates: dict[int, float],
        bandwidths: dict[int, float],
        model_size: int,
        *,
        server_overhead: float = 0.1,
    ) -> None:
        if set(compute_rates) != set(bandwidths):
            raise ValueError("compute_rates and bandwidths must cover the same clients")
        self.compute_rates = {
            cid: check_positive(f"compute_rates[{cid}]", rate)
            for cid, rate in compute_rates.items()
        }
        self.bandwidths = {
            cid: check_positive(f"bandwidths[{cid}]", bw)
            for cid, bw in bandwidths.items()
        }
        if model_size <= 0:
            raise ValueError(f"model_size must be > 0, got {model_size}")
        self.model_size = int(model_size)
        self.server_overhead = check_positive("server_overhead", server_overhead)

    @classmethod
    def sample(
        cls,
        client_ids: list[int],
        model_size: int,
        rng: np.random.Generator,
        *,
        rate_range: tuple[float, float] = (2_000.0, 20_000.0),
        bandwidth_range: tuple[float, float] = (50_000.0, 500_000.0),
    ) -> "NetworkModel":
        """Draw a heterogeneous network from log-uniform ranges."""
        def log_uniform(low: float, high: float) -> float:
            return float(np.exp(rng.uniform(np.log(low), np.log(high))))

        return cls(
            compute_rates={cid: log_uniform(*rate_range) for cid in client_ids},
            bandwidths={cid: log_uniform(*bandwidth_range) for cid in client_ids},
            model_size=model_size,
        )

    def client_latency(self, client_id: int, work: float) -> float:
        """Seconds for one client to compute ``work`` and upload the model."""
        if client_id not in self.compute_rates:
            raise KeyError(f"no network parameters for client {client_id}")
        compute = work / self.compute_rates[client_id]
        upload = self.model_size / self.bandwidths[client_id]
        return compute + upload

    def round_duration(self, selected: tuple[int, ...], work: float) -> float:
        """Wall-clock seconds of one synchronous round (straggler-bound)."""
        if not selected:
            return self.server_overhead
        slowest = max(self.client_latency(cid, work) for cid in selected)
        return self.server_overhead + slowest
