"""Canned, seeded scenario builders.

A *scenario* bundles everything a :class:`~repro.simulation.runner.SimulationRunner`
needs except the mechanism: the economic population, the valuation model,
presence dynamics, the network model, and (optionally) a full FL substrate.
Scenario objects are stateful and single-use — experiments comparing
mechanisms call the builder once per mechanism with the same seed, which
reproduces an identical environment for each contender.

:func:`icdcs_defaults` centralises the canonical parameter set used across
the benchmark suite (documented in DESIGN.md's experiment index).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.valuation import (
    DiminishingReturnsValuation,
    StalenessAwareValuation,
    ValuationModel,
)
from repro.economics.client_profile import EconomicClient, build_population
from repro.economics.data_value import data_quality
from repro.fl.batch import VectorizedLocalSolver
from repro.fl.client import FLClient
from repro.fl.cnn import TinyConvNet
from repro.fl.datasets import make_synthetic_images, train_test_split
from repro.fl.linear import SoftmaxRegression
from repro.fl.mlp import MLPClassifier
from repro.fl.optimizer import SGD
from repro.fl.partition import dirichlet_partition, iid_partition
from repro.fl.server import FLServer
from repro.rng import RngTree
from repro.simulation.environment import OnlineAvailability
from repro.simulation.network import NetworkModel
from repro.simulation.runner import FLAttachment

__all__ = ["Scenario", "build_mechanism_scenario", "build_fl_scenario", "icdcs_defaults"]


def icdcs_defaults() -> dict:
    """The canonical parameter set of the benchmark suite.

    Reconstructed scale (see DESIGN.md): 40 clients, 10 winners per round,
    Dirichlet(0.5) label skew, V=50, per-round budget 5.0.
    """
    return {
        "num_clients": 40,
        "max_winners": 10,
        "dirichlet_alpha": 0.5,
        "v": 50.0,
        "budget_per_round": 5.0,
        "num_rounds": 300,
        "local_steps": 5,
        "batch_size": 32,
        "num_samples": 8000,
        "participation_target": 0.2,
    }


@dataclass
class Scenario:
    """A ready-to-run environment minus the mechanism (single-use)."""

    clients: list[EconomicClient]
    valuation: ValuationModel
    presence: dict[int, object] = field(default_factory=dict)
    network: NetworkModel | None = None
    fl: FLAttachment | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def client_ids(self) -> list[int]:
        """All economic client ids."""
        return [client.client_id for client in self.clients]

    def true_costs(self) -> dict[int, float]:
        """Ground-truth per-round costs, keyed by client id."""
        return {client.client_id: client.true_cost() for client in self.clients}

    def participation_targets(self, rate: float) -> dict[int, float]:
        """A uniform participation-rate target map for LT-VCG."""
        return {client_id: rate for client_id in self.client_ids}


def build_mechanism_scenario(
    num_clients: int = 40,
    *,
    seed: int = 0,
    energy_constrained: bool = False,
    strategy_factory=None,
    churn: bool = False,
    staleness_boost: float = 0.0,
    value_scale: float = 1.0,
    with_network: bool = False,
) -> Scenario:
    """Economics-only scenario (no FL) — fast, for E2-E6/E8/E9.

    Parameters
    ----------
    num_clients / seed:
        Population size and root seed.
    energy_constrained:
        Battery-gated availability (sustainability experiments).
    strategy_factory:
        ``(client_id, rng) -> BiddingStrategy``; default truthful.
    churn:
        When True, a third of the clients join late and a third leave early
        (the online-arrival dynamic).
    staleness_boost:
        >0 wraps the valuation in a staleness booster.
    value_scale:
        Scale of the diminishing-returns valuation.
    with_network:
        Attach a sampled network timing model.
    """
    tree = RngTree(seed)
    clients = build_population(
        num_clients,
        seed=tree.child_seed("population"),
        strategy_factory=strategy_factory,
        energy_constrained=energy_constrained,
    )
    valuation: ValuationModel = DiminishingReturnsValuation(
        scale=value_scale, reference_size=100
    )
    if staleness_boost > 0:
        valuation = StalenessAwareValuation(valuation, boost=staleness_boost)
        valuation.register_clients(tuple(c.client_id for c in clients))

    presence: dict[int, object] = {}
    if churn:
        churn_rng = tree.generator("churn")
        for client in clients:
            draw = churn_rng.random()
            if draw < 1 / 3:
                presence[client.client_id] = OnlineAvailability(
                    join_round=int(churn_rng.integers(50, 150))
                )
            elif draw < 2 / 3:
                presence[client.client_id] = OnlineAvailability(
                    leave_round=int(churn_rng.integers(150, 300))
                )

    network = None
    if with_network:
        network = NetworkModel.sample(
            [c.client_id for c in clients], model_size=650, rng=tree.generator("network")
        )

    # History-free: bids, availability and values never react to outcomes
    # (truthful static bidders, mains power, stateless valuation), so the
    # batched simulation path is exactly equivalent to the sequential one.
    history_free = (
        strategy_factory is None
        and not energy_constrained
        and staleness_boost == 0.0
    )
    return Scenario(
        clients=clients,
        valuation=valuation,
        presence=presence,
        network=network,
        metadata={
            "seed": seed,
            "num_clients": num_clients,
            "kind": "mechanism-only",
            "history_free": history_free,
        },
    )


def build_fl_scenario(
    num_clients: int = 40,
    *,
    seed: int = 0,
    num_samples: int = 8000,
    samples_per_client: int | None = None,
    dirichlet_alpha: float | None = 0.5,
    model: str = "softmax",
    local_steps: int = 5,
    batch_size: int = 32,
    learning_rate: float = 0.3,
    eval_every: int = 5,
    energy_constrained: bool = False,
    strategy_factory=None,
    value_scale: float = 1.0,
    staleness_boost: float = 0.0,
    lean_data_plane: bool = False,
) -> Scenario:
    """Full scenario: economics + synthetic-image FL substrate (E1/E7/E10).

    ``dirichlet_alpha=None`` gives an IID partition; smaller alpha = more
    label skew.  ``model`` is ``"softmax"``, ``"mlp"`` or ``"cnn"``
    (:class:`~repro.fl.cnn.TinyConvNet` on the 8x8 images, stacked through
    the conv kernels).  ``staleness_boost > 0`` wraps the valuation so
    long-unselected clients gain value — the coverage signal that makes
    value-aware selection competitive with uniform sampling under non-IID
    data.

    ``lean_data_plane=True`` opts the vectorised local solver into the
    bandwidth-lean configuration: float32 shard/minibatch storage (compute
    stays float64, see :class:`~repro.fl.batch.ClientBatch`) and chunked
    stacked pipelines — the memory-bound setting for 1000-client
    federations.

    **Client-count scaling knob**: the canonical scenario runs at the
    paper's 40 clients over a fixed ``num_samples`` pool, which starves
    shards when benchmarks scale the federation up.  Pass
    ``samples_per_client`` to grow the data pool with the population
    instead (``num_samples = num_clients * samples_per_client``), which is
    how the FL throughput benchmarks stress 200-1000 clients against the
    vectorised local-training engine while the shard-size distribution
    stays comparable to the canonical setup.
    """
    tree = RngTree(seed)
    data_rng = tree.generator("data")
    if samples_per_client is not None:
        if samples_per_client <= 0:
            raise ValueError(
                f"samples_per_client must be > 0, got {samples_per_client}"
            )
        num_samples = num_clients * int(samples_per_client)
    dataset = make_synthetic_images(
        num_samples, num_classes=10, shape=(8, 8), rng=data_rng
    )
    train, test = train_test_split(dataset, 0.25, data_rng)
    if dirichlet_alpha is None:
        shards = iid_partition(train.num_samples, num_clients, data_rng)
    else:
        shards = dirichlet_partition(
            train.labels, num_clients, dirichlet_alpha, data_rng
        )

    def make_model(model_seed: int):
        if model == "softmax":
            return SoftmaxRegression(64, 10, seed=model_seed)
        if model == "mlp":
            return MLPClassifier([64, 32, 10], seed=model_seed)
        if model == "cnn":
            return TinyConvNet((8, 8), 10, num_filters=4, seed=model_seed)
        raise ValueError(f"unknown model {model!r}")

    fl_clients: dict[int, FLClient] = {}
    declared_sizes: list[int] = []
    declared_qualities: list[float] = []
    for client_id, shard in enumerate(shards):
        local = train.subset(shard)
        fl_clients[client_id] = FLClient(
            client_id,
            local,
            make_model(client_id + 1),
            lambda: SGD(learning_rate),
            local_steps=local_steps,
            batch_size=batch_size,
            rng=tree.generator(f"fl-clients/{client_id}"),
        )
        declared_sizes.append(local.num_samples)
        declared_qualities.append(data_quality(local.labels, 10))

    clients = build_population(
        num_clients,
        seed=tree.child_seed("population"),
        declared_sizes=declared_sizes,
        declared_qualities=declared_qualities,
        strategy_factory=strategy_factory,
        local_steps=local_steps,
        batch_size=batch_size,
        energy_constrained=energy_constrained,
    )

    server = FLServer(make_model(0), test)
    local_solver = None
    if lean_data_plane:
        local_solver = VectorizedLocalSolver(
            storage_dtype=np.float32, chunk_clients=128
        )
    attachment = FLAttachment(
        server, fl_clients, eval_every=eval_every, local_solver=local_solver
    )
    valuation: ValuationModel = DiminishingReturnsValuation(
        scale=value_scale, reference_size=100
    )
    if staleness_boost > 0:
        valuation = StalenessAwareValuation(valuation, boost=staleness_boost, cap=10)
        valuation.register_clients(tuple(range(num_clients)))
    return Scenario(
        clients=clients,
        valuation=valuation,
        fl=attachment,
        metadata={
            "seed": seed,
            "num_clients": num_clients,
            "dirichlet_alpha": dirichlet_alpha,
            "model": model,
            "lean_data_plane": lean_data_plane,
            "kind": "fl",
        },
    )
