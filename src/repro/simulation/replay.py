"""Event-log persistence: save runs to JSON and load them back.

Long experiments should be simulated once and analysed many times.  This
module round-trips :class:`~repro.simulation.events.EventLog` through JSON
so analysis (welfare, regret, fairness, budget) and reporting can run
post-hoc on archived runs — including runs produced on another machine.
"""

from __future__ import annotations

from pathlib import Path

from repro.simulation.events import EventLog, RoundRecord
from repro.utils.serialization import load_json, save_json

__all__ = ["event_log_to_dict", "event_log_from_dict", "save_event_log", "load_event_log"]

_FORMAT_VERSION = 1


def event_log_to_dict(log: EventLog) -> dict:
    """Convert a log into a plain JSON-ready dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "rounds": [
            {
                "round_index": record.round_index,
                "available": list(record.available),
                "bids": record.bids,
                "true_costs": record.true_costs,
                "values": record.values,
                "selected": list(record.selected),
                "payments": record.payments,
                "failed": list(record.failed),
                "diagnostics": record.diagnostics,
                "round_duration": record.round_duration,
                "battery_levels": record.battery_levels,
                "test_accuracy": record.test_accuracy,
                "test_loss": record.test_loss,
            }
            for record in log
        ],
    }


def _int_keys(mapping: dict) -> dict[int, float]:
    return {int(key): float(value) for key, value in mapping.items()}


def event_log_from_dict(data: dict) -> EventLog:
    """Rebuild a log from :func:`event_log_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported event-log format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    log = EventLog()
    for row in data["rounds"]:
        log.record(
            RoundRecord(
                round_index=int(row["round_index"]),
                available=tuple(int(c) for c in row["available"]),
                bids=_int_keys(row["bids"]),
                true_costs=_int_keys(row["true_costs"]),
                values=_int_keys(row["values"]),
                selected=tuple(int(c) for c in row["selected"]),
                payments=_int_keys(row["payments"]),
                failed=tuple(int(c) for c in row.get("failed", ())),
                diagnostics={str(k): float(v) for k, v in row["diagnostics"].items()},
                round_duration=float(row["round_duration"]),
                battery_levels=_int_keys(row["battery_levels"]),
                test_accuracy=float(row["test_accuracy"]),
                test_loss=float(row["test_loss"]),
            )
        )
    return log


def save_event_log(path: str | Path, log: EventLog) -> None:
    """Archive a log as JSON (NaNs preserved as nulls by the JSON layer)."""
    data = event_log_to_dict(log)
    # json cannot encode NaN portably; swap for None and back on load.
    for row in data["rounds"]:
        for key in ("test_accuracy", "test_loss"):
            if row[key] != row[key]:  # NaN check
                row[key] = None
    save_json(path, data)


def load_event_log(path: str | Path) -> EventLog:
    """Load a log archived with :func:`save_event_log`."""
    data = load_json(path)
    for row in data["rounds"]:
        for key in ("test_accuracy", "test_loss"):
            if row[key] is None:
                row[key] = float("nan")
    return event_log_from_dict(data)
