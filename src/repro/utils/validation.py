"""Input-validation helpers.

All public constructors in the library validate their numeric arguments with
these helpers so that configuration mistakes fail fast, at construction time,
with a message naming the offending parameter — not hundreds of simulated
rounds later with a NaN.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

__all__ = [
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
]


def _as_float(name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float, np.integer, np.floating)):
        raise TypeError(f"{name} must be a real number, got {value!r}")
    return float(value)


def check_finite(name: str, value: Any) -> float:
    """Validate that ``value`` is a finite real number and return it as float."""
    out = _as_float(name, value)
    if not math.isfinite(out):
        raise ValueError(f"{name} must be finite, got {out!r}")
    return out


def check_positive(name: str, value: Any) -> float:
    """Validate that ``value`` is finite and strictly positive."""
    out = check_finite(name, value)
    if out <= 0:
        raise ValueError(f"{name} must be > 0, got {out!r}")
    return out


def check_non_negative(name: str, value: Any) -> float:
    """Validate that ``value`` is finite and non-negative."""
    out = check_finite(name, value)
    if out < 0:
        raise ValueError(f"{name} must be >= 0, got {out!r}")
    return out


def check_probability(name: str, value: Any) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    out = check_finite(name, value)
    if not 0.0 <= out <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {out!r}")
    return out


def check_in_range(
    name: str,
    value: Any,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Validate that ``value`` lies in ``[low, high]`` (or ``(low, high)``)."""
    out = check_finite(name, value)
    if inclusive:
        if not low <= out <= high:
            raise ValueError(f"{name} must be in [{low}, {high}], got {out!r}")
    else:
        if not low < out < high:
            raise ValueError(f"{name} must be in ({low}, {high}), got {out!r}")
    return out
