"""Shared utilities: validation, serialization, and text tables."""

from repro.utils.serialization import load_json, save_json, to_jsonable
from repro.utils.tables import format_series, format_table
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "format_series",
    "format_table",
    "load_json",
    "save_json",
    "to_jsonable",
]
