"""JSON round-tripping for experiment configurations and results.

Numpy scalars and arrays appear throughout simulation outputs; plain
:mod:`json` cannot serialise them.  :func:`to_jsonable` converts any result
structure (nested dicts/lists/dataclasses with numpy leaves) into plain
Python so it can be written with :func:`save_json` and read back with
:func:`load_json`.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["to_jsonable", "save_json", "load_json"]


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-serialisable plain Python.

    Handles numpy scalars/arrays, dataclasses, mappings, sets (sorted into
    lists for determinism), tuples and lists.  Raises :class:`TypeError` for
    anything else that :mod:`json` cannot encode, rather than silently
    stringifying it.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(to_jsonable(item) for item in value)
    raise TypeError(f"cannot convert {type(value).__name__} to JSON: {value!r}")


def save_json(path: str | Path, value: Any, *, indent: int = 2) -> None:
    """Write ``value`` (converted via :func:`to_jsonable`) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(value), indent=indent, sort_keys=True))


def load_json(path: str | Path) -> Any:
    """Load a JSON document previously written with :func:`save_json`."""
    return json.loads(Path(path).read_text())
