"""Plain-text tables and series for benchmark output.

The benchmark harness regenerates the paper's tables and figures as text:
tables are rendered with :func:`format_table`, figure series (x, y pairs per
curve) with :func:`format_series`.  Both produce deterministic, diff-friendly
output so benchmark logs can be compared across runs.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any

__all__ = ["format_table", "format_series"]


def _render_cell(value: Any, float_fmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: str | None = None,
    float_fmt: str = ".4g",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row sequences; each row must have ``len(headers)`` cells.
    title:
        Optional caption printed above the table.
    float_fmt:
        :func:`format` spec applied to float cells.

    Returns
    -------
    str
        The rendered table, ending without a trailing newline.
    """
    header_cells = [str(h) for h in headers]
    body = []
    for row in rows:
        cells = [_render_cell(cell, float_fmt) for cell in row]
        if len(cells) != len(header_cells):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(header_cells)} columns: {cells!r}"
            )
        body.append(cells)

    widths = [len(h) for h in header_cells]
    for cells in body:
        for j, cell in enumerate(cells):
            widths[j] = max(widths[j], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[j]) for j, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(header_cells))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(cells) for cells in body)
    return "\n".join(lines)


def format_series(
    x: Sequence[Any],
    curves: Mapping[str, Sequence[float]],
    *,
    x_label: str = "x",
    title: str | None = None,
    float_fmt: str = ".4g",
    max_points: int | None = None,
) -> str:
    """Render one or more curves sharing an x-axis as a text table.

    This is the "figure" analogue for a terminal: each curve becomes a column.
    ``max_points`` thins long series by uniform subsampling (always keeping
    the first and last point) so a 1000-round trajectory prints ~20 rows.
    """
    for name, ys in curves.items():
        if len(ys) != len(x):
            raise ValueError(
                f"curve {name!r} has {len(ys)} points but x-axis has {len(x)}"
            )
    indices = list(range(len(x)))
    if max_points is not None and len(indices) > max_points > 1:
        step = (len(indices) - 1) / (max_points - 1)
        indices = sorted({round(i * step) for i in range(max_points)})
    headers = [x_label, *curves.keys()]
    rows = [[x[i], *[float(curves[name][i]) for name in curves]] for i in indices]
    return format_table(headers, rows, title=title, float_fmt=float_fmt)
