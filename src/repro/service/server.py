"""The asyncio auction server: many markets, one long-lived process.

Built on :func:`asyncio.start_server` (stdlib only — deliberately not
``http.server``): each connection is a stream of newline-delimited JSON
request frames answered in order (:mod:`repro.service.protocol`).  All
market mutation happens on the single event loop, so a market is never
touched concurrently and the mechanism's queue feedback stays an atomic
per-round step exactly as in the simulator.

Rounds close three ways, all funnelled through one code path:

* **timer** — a per-market asyncio task fires every ``round_timeout``
  seconds since the last close (closing with zero pending bids records an
  explicit empty outcome, never a hang);
* **batch** — a bid arriving that fills ``max_round_bids`` closes the
  round inline;
* **flush** — a client asks for an immediate close (the replay load
  generator uses this to preserve archived round boundaries).

Graceful shutdown snapshots every market (mechanism state included) and
appends a final telemetry snapshot; a server restarted on the same
directory rebuilds its markets from ``markets/*/snapshot.json`` and
resumes with the same budget backlogs.  The server keeps a campaign-style
event trail (``events.jsonl``: ``server_started`` / ``market_created`` /
``round_closed`` / ``server_stopped``) so ``repro.cli watch`` can follow
a live service the same way it follows a campaign.

:func:`start_server_thread` runs the whole loop in a daemon thread and
hands back a :class:`ServerHandle` — the harness tests, the equivalence
suite and the throughput benchmark all drive a real socket server
in-process through it.
"""

from __future__ import annotations

import asyncio
import threading
import time
import traceback
from pathlib import Path
from typing import Any, Awaitable, Callable

from repro import telemetry
from repro.config import ExperimentConfig
from repro.logging_utils import get_logger
from repro.orchestration.events import EVENTS_NAME, EventWriter
from repro.service.market import Market, MarketConfig, SNAPSHOT_NAME
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    ok_frame,
    require,
)
from repro.telemetry import TELEMETRY_TRAIL_NAME, TelemetryTrail

__all__ = ["AuctionServer", "ServerHandle", "start_server_thread", "MARKETS_DIRNAME"]

_LOGGER = get_logger("service.server")

MARKETS_DIRNAME = "markets"

#: Slack on top of the frame cap so the reader only overruns on frames the
#: protocol would reject anyway.
_READ_LIMIT = MAX_FRAME_BYTES + 1024


class AuctionServer:
    """One process serving many named markets over NDJSON/TCP.

    Parameters
    ----------
    host / port:
        Bind address; port 0 picks a free port (``bound_port`` after
        :meth:`start`).
    directory:
        Service state root: ``markets/<name>/`` (snapshots + outcome
        trails), ``events.jsonl`` and ``telemetry.jsonl``.  ``None`` runs
        fully in-memory (tests).
    http_port:
        Optional port for the thin HTTP facade
        (:mod:`repro.service.http_shim`) sharing this dispatcher.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        directory: str | Path | None = None,
        http_port: int | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.directory = Path(directory) if directory is not None else None
        self.http_port = http_port
        self.markets: dict[str, Market] = {}
        self.bad_frames = 0
        self.started_at: float | None = None
        self._server: asyncio.AbstractServer | None = None
        self._http_server: asyncio.AbstractServer | None = None
        self._timers: dict[str, asyncio.Task] = {}
        self._connections: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._last_close: dict[str, float] = {}
        self._shutting_down = False
        self._stopped = asyncio.Event()
        self.events = EventWriter(
            self.directory / EVENTS_NAME if self.directory else None
        )
        self._trail = TelemetryTrail(
            self.directory / TELEMETRY_TRAIL_NAME if self.directory else None
        )
        self._ops: dict[str, Callable[[dict[str, Any]], Awaitable[dict[str, Any]]]] = {
            "ping": self._op_ping,
            "create_market": self._op_create_market,
            "bid": self._op_bid,
            "bids": self._op_bids,
            "flush": self._op_flush,
            "market": self._op_market,
            "markets": self._op_markets,
            "outcomes": self._op_outcomes,
            "snapshot": self._op_snapshot,
            "shutdown": self._op_shutdown,
        }

    # -- lifecycle ------------------------------------------------------------

    @property
    def bound_port(self) -> int:
        """The actual TCP port after :meth:`start` (resolves port 0)."""
        if self._server is None:
            return self.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind, restore persisted markets, start timers and (opt.) HTTP."""
        restored = self._restore_markets()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=_READ_LIMIT
        )
        if self.http_port is not None:
            from repro.service.http_shim import start_http_shim

            self._http_server = await start_http_shim(self, self.host, self.http_port)
        self.started_at = time.time()
        for name in self.markets:
            self._arm_timer(name)
        self.events.emit(
            "server_started",
            host=self.host,
            port=self.bound_port,
            http_port=self.http_bound_port,
            markets=sorted(self.markets),
            restored=restored,
        )
        _LOGGER.info(
            "auction server on %s:%d (%d market(s) restored)",
            self.host,
            self.bound_port,
            restored,
        )

    @property
    def http_bound_port(self) -> int | None:
        if self._http_server is None:
            return None
        return self._http_server.sockets[0].getsockname()[1]

    def _restore_markets(self) -> int:
        if self.directory is None:
            return 0
        root = self.directory / MARKETS_DIRNAME
        if not root.is_dir():
            return 0
        restored = 0
        for snapshot in sorted(root.glob(f"*/{SNAPSHOT_NAME}")):
            try:
                market = Market.restore(snapshot.parent)
            except ValueError as error:
                # A corrupt snapshot must not take the whole service down
                # with it; the market simply does not come back.
                _LOGGER.error(
                    "skipping market snapshot %s: %s", snapshot, error
                )
                continue
            self.markets[market.config.name] = market
            restored += 1
        return restored

    async def serve_forever(self) -> None:
        """Serve until :meth:`stop` (or a ``shutdown`` request) completes."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful shutdown: stop intake, snapshot every market, close."""
        if self._shutting_down:
            await self._stopped.wait()
            return
        self._shutting_down = True
        for task in self._timers.values():
            task.cancel()
        if self._timers:
            await asyncio.gather(*self._timers.values(), return_exceptions=True)
        self._timers.clear()
        for market in self.markets.values():
            market.snapshot()
        self._trail.append(telemetry.snapshot(), cell_id="service")
        self.events.emit(
            "server_stopped",
            markets=sorted(self.markets),
            rounds_closed=sum(m.rounds_closed for m in self.markets.values()),
            bad_frames=self.bad_frames,
        )
        for server in (self._server, self._http_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        # Drain live connections (closing a writer EOFs its handler's
        # readline) so the loop shuts down without cancelling handlers
        # mid-write.
        for writer in list(self._writers):
            writer.close()
        if self._connections:
            await asyncio.wait(self._connections, timeout=5.0)
        self._stopped.set()
        _LOGGER.info("auction server stopped")

    # -- connection handling --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Oversized frame: the stream position is no longer
                    # trustworthy, so answer once and drop the connection —
                    # the server itself keeps running.
                    self._count_bad_frame()
                    writer.write(
                        encode_frame(
                            error_frame(
                                ProtocolError(
                                    "bad-frame",
                                    f"frame exceeds {MAX_FRAME_BYTES} bytes",
                                )
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self.handle_line(line)
                writer.write(encode_frame(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def _count_bad_frame(self) -> None:
        self.bad_frames += 1
        telemetry.add_counter("service_bad_frames")

    async def handle_line(self, line: bytes) -> dict[str, Any]:
        """One request line in, one response frame out — never raises."""
        try:
            frame = decode_frame(line)
        except ProtocolError as error:
            self._count_bad_frame()
            return error_frame(error)
        return await self.handle_frame(frame)

    async def handle_frame(self, frame: dict[str, Any]) -> dict[str, Any]:
        """Dispatch one decoded request frame — never raises.

        Typed failures become typed error responses; anything unexpected
        becomes an ``internal`` error (logged server-side with the
        traceback, summarised on the wire) so one poisoned request can
        never kill the round loop.
        """
        op = frame.get("op")
        if not isinstance(op, str) or op not in self._ops:
            return error_frame(
                ProtocolError("unknown-op", f"unknown op {op!r}"),
                op=op if isinstance(op, str) else None,
            )
        if self._shutting_down and op not in ("ping", "markets", "market"):
            return error_frame(
                ProtocolError("shutting-down", "server is shutting down"), op=op
            )
        try:
            payload = await self._ops[op](frame)
        except ProtocolError as error:
            return error_frame(error, op=op)
        except Exception as error:  # noqa: BLE001 - the round loop must survive
            _LOGGER.error(
                "internal error handling %s: %s\n%s",
                op,
                error,
                traceback.format_exc(),
            )
            telemetry.add_counter("service_internal_errors")
            return error_frame(
                ProtocolError("internal", f"{type(error).__name__}: {error}"), op=op
            )
        return ok_frame(op, **payload)

    # -- market plumbing ------------------------------------------------------

    def _market(self, frame: dict[str, Any]) -> Market:
        name = require(frame, "market", str)
        market = self.markets.get(name)
        if market is None:
            raise ProtocolError("unknown-market", f"no market named {name!r}")
        return market

    def _market_dir(self, name: str) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / MARKETS_DIRNAME / name

    def _close_round(self, market: Market, trigger: str) -> dict[str, Any]:
        record = market.close_round(trigger=trigger)
        self._last_close[market.config.name] = time.monotonic()
        self.events.emit(
            "round_closed",
            cell_id=market.config.name,
            round_index=record["round_index"],
            trigger=trigger,
            num_bids=record["num_bids"],
            num_selected=len(record["selected"]),
            total_payment=record["total_payment"],
            decision_ms=record.get("decision_ms"),
            budget_backlog=record.get("diagnostics", {}).get("budget_backlog"),
        )
        return record

    def _arm_timer(self, name: str) -> None:
        market = self.markets[name]
        if market.config.round_timeout is None:
            return
        self._last_close.setdefault(name, time.monotonic())
        self._timers[name] = asyncio.get_running_loop().create_task(
            self._timer_loop(name), name=f"market-timer:{name}"
        )

    async def _timer_loop(self, name: str) -> None:
        """Close ``name``'s round every ``round_timeout`` s of quiet.

        Batch/flush closes reset the deadline (they update
        ``_last_close``), so the timer only fires when a full timeout has
        passed since *any* close — and it fires even with zero pending
        bids, recording an explicit empty round.
        """
        market = self.markets[name]
        timeout = market.config.round_timeout
        assert timeout is not None
        try:
            while True:
                deadline = self._last_close[name] + timeout
                delay = deadline - time.monotonic()
                if delay > 0:
                    await asyncio.sleep(delay)
                    continue
                self._close_round(market, "timer")
        except asyncio.CancelledError:
            pass

    # -- operations -----------------------------------------------------------

    async def _op_ping(self, frame: dict[str, Any]) -> dict[str, Any]:
        return {
            "time": time.time(),
            "markets": len(self.markets),
            "uptime_s": (
                time.time() - self.started_at if self.started_at is not None else 0.0
            ),
        }

    async def _op_create_market(self, frame: dict[str, Any]) -> dict[str, Any]:
        name = require(frame, "market", str)
        exist_ok = bool(frame.get("exist_ok", False))
        if name in self.markets:
            if exist_ok:
                return {"market": name, "created": False, **self.markets[name].stats()}
            raise ProtocolError("market-exists", f"market {name!r} already exists")
        experiment_kwargs = frame.get("experiment", {})
        if not isinstance(experiment_kwargs, dict):
            raise ProtocolError("bad-request", "field 'experiment' must be an object")
        try:
            experiment = ExperimentConfig(**experiment_kwargs)
        except (TypeError, ValueError) as error:
            raise ProtocolError("bad-request", f"bad experiment config: {error}")
        if "mechanism" in frame:
            mechanism = require(frame, "mechanism", str)
            experiment.extras["mechanism"] = mechanism
        config = MarketConfig(
            name,
            experiment,
            round_timeout=frame.get("round_timeout"),
            max_round_bids=frame.get("max_round_bids"),
            snapshot_every=int(frame.get("snapshot_every", 1)),
        )
        try:
            market = Market(config, self._market_dir(name))
        except (TypeError, ValueError) as error:
            raise ProtocolError("bad-request", f"cannot build mechanism: {error}")
        self.markets[name] = market
        self._arm_timer(name)
        self.events.emit(
            "market_created",
            cell_id=name,
            mechanism=market.mechanism_name,
            round_timeout=config.round_timeout,
            max_round_bids=config.max_round_bids,
        )
        return {"market": name, "created": True, **market.stats()}

    async def _op_bid(self, frame: dict[str, Any]) -> dict[str, Any]:
        market = self._market(frame)
        payload = market.submit_bid(frame)
        if market.should_close():
            record = self._close_round(market, "batch")
            payload["closed_round"] = record["round_index"]
        return payload

    async def _op_bids(self, frame: dict[str, Any]) -> dict[str, Any]:
        """Bulk submission: one frame, many bids, per-bid verdicts.

        The load generator's pipelining op — a rejected bid in the batch
        is reported in its slot and does not abort the rest.
        """
        market = self._market(frame)
        bids = require(frame, "bids", list)
        results: list[dict[str, Any]] = []
        closed_rounds: list[int] = []
        accepted = 0
        for entry in bids:
            if not isinstance(entry, dict):
                market.bids_rejected += 1
                telemetry.add_counter("service_bids_rejected")
                results.append(
                    {"ok": False, "error": {"type": "bad-bid", "message": "bid must be an object"}}
                )
                continue
            try:
                result = market.submit_bid(entry)
            except ProtocolError as error:
                results.append(
                    {
                        "ok": False,
                        "error": {"type": error.error_type, "message": error.message},
                    }
                )
                continue
            accepted += 1
            results.append({"ok": True, "round_index": result["round_index"]})
            if market.should_close():
                record = self._close_round(market, "batch")
                closed_rounds.append(record["round_index"])
        return {
            "market": market.config.name,
            "accepted": accepted,
            "rejected": len(bids) - accepted,
            "results": results,
            "closed_rounds": closed_rounds,
        }

    async def _op_flush(self, frame: dict[str, Any]) -> dict[str, Any]:
        market = self._market(frame)
        record = self._close_round(market, "flush")
        return {"market": market.config.name, "outcome": record}

    async def _op_market(self, frame: dict[str, Any]) -> dict[str, Any]:
        market = self._market(frame)
        return {"stats": market.stats()}

    async def _op_markets(self, frame: dict[str, Any]) -> dict[str, Any]:
        return {
            "markets": [
                self.markets[name].stats() for name in sorted(self.markets)
            ],
            "bad_frames": self.bad_frames,
        }

    async def _op_outcomes(self, frame: dict[str, Any]) -> dict[str, Any]:
        market = self._market(frame)
        since = frame.get("since", 0)
        if isinstance(since, bool) or not isinstance(since, int):
            raise ProtocolError("bad-request", "field 'since' must be an integer")
        records, complete = market.outcomes_since(since)
        return {
            "market": market.config.name,
            "outcomes": records,
            "complete": complete,
        }

    async def _op_snapshot(self, frame: dict[str, Any]) -> dict[str, Any]:
        if "market" in frame:
            markets = [self._market(frame)]
        else:
            markets = list(self.markets.values())
        for market in markets:
            market.snapshot()
        self._trail.append(telemetry.snapshot(), cell_id="service")
        return {
            "markets": sorted(m.config.name for m in markets),
            "persisted": self.directory is not None,
        }

    async def _op_shutdown(self, frame: dict[str, Any]) -> dict[str, Any]:
        # Answer first, then stop: the requester gets its ack before the
        # listener closes underneath it.
        asyncio.get_running_loop().create_task(self.stop())
        return {"stopping": True}


class ServerHandle:
    """A running :class:`AuctionServer` on its own event-loop thread."""

    def __init__(self, server: AuctionServer, thread: threading.Thread) -> None:
        self.server = server
        self.thread = thread
        self.host = server.host
        self.port = server.bound_port

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful shutdown (snapshots + trail flush), then join."""
        loop = getattr(self.server, "_loop", None)
        if loop is not None and loop.is_running():
            asyncio.run_coroutine_threadsafe(self.server.stop(), loop)
        self.thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def start_server_thread(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    directory: str | Path | None = None,
    http_port: int | None = None,
    ready_timeout: float = 10.0,
) -> ServerHandle:
    """Run an :class:`AuctionServer` on a daemon thread, wait until bound.

    The returned handle carries the resolved port (pass ``port=0`` for an
    ephemeral one) — the idiom the tests and the throughput benchmark use
    to talk to a real socket server in-process.
    """
    server = AuctionServer(host, port, directory=directory, http_port=http_port)
    ready = threading.Event()
    startup_error: list[BaseException] = []

    async def _main() -> None:
        server._loop = asyncio.get_running_loop()  # type: ignore[attr-defined]
        try:
            await server.start()
        except BaseException as error:  # noqa: BLE001 - reported to the caller
            startup_error.append(error)
            ready.set()
            return
        ready.set()
        await server.serve_forever()

    thread = threading.Thread(
        target=lambda: asyncio.run(_main()), name="auction-server", daemon=True
    )
    thread.start()
    if not ready.wait(ready_timeout):
        raise RuntimeError("auction server did not start in time")
    if startup_error:
        thread.join(1.0)
        raise RuntimeError(f"auction server failed to start: {startup_error[0]}")
    return ServerHandle(server, thread)
