"""The trace-replay load generator: archived runs as live traffic.

Every simulation and campaign cell archives its ground-truth
``event_log.json``; this module re-emits such a trail against a running
auction server as if the clients were bidding live.  Per archived round
it submits that round's bids — **in the record's bid order**, which is the
original submission order (dict insertion order is preserved through the
JSON round-trip), so positional tie-breaking in winner determination
matches the original run — and then flushes the market, preserving the
archived round boundaries.

Fidelity note: the mechanism's decision depends on client ids, declared
costs and the server-side values (plus its own queue state) — never on
``data_size``/``quality`` — and the archived record carries all three
exactly (floats survive JSON round-trips bit-for-bit).  Feeding a fresh
market an archived trail therefore reproduces the original allocations,
payments and queue trajectory bit-identically; the equivalence suite pins
this against :class:`~repro.simulation.runner.SimulationRunner`.

Timing control: ``speedup`` divides the archived round durations
(``float("inf")`` — the default — replays as fast as the server accepts),
and ``jitter`` resamples each gap from an exponential with the same mean,
turning the deterministic trail into Poisson-like arrivals for load
testing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.simulation.events import EventLog
from repro.simulation.replay import load_event_log

__all__ = ["ReplayStats", "load_trace", "replay_trace", "EVENT_LOG_NAME"]

EVENT_LOG_NAME = "event_log.json"


@dataclass(frozen=True)
class ReplayStats:
    """What a replay run accomplished (the CLI's exit criteria)."""

    market: str
    rounds_sent: int
    bids_sent: int
    bids_rejected: int
    rounds_closed: int
    rounds_with_allocations: int
    total_payment: float
    duration_s: float

    @property
    def bids_per_sec(self) -> float:
        return self.bids_sent / self.duration_s if self.duration_s > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "market": self.market,
            "rounds_sent": self.rounds_sent,
            "bids_sent": self.bids_sent,
            "bids_rejected": self.bids_rejected,
            "rounds_closed": self.rounds_closed,
            "rounds_with_allocations": self.rounds_with_allocations,
            "total_payment": self.total_payment,
            "duration_s": self.duration_s,
            "bids_per_sec": self.bids_per_sec,
        }


def load_trace(path: str | Path) -> EventLog:
    """Resolve ``path`` to an archived event log.

    Accepts the ``event_log.json`` file itself, a run directory containing
    one (``repro.cli --out`` output), or a campaign directory — in which
    case the first cell trail (sorted glob) is used.
    """
    path = Path(path)
    if path.is_file():
        return load_event_log(path)
    if path.is_dir():
        direct = path / EVENT_LOG_NAME
        if direct.is_file():
            return load_event_log(direct)
        nested = sorted(path.glob(f"**/{EVENT_LOG_NAME}"))
        if nested:
            return load_event_log(nested[0])
    raise FileNotFoundError(f"no {EVENT_LOG_NAME} under {path}")


def replay_trace(
    client: Any,
    market: str,
    trace: EventLog,
    *,
    speedup: float = float("inf"),
    interval: float = 0.0,
    jitter: bool = False,
    seed: int = 0,
    max_rounds: int | None = None,
) -> ReplayStats:
    """Re-emit an archived trail into ``market`` through ``client``.

    Parameters
    ----------
    client:
        A connected :class:`~repro.service.client.ServiceClient` (anything
        with ``send_bids`` / ``flush`` / ``outcomes``).
    market:
        Target market name (must already exist on the server).
    trace:
        The archived :class:`~repro.simulation.events.EventLog`.
    speedup:
        Divide archived round durations by this; ``inf`` sleeps never.
    interval:
        Fallback per-round gap (seconds, pre-speedup) for trails whose
        archived ``round_duration`` is 0 (mechanism-only runs).
    jitter:
        Resample each gap from an exponential distribution with the same
        mean (Poisson-like arrivals; deterministic under ``seed``).
    max_rounds:
        Replay only the first N archived rounds.
    """
    rng = np.random.default_rng(seed)
    records = list(trace)
    if max_rounds is not None:
        records = records[:max_rounds]
    rounds_sent = 0
    bids_sent = 0
    bids_rejected = 0
    started = time.perf_counter()
    for record in records:
        if rounds_sent:
            gap = record.round_duration or interval
            if jitter and gap > 0:
                gap = float(rng.exponential(gap))
            if speedup != float("inf") and gap > 0:
                time.sleep(gap / speedup)
        bids = [
            {
                "client_id": client_id,
                "cost": cost,
                "value": record.values[client_id],
            }
            for client_id, cost in record.bids.items()
        ]
        if bids:
            summary = client.send_bids(market, bids)
            bids_sent += summary["accepted"]
            bids_rejected += summary["rejected"]
        # Preserve the archived round boundary — an empty archived round
        # becomes an explicit empty service round, keeping round indices
        # (and hence queue trajectories) aligned with the original run.
        client.flush(market)
        rounds_sent += 1
    duration = time.perf_counter() - started
    outcomes = client.outcomes(market, since=0)
    return ReplayStats(
        market=market,
        rounds_sent=rounds_sent,
        bids_sent=bids_sent,
        bids_rejected=bids_rejected,
        rounds_closed=len(outcomes),
        rounds_with_allocations=sum(1 for o in outcomes if o["selected"]),
        total_payment=float(sum(o["total_payment"] for o in outcomes)),
        duration_s=duration,
    )
