"""The service wire format: newline-delimited JSON frames.

One request per line, one response line per request, in order.  Every
frame is a JSON object; requests carry an ``op`` naming the operation
(``bid``, ``bids``, ``flush``, ``create_market``, ``markets``, ``market``,
``outcomes``, ``snapshot``, ``ping``, ``shutdown``), responses carry
``ok`` plus either the operation's payload or a **typed error**::

    {"ok": false, "error": {"type": "bad-frame", "message": "..."}}

Error types are a closed vocabulary (:data:`ERROR_TYPES`) so clients can
branch on them without parsing prose.  Malformed input is a *response*,
never a crash: the server answers a broken line with ``bad-frame``,
counts it on telemetry, and keeps serving the connection — the round loop
must survive any byte sequence a client can send.

Frames are capped at :data:`MAX_FRAME_BYTES`; the limit exists so one
hostile line cannot balloon server memory, and it comfortably fits the
bulk-``bids`` frames the load generator sends.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "MAX_FRAME_BYTES",
    "ERROR_TYPES",
    "ProtocolError",
    "decode_frame",
    "encode_frame",
    "error_frame",
    "ok_frame",
]

#: Hard per-line cap (bytes, including the newline).
MAX_FRAME_BYTES = 1 << 20

#: The closed error vocabulary.
ERROR_TYPES = (
    "bad-frame",        # not JSON / not an object / over the size cap
    "unknown-op",       # op missing or not in the dispatch table
    "bad-request",      # op known, required fields missing or mistyped
    "unknown-market",   # market name does not resolve
    "market-exists",    # create_market on a taken name without exist_ok
    "bad-bid",          # bid rejected (negative cost, duplicate client, ...)
    "internal",         # unexpected server-side failure (safe summary only)
    "shutting-down",    # request arrived during graceful shutdown
)


class ProtocolError(Exception):
    """A typed request failure, rendered as an error response frame."""

    def __init__(self, error_type: str, message: str) -> None:
        if error_type not in ERROR_TYPES:
            raise ValueError(f"unknown protocol error type {error_type!r}")
        super().__init__(message)
        self.error_type = error_type
        self.message = message


def encode_frame(frame: dict[str, Any]) -> bytes:
    """Serialise one frame to its wire line (newline-terminated bytes)."""
    return (json.dumps(frame, sort_keys=True) + "\n").encode("utf-8")


def decode_frame(line: bytes) -> dict[str, Any]:
    """Parse one wire line into a frame.

    Raises
    ------
    ProtocolError
        ``bad-frame`` when the line is over the cap, not valid JSON, or
        not a JSON object.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "bad-frame", f"frame exceeds {MAX_FRAME_BYTES} bytes"
        )
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError("bad-frame", f"not valid JSON: {error}") from error
    if not isinstance(frame, dict):
        raise ProtocolError(
            "bad-frame", f"frame must be a JSON object, got {type(frame).__name__}"
        )
    return frame


def ok_frame(op: str, **payload: Any) -> dict[str, Any]:
    """A success response for ``op``."""
    frame: dict[str, Any] = {"ok": True, "op": op}
    frame.update(payload)
    return frame


def error_frame(error: ProtocolError, *, op: str | None = None) -> dict[str, Any]:
    """The response frame for a typed failure."""
    frame: dict[str, Any] = {
        "ok": False,
        "error": {"type": error.error_type, "message": error.message},
    }
    if op is not None:
        frame["op"] = op
    return frame


def require(frame: dict[str, Any], field: str, kind: type | tuple[type, ...]) -> Any:
    """Fetch a typed required field or raise ``bad-request``.

    ``bool`` is rejected where a number is expected (bool subclasses int).
    """
    if field not in frame:
        raise ProtocolError("bad-request", f"missing required field {field!r}")
    value = frame[field]
    if isinstance(value, bool) and kind in (int, float, (int, float)):
        raise ProtocolError("bad-request", f"field {field!r} must be a number")
    if not isinstance(value, kind):
        expected = (
            "/".join(k.__name__ for k in kind)
            if isinstance(kind, tuple)
            else kind.__name__
        )
        raise ProtocolError(
            "bad-request",
            f"field {field!r} must be {expected}, got {type(value).__name__}",
        )
    return value
