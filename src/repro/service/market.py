"""One named market: mechanism + queue state + pending bids + snapshots.

A :class:`Market` is the unit the auction server multiplexes: it owns one
mechanism instance (built from an :class:`~repro.config.ExperimentConfig`
through the shared registry, so ``lt-vcg`` means exactly what it means in
simulations), accumulates streamed bids into a pending buffer, and turns
the buffer into an :class:`~repro.core.bids.AuctionRound` whenever the
server closes a round (timer, batch-size trigger, or explicit ``flush``).
The mechanism's :class:`~repro.core.lyapunov.VirtualQueue` state lives
across requests — that is the whole point of the service — and snapshots
to disk on round close so a restarted server resumes with the same budget
backlog (:meth:`Market.snapshot` / :meth:`Market.restore`).

Everything here is synchronous and single-threaded by contract: the
asyncio server mutates a market only from its event loop, and tests drive
markets directly without any server at all.

Honest failure modes are part of the contract: a malformed bid raises a
typed :class:`MarketError` (the round loop never crashes), and a round
closing with zero arrivals produces an explicit *empty outcome record* —
the round index advances, the mechanism is untouched (exactly like the
simulator's no-bid rounds), and the client sees a response, not a hang.
"""

from __future__ import annotations

import json
import math
import os
import time
from collections import deque
from pathlib import Path
from typing import Any

from repro import telemetry
from repro.config import ExperimentConfig
from repro.core.bids import AuctionRound, Bid
from repro.logging_utils import get_logger
from repro.mechanisms.registry import build_mechanism
from repro.service.protocol import ProtocolError
from repro.telemetry import Histogram

__all__ = ["MarketConfig", "MarketError", "Market", "SNAPSHOT_NAME", "OUTCOMES_NAME"]

_LOGGER = get_logger("service.market")

SNAPSHOT_NAME = "snapshot.json"
OUTCOMES_NAME = "outcomes.jsonl"
_SNAPSHOT_FORMAT_VERSION = 1

#: Closed-round records kept in memory for the ``outcomes`` op; the full
#: trail is always on disk in ``outcomes.jsonl``.
DEFAULT_OUTCOMES_KEPT = 4096


class MarketError(ProtocolError):
    """A typed per-market request failure (rejected bid, bad config ...)."""


class MarketConfig:
    """Static configuration of one market.

    Parameters
    ----------
    name:
        Market identifier (path-safe: letters, digits, ``-``, ``_``, ``.``).
    experiment:
        The :class:`~repro.config.ExperimentConfig` the mechanism is built
        from (``extras['mechanism']`` names it in the registry) — one
        config object so served markets and simulations resolve mechanism
        parameters identically.
    round_timeout:
        Seconds between timer-driven round closes, or ``None`` to disable
        the timer (rounds then close on the batch trigger or ``flush``).
        Timer closes fire even with zero pending bids — an empty round is
        an explicit outcome, not a hang.
    max_round_bids:
        Close the round as soon as this many bids are pending, or ``None``
        to disable the batch trigger.
    snapshot_every:
        Snapshot to disk every this many round closes (1 = every close).
    """

    def __init__(
        self,
        name: str,
        experiment: ExperimentConfig,
        *,
        round_timeout: float | None = None,
        max_round_bids: int | None = None,
        snapshot_every: int = 1,
    ) -> None:
        if not name or not all(c.isalnum() or c in "-_." for c in name):
            raise MarketError(
                "bad-request",
                f"market name must be non-empty and path-safe, got {name!r}",
            )
        if round_timeout is not None and not round_timeout > 0:
            raise MarketError(
                "bad-request", f"round_timeout must be > 0, got {round_timeout}"
            )
        if max_round_bids is not None and max_round_bids < 1:
            raise MarketError(
                "bad-request", f"max_round_bids must be >= 1, got {max_round_bids}"
            )
        if snapshot_every < 1:
            raise MarketError(
                "bad-request", f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        self.name = name
        self.experiment = experiment
        self.round_timeout = float(round_timeout) if round_timeout else None
        self.max_round_bids = int(max_round_bids) if max_round_bids else None
        self.snapshot_every = int(snapshot_every)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "experiment": self.experiment.to_dict(),
            "round_timeout": self.round_timeout,
            "max_round_bids": self.max_round_bids,
            "snapshot_every": self.snapshot_every,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MarketConfig":
        return cls(
            str(data["name"]),
            ExperimentConfig(**data["experiment"]),
            round_timeout=data.get("round_timeout"),
            max_round_bids=data.get("max_round_bids"),
            snapshot_every=int(data.get("snapshot_every", 1)),
        )


def _check_finite(field: str, value: float) -> float:
    value = float(value)
    if not math.isfinite(value):
        raise MarketError("bad-bid", f"{field} must be finite, got {value}")
    return value


class Market:
    """A live market: pending bids in, closed-round outcomes out.

    Parameters
    ----------
    config:
        The market's static configuration.
    directory:
        Where this market persists (``snapshot.json`` + ``outcomes.jsonl``),
        or ``None`` for a purely in-memory market (tests, benchmarks).
    """

    def __init__(self, config: MarketConfig, directory: str | Path | None) -> None:
        self.config = config
        self.directory = Path(directory) if directory is not None else None
        self.mechanism = build_mechanism(config.experiment)
        self.pending: list[dict[str, Any]] = []
        self._pending_ids: set[int] = set()
        self.next_round_index = 0
        self.rounds_closed = 0
        self.empty_rounds = 0
        self.bids_accepted = 0
        self.bids_rejected = 0
        self.latency = Histogram()
        self.outcomes: deque[dict[str, Any]] = deque(maxlen=DEFAULT_OUTCOMES_KEPT)
        self.created_at = time.time()
        # Whether the mechanism can round-trip its cross-round state; a
        # market whose mechanism cannot snapshot still serves rounds, but
        # resume restarts that mechanism fresh (reported, never silent).
        try:
            self.mechanism.state_dict()
            self.resumable = True
        except NotImplementedError:
            self.resumable = False

    # -- bid intake -----------------------------------------------------------

    @property
    def mechanism_name(self) -> str:
        return str(self.config.experiment.extras.get("mechanism", "lt-vcg"))

    @property
    def pending_count(self) -> int:
        return len(self.pending)

    def submit_bid(self, frame: dict[str, Any]) -> dict[str, Any]:
        """Validate and buffer one bid; returns the acceptance payload.

        Raises
        ------
        MarketError
            ``bad-bid`` for anything the round could not legally contain:
            negative/non-finite cost or value, a duplicate bid from a
            client already pending this round, bad data_size/quality.
            Rejections are counted (market stats + telemetry) and leave
            the pending round untouched.
        """
        try:
            bid = self._validate_bid(frame)
        except MarketError:
            self.bids_rejected += 1
            telemetry.add_counter("service_bids_rejected")
            raise
        self.pending.append(bid)
        self._pending_ids.add(bid["client_id"])
        self.bids_accepted += 1
        return {
            "market": self.config.name,
            "round_index": self.next_round_index,
            "pending": len(self.pending),
        }

    def _validate_bid(self, frame: dict[str, Any]) -> dict[str, Any]:
        client_id = frame.get("client_id")
        if isinstance(client_id, bool) or not isinstance(client_id, int):
            raise MarketError("bad-bid", "client_id must be an integer")
        if client_id < 0:
            raise MarketError("bad-bid", f"client_id must be >= 0, got {client_id}")
        if client_id in self._pending_ids:
            raise MarketError(
                "bad-bid",
                f"client {client_id} already bid in round "
                f"{self.next_round_index} of market {self.config.name!r}",
            )
        for field in ("cost", "value"):
            if not isinstance(frame.get(field), (int, float)) or isinstance(
                frame.get(field), bool
            ):
                raise MarketError("bad-bid", f"{field} must be a number")
        cost = _check_finite("cost", frame["cost"])
        if cost < 0:
            raise MarketError("bad-bid", f"cost must be >= 0, got {cost}")
        value = _check_finite("value", frame["value"])
        data_size = frame.get("data_size", 1)
        if isinstance(data_size, bool) or not isinstance(data_size, int):
            raise MarketError("bad-bid", "data_size must be an integer")
        if data_size < 0:
            raise MarketError("bad-bid", f"data_size must be >= 0, got {data_size}")
        quality = _check_finite("quality", frame.get("quality", 1.0))
        if quality < 0:
            raise MarketError("bad-bid", f"quality must be >= 0, got {quality}")
        return {
            "client_id": client_id,
            "cost": cost,
            "value": value,
            "data_size": data_size,
            "quality": quality,
        }

    # -- round closing --------------------------------------------------------

    def close_round(self, *, trigger: str) -> dict[str, Any]:
        """Close the current round and return its outcome record.

        With pending bids, runs the mechanism on the accumulated
        :class:`AuctionRound` (bids in arrival order — column order equals
        bid order, so tie-breaking matches a simulation fed the same
        trace).  With zero pending bids, records an explicit empty outcome
        without touching the mechanism — identical to the simulator's
        no-bid rounds, so queue trajectories stay comparable.
        """
        round_index = self.next_round_index
        pending, self.pending = self.pending, []
        self._pending_ids = set()
        record: dict[str, Any] = {
            "round_index": round_index,
            "trigger": trigger,
            "num_bids": len(pending),
            "timestamp": time.time(),
        }
        if pending:
            auction_round = AuctionRound(
                index=round_index,
                bids=tuple(
                    Bid(
                        client_id=bid["client_id"],
                        cost=bid["cost"],
                        data_size=bid["data_size"],
                        quality=bid["quality"],
                    )
                    for bid in pending
                ),
                values={bid["client_id"]: bid["value"] for bid in pending},
            )
            started = time.perf_counter()
            if telemetry.enabled(telemetry.TELEMETRY_SPANS):
                # Scoped path (market:<name>/round_decide) gives per-market
                # latency histograms on the telemetry trail.
                with telemetry.span(f"market:{self.config.name}"):
                    with telemetry.span("round_decide"):
                        outcome = self.mechanism.run_round(auction_round)
            else:
                outcome = self.mechanism.run_round(auction_round)
            elapsed = time.perf_counter() - started
            self.latency.record(elapsed)
            record.update(
                selected=list(outcome.selected),
                payments={
                    str(cid): payment for cid, payment in outcome.payments.items()
                },
                total_payment=outcome.total_payment,
                diagnostics=dict(outcome.diagnostics),
                decision_ms=elapsed * 1e3,
            )
        else:
            self.empty_rounds += 1
            record.update(
                selected=[], payments={}, total_payment=0.0, empty=True
            )
        self.next_round_index = round_index + 1
        self.rounds_closed += 1
        self.outcomes.append(record)
        self._append_outcome(record)
        if (
            self.directory is not None
            and self.rounds_closed % self.config.snapshot_every == 0
        ):
            self.snapshot()
        return record

    def should_close(self) -> bool:
        """Batch-size trigger: is the pending buffer at its cap?"""
        return (
            self.config.max_round_bids is not None
            and len(self.pending) >= self.config.max_round_bids
        )

    def outcomes_since(self, since: int) -> tuple[list[dict[str, Any]], bool]:
        """In-memory outcome records with ``round_index >= since``.

        Returns ``(records, complete)``; ``complete`` is False when older
        requested rounds have been evicted from the in-memory window (the
        full trail is still in ``outcomes.jsonl``).
        """
        records = [r for r in self.outcomes if r["round_index"] >= since]
        oldest_kept = self.outcomes[0]["round_index"] if self.outcomes else 0
        complete = since >= oldest_kept or not self.rounds_closed
        return records, complete

    # -- persistence ----------------------------------------------------------

    def _append_outcome(self, record: dict[str, Any]) -> None:
        if self.directory is None:
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(self.directory / OUTCOMES_NAME, "a") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        except OSError as error:
            _LOGGER.warning(
                "market %s: dropping outcome record: %s", self.config.name, error
            )

    def snapshot(self) -> dict[str, Any]:
        """Write the market's resume state to disk (atomic), return it.

        The snapshot carries the full market configuration, the round
        cursor, the mechanism's :meth:`~repro.core.mechanism.Mechanism.
        state_dict` (or ``null`` with ``resumable: false`` when the
        mechanism cannot snapshot), the *pending* (not yet closed) bids so
        a mid-round restart loses nothing, and the latency histogram.
        """
        try:
            mechanism_state: dict | None = self.mechanism.state_dict()
        except NotImplementedError:
            mechanism_state = None
        state = {
            "format_version": _SNAPSHOT_FORMAT_VERSION,
            "market": self.config.to_dict(),
            "next_round_index": self.next_round_index,
            "rounds_closed": self.rounds_closed,
            "empty_rounds": self.empty_rounds,
            "bids_accepted": self.bids_accepted,
            "bids_rejected": self.bids_rejected,
            "pending": list(self.pending),
            "mechanism_state": mechanism_state,
            "resumable": mechanism_state is not None,
            "latency_hist": self.latency.to_dict(),
            "saved_at": time.time(),
        }
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.directory / SNAPSHOT_NAME
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(state, sort_keys=True))
            os.replace(tmp, path)
        return state

    @classmethod
    def restore(cls, directory: str | Path) -> "Market":
        """Rebuild a market from its snapshot directory.

        Raises
        ------
        ValueError
            On a missing/unreadable snapshot, an unsupported format
            version, or a mechanism-state fingerprint mismatch.
        """
        directory = Path(directory)
        path = directory / SNAPSHOT_NAME
        try:
            state = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            raise ValueError(f"cannot read market snapshot {path}: {error}") from error
        version = state.get("format_version")
        if version != _SNAPSHOT_FORMAT_VERSION:
            raise ValueError(
                f"unsupported market snapshot version {version!r} in {path}"
            )
        market = cls(MarketConfig.from_dict(state["market"]), directory)
        market.next_round_index = int(state["next_round_index"])
        market.rounds_closed = int(state["rounds_closed"])
        market.empty_rounds = int(state["empty_rounds"])
        market.bids_accepted = int(state["bids_accepted"])
        market.bids_rejected = int(state["bids_rejected"])
        market.pending = list(state.get("pending", []))
        market._pending_ids = {bid["client_id"] for bid in market.pending}
        mechanism_state = state.get("mechanism_state")
        if mechanism_state is not None:
            market.mechanism.load_state_dict(mechanism_state)
        elif not market.mechanism.stateless:
            _LOGGER.warning(
                "market %s: mechanism %s carried no snapshot state; "
                "resuming with fresh mechanism state",
                market.config.name,
                market.mechanism_name,
            )
        try:
            market.latency = Histogram.from_dict(state["latency_hist"])
        except (KeyError, TypeError, ValueError):
            market.latency = Histogram()
        return market

    # -- observability --------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """The market's dashboard row (``markets`` op, ``repro.cli markets``)."""
        row: dict[str, Any] = {
            "name": self.config.name,
            "mechanism": self.mechanism_name,
            "rounds_closed": self.rounds_closed,
            "empty_rounds": self.empty_rounds,
            "bids_accepted": self.bids_accepted,
            "bids_rejected": self.bids_rejected,
            "pending": len(self.pending),
            "next_round_index": self.next_round_index,
            "round_timeout": self.config.round_timeout,
            "max_round_bids": self.config.max_round_bids,
            "resumable": self.resumable,
        }
        backlog = getattr(self.mechanism, "budget_backlog", None)
        if backlog is not None:
            row["budget_backlog"] = float(backlog)
        if self.latency.count:
            summary = self.latency.summary()
            row["decision_latency_ms"] = {
                key: summary[key]
                for key in ("count", "p50_ms", "p95_ms", "p99_ms", "max_ms")
            }
        return row
