"""Blocking socket client for the auction service.

A thin synchronous counterpart to the asyncio server: one TCP connection,
one request line per call, one response line back (the protocol answers
in order, so pipelining is just writing several lines before reading —
:meth:`ServiceClient.send_bids` exploits this).  Used by ``repro.cli
replay`` / ``repro.cli markets``, the service test-suite and the
throughput benchmark; none of them need an event loop of their own.
"""

from __future__ import annotations

import socket
from typing import Any

from repro.service.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
)

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ProtocolError):
    """A typed error response received from the server."""


class ServiceClient:
    """Synchronous NDJSON client (context manager).

    Every ``op`` helper returns the server's success payload as a dict and
    raises :class:`ServiceError` (carrying the typed ``error_type``) on an
    error response — callers branch on the type, not on prose.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, *, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- wire helpers ---------------------------------------------------------

    def _send(self, frame: dict[str, Any]) -> None:
        self._sock.sendall(encode_frame(frame))

    def _recv(self) -> dict[str, Any]:
        line = self._file.readline(MAX_FRAME_BYTES + 1024)
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_frame(line)

    def request(self, frame: dict[str, Any]) -> dict[str, Any]:
        """One round-trip; raises :class:`ServiceError` on an error frame."""
        self._send(frame)
        return self._check(self._recv())

    @staticmethod
    def _check(response: dict[str, Any]) -> dict[str, Any]:
        if response.get("ok"):
            return response
        error = response.get("error", {})
        raise ServiceError(
            error.get("type", "internal"), error.get("message", "unknown error")
        )

    # -- operations -----------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.request({"op": "ping"})

    def create_market(
        self,
        market: str,
        *,
        experiment: dict[str, Any] | None = None,
        mechanism: str | None = None,
        round_timeout: float | None = None,
        max_round_bids: int | None = None,
        snapshot_every: int = 1,
        exist_ok: bool = False,
    ) -> dict[str, Any]:
        frame: dict[str, Any] = {
            "op": "create_market",
            "market": market,
            "experiment": experiment or {},
            "snapshot_every": snapshot_every,
            "exist_ok": exist_ok,
        }
        if mechanism is not None:
            frame["mechanism"] = mechanism
        if round_timeout is not None:
            frame["round_timeout"] = round_timeout
        if max_round_bids is not None:
            frame["max_round_bids"] = max_round_bids
        return self.request(frame)

    def bid(
        self,
        market: str,
        client_id: int,
        *,
        cost: float,
        value: float,
        data_size: int = 1,
        quality: float = 1.0,
    ) -> dict[str, Any]:
        return self.request(
            {
                "op": "bid",
                "market": market,
                "client_id": client_id,
                "cost": cost,
                "value": value,
                "data_size": data_size,
                "quality": quality,
            }
        )

    def send_bids(
        self, market: str, bids: list[dict[str, Any]], *, chunk: int = 256
    ) -> dict[str, Any]:
        """Bulk-submit bids, pipelining ``chunk``-sized frames.

        Returns a merged summary (``accepted`` / ``rejected`` /
        ``closed_rounds`` across all chunks).
        """
        accepted = 0
        rejected = 0
        closed: list[int] = []
        results: list[dict[str, Any]] = []
        pending = 0
        for start in range(0, len(bids), chunk):
            self._send(
                {"op": "bids", "market": market, "bids": bids[start : start + chunk]}
            )
            pending += 1
        for _ in range(pending):
            response = self._check(self._recv())
            accepted += response["accepted"]
            rejected += response["rejected"]
            closed.extend(response["closed_rounds"])
            results.extend(response["results"])
        return {
            "market": market,
            "accepted": accepted,
            "rejected": rejected,
            "closed_rounds": closed,
            "results": results,
        }

    def flush(self, market: str) -> dict[str, Any]:
        """Close the market's current round now; returns the outcome record."""
        return self.request({"op": "flush", "market": market})["outcome"]

    def market(self, market: str) -> dict[str, Any]:
        return self.request({"op": "market", "market": market})["stats"]

    def markets(self) -> list[dict[str, Any]]:
        return self.request({"op": "markets"})["markets"]

    def outcomes(self, market: str, *, since: int = 0) -> list[dict[str, Any]]:
        return self.request({"op": "outcomes", "market": market, "since": since})[
            "outcomes"
        ]

    def snapshot(self, market: str | None = None) -> dict[str, Any]:
        frame: dict[str, Any] = {"op": "snapshot"}
        if market is not None:
            frame["market"] = market
        return self.request(frame)

    def shutdown(self) -> dict[str, Any]:
        """Request a graceful server shutdown (snapshots everything)."""
        return self.request({"op": "shutdown"})
