"""A thin HTTP/1.1 facade over the auction server's dispatcher.

For environments where a raw TCP/NDJSON client is inconvenient (curl,
dashboards, sidecars), the server can additionally listen on an HTTP port
(``repro.cli serve --http-port``).  The shim is deliberately minimal — an
asyncio stream handler, **not** ``http.server`` — and shares the exact
request dispatcher with the native protocol:

* ``POST /v1/<op>`` with a JSON object body — the body becomes the request
  frame, ``<op>`` its operation;
* ``GET /v1/ping`` and ``GET /v1/markets`` as conveniences.

Responses are the same JSON frames the native protocol returns, with the
status code derived from the typed error (400 bad input, 404 unknown
market/op, 503 shutting down, 500 internal).  One request per connection
(``Connection: close``) — the shim is an access path, not the load path;
the load generator and the benchmarks speak the native protocol.

Known gap (tracked on the roadmap): no keep-alive, no TLS, no request
auth — hardening the shim is future work.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Any

from repro.logging_utils import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.server import AuctionServer

__all__ = ["start_http_shim", "MAX_BODY_BYTES"]

_LOGGER = get_logger("service.http")

MAX_BODY_BYTES = 1 << 20
_MAX_HEADER_LINES = 100

_STATUS_BY_ERROR = {
    "bad-frame": 400,
    "bad-request": 400,
    "bad-bid": 400,
    "unknown-op": 404,
    "unknown-market": 404,
    "market-exists": 409,
    "shutting-down": 503,
    "internal": 500,
}
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _response(status: int, payload: dict[str, Any]) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


def _error_payload(error_type: str, message: str) -> dict[str, Any]:
    return {"ok": False, "error": {"type": error_type, "message": message}}


async def _handle_http(
    server: "AuctionServer",
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    status = 400
    payload = _error_payload("bad-frame", "malformed HTTP request")
    try:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        method, target = (parts[0], parts[1]) if len(parts) >= 2 else ("", "")
        content_length = 0
        for _ in range(_MAX_HEADER_LINES):
            header = (await reader.readline()).decode("latin-1")
            if header in ("\r\n", "\n", ""):
                break
            name, _, value = header.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = -1
        if not target.startswith("/v1/"):
            status, payload = 404, _error_payload(
                "unknown-op", f"unknown path {target!r} (expected /v1/<op>)"
            )
        elif content_length < 0 or content_length > MAX_BODY_BYTES:
            status, payload = 413, _error_payload(
                "bad-frame", f"body exceeds {MAX_BODY_BYTES} bytes"
            )
        elif method not in ("GET", "POST"):
            status, payload = 405, _error_payload(
                "bad-request", f"method {method!r} not allowed"
            )
        else:
            op = target[len("/v1/") :].strip("/")
            frame: dict[str, Any] = {}
            body = await reader.readexactly(content_length) if content_length else b""
            if body:
                try:
                    frame = json.loads(body.decode("utf-8"))
                except (UnicodeDecodeError, ValueError):
                    frame = None  # type: ignore[assignment]
            if not isinstance(frame, dict):
                status, payload = 400, _error_payload(
                    "bad-frame", "body must be a JSON object"
                )
                server._count_bad_frame()
            else:
                frame["op"] = op
                payload = await server.handle_frame(frame)
                if payload.get("ok"):
                    status = 200
                else:
                    status = _STATUS_BY_ERROR.get(
                        payload.get("error", {}).get("type", "internal"), 400
                    )
        writer.write(_response(status, payload))
        await writer.drain()
    except (
        asyncio.IncompleteReadError,
        ConnectionResetError,
        BrokenPipeError,
    ):
        pass
    except Exception as error:  # noqa: BLE001 - the shim must not kill the loop
        _LOGGER.error("http shim error: %s", error)
        try:
            writer.write(
                _response(500, _error_payload("internal", type(error).__name__))
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def start_http_shim(
    server: "AuctionServer", host: str, port: int
) -> asyncio.AbstractServer:
    """Bind the HTTP facade; returns the asyncio server (caller closes)."""

    async def handler(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await _handle_http(server, reader, writer)

    return await asyncio.start_server(
        handler, host, port, limit=MAX_BODY_BYTES + 1024
    )
