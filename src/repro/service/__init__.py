"""Auction-as-a-service: the long-lived online allocation server.

The paper's mechanism is inherently *online* — clients arrive, bid, and
are recruited round by round under a long-term Lyapunov budget queue —
and this package stands it up as a persistent system instead of a
closed-loop simulation:

* :mod:`repro.service.protocol` — the newline-delimited JSON wire format
  (typed requests, typed error responses);
* :mod:`repro.service.market` — a named **market**: one mechanism
  instance (built through the registry), its virtual-queue state living
  across requests, a pending-bid buffer that becomes each round's
  :class:`~repro.core.bids.AuctionRound`, per-market decision-latency
  histograms, and an atomic snapshot/restore cycle so a restarted server
  resumes with the same budget backlog;
* :mod:`repro.service.server` — the asyncio server: many markets per
  process, rounds closed on a timer *or* a batch-size trigger, graceful
  shutdown, a service event trail (``repro.cli watch``) and telemetry
  snapshots (``repro.cli profile``);
* :mod:`repro.service.client` — a blocking socket client (used by the
  CLI, the tests and the load generator);
* :mod:`repro.service.replay` — the trace-replay load generator:
  archived event logs re-emitted as live traffic under timing control;
* :mod:`repro.service.http_shim` — an optional thin HTTP/1.1 facade over
  the same dispatcher.

CLI surfaces: ``repro.cli serve`` / ``repro.cli replay`` /
``repro.cli markets``.
"""

from repro.service.client import ServiceClient
from repro.service.market import Market, MarketConfig, MarketError
from repro.service.protocol import ProtocolError
from repro.service.replay import ReplayStats, load_trace, replay_trace
from repro.service.server import AuctionServer, ServerHandle, start_server_thread

__all__ = [
    "AuctionServer",
    "Market",
    "MarketConfig",
    "MarketError",
    "ProtocolError",
    "ReplayStats",
    "ServerHandle",
    "ServiceClient",
    "load_trace",
    "replay_trace",
    "start_server_thread",
]
