"""Logging and telemetry configuration for the whole library.

Two observability systems share this module as their config surface:

* **Structured logging** — Python :mod:`logging` under the ``repro`` root
  logger, for human-readable progress.  :func:`get_logger` centralises
  logger creation so the library shares one naming convention;
  :func:`configure` installs a stderr handler for applications.
* **Telemetry** (:mod:`repro.telemetry`) — span timers, latency histograms
  and counters on the mechanism/FL hot paths.  Instrumentation level is a
  single knob, readable from the ``REPRO_TELEMETRY`` environment variable
  and settable programmatically:

  ========== =====================================================
  level      meaning
  ========== =====================================================
  ``off``    default; every probe is a near-zero-cost no-op
  ``counters`` named counters and gauges only (cache hit rates …)
  ``spans``  counters plus hierarchical span timers + histograms
  ========== =====================================================

  The level lives here (not in :mod:`repro.telemetry`) so low-level modules
  can check it without importing the telemetry machinery, and so the CLI's
  ``--telemetry`` flag, the campaign executor (which forwards the level to
  worker processes inside cell payloads) and the env knob all write through
  one place.
"""

from __future__ import annotations

import logging
import os

__all__ = [
    "get_logger",
    "configure",
    "TELEMETRY_ENV",
    "TELEMETRY_LEVELS",
    "TELEMETRY_OFF",
    "TELEMETRY_COUNTERS",
    "TELEMETRY_SPANS",
    "telemetry_level",
    "set_telemetry_level",
    "telemetry_enabled",
]

_ROOT_NAME = "repro"
_configured = False


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the library's namespace.

    ``get_logger("fl.trainer")`` returns the logger ``repro.fl.trainer``.
    """
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure(level: int = logging.INFO) -> None:
    """Install a simple stderr handler on the library root logger.

    Safe to call multiple times; only the first call installs a handler.
    Library code never calls this — it is for applications (examples,
    benchmarks) that want progress output.
    """
    global _configured
    root = logging.getLogger(_ROOT_NAME)
    root.setLevel(level)
    if not _configured:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        root.addHandler(handler)
        _configured = True


# -- telemetry level ----------------------------------------------------------

TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Numeric levels: probes compare against these module globals directly —
#: one attribute load and an int compare on the disabled hot path.
TELEMETRY_OFF = 0
TELEMETRY_COUNTERS = 1
TELEMETRY_SPANS = 2

TELEMETRY_LEVELS = ("off", "counters", "spans")

_LEVEL_NUM_BY_NAME = {name: num for num, name in enumerate(TELEMETRY_LEVELS)}

def _level_from_env() -> int:
    raw = os.environ.get(TELEMETRY_ENV, "off").strip().lower()
    if raw in _LEVEL_NUM_BY_NAME:
        return _LEVEL_NUM_BY_NAME[raw]
    logging.getLogger(_ROOT_NAME).warning(
        "ignoring unknown %s=%r (expected one of %s)",
        TELEMETRY_ENV, raw, "|".join(TELEMETRY_LEVELS),
    )
    return TELEMETRY_OFF


#: Current level as a number.  Read directly by the telemetry fast paths;
#: write only through :func:`set_telemetry_level`.
TELEMETRY_LEVEL_NUM = _level_from_env()


def telemetry_level() -> str:
    """The current instrumentation level: ``off``, ``counters`` or ``spans``."""
    return TELEMETRY_LEVELS[TELEMETRY_LEVEL_NUM]


def set_telemetry_level(level: str | int | None) -> str:
    """Set the instrumentation level; returns the level actually in force.

    Accepts a level name, a numeric level, or ``None`` (re-read the
    ``REPRO_TELEMETRY`` environment variable).  This is the single write
    path for the CLI flag, cell payloads and tests.
    """
    global TELEMETRY_LEVEL_NUM
    if level is None:
        TELEMETRY_LEVEL_NUM = _level_from_env()
    elif isinstance(level, int):
        if not TELEMETRY_OFF <= level <= TELEMETRY_SPANS:
            raise ValueError(f"unknown telemetry level {level!r}")
        TELEMETRY_LEVEL_NUM = level
    else:
        name = str(level).strip().lower()
        if name not in _LEVEL_NUM_BY_NAME:
            raise ValueError(
                f"unknown telemetry level {level!r} "
                f"(expected one of {'|'.join(TELEMETRY_LEVELS)})"
            )
        TELEMETRY_LEVEL_NUM = _LEVEL_NUM_BY_NAME[name]
    return telemetry_level()


def telemetry_enabled(minimum: int = TELEMETRY_COUNTERS) -> bool:
    """True when the current level is at least ``minimum``."""
    return TELEMETRY_LEVEL_NUM >= minimum
