"""Lightweight structured logging for simulations.

The simulator runs thousands of rounds; Python's :mod:`logging` is used for
human-readable progress while structured per-round records are collected by
:class:`repro.simulation.events.EventLog`.  This module only centralises
logger creation so the whole library shares one naming convention and one
formatting setup.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "configure"]

_ROOT_NAME = "repro"
_configured = False


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the library's namespace.

    ``get_logger("fl.trainer")`` returns the logger ``repro.fl.trainer``.
    """
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure(level: int = logging.INFO) -> None:
    """Install a simple stderr handler on the library root logger.

    Safe to call multiple times; only the first call installs a handler.
    Library code never calls this — it is for applications (examples,
    benchmarks) that want progress output.
    """
    global _configured
    root = logging.getLogger(_ROOT_NAME)
    root.setLevel(level)
    if not _configured:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        root.addHandler(handler)
        _configured = True
