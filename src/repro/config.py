"""Experiment configuration with JSON round-tripping.

One frozen dataclass captures every knob an end-to-end experiment exposes;
benchmarks and examples construct it (usually starting from
:func:`repro.simulation.scenarios.icdcs_defaults`) and archive it next to
their results via :func:`repro.utils.serialization.save_json`, so any
reported number can be regenerated from its config + seed.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.utils.serialization import load_json, save_json
from repro.utils.validation import check_positive

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Full configuration of one simulation experiment.

    Attributes mirror the scenario builders and LT-VCG config; see
    :mod:`repro.simulation.scenarios` and
    :class:`repro.core.longterm_vcg.LongTermVCGConfig` for semantics.
    """

    name: str = "experiment"
    seed: int = 0
    num_clients: int = 40
    num_rounds: int = 300
    max_winners: int = 10
    v: float = 50.0
    budget_per_round: float = 5.0
    wd_method: str = "exact"
    participation_target: float = 0.0
    sustainability_weight: float = 1.0
    dirichlet_alpha: float | None = 0.5
    num_samples: int = 8000
    model: str = "softmax"
    local_steps: int = 5
    batch_size: int = 32
    learning_rate: float = 0.3
    eval_every: int = 5
    energy_constrained: bool = False
    extras: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive("num_clients", self.num_clients)
        check_positive("num_rounds", self.num_rounds)
        check_positive("v", self.v)
        check_positive("budget_per_round", self.budget_per_round)
        if self.max_winners <= 0:
            raise ValueError(f"max_winners must be > 0, got {self.max_winners}")
        if not 0.0 <= self.participation_target <= 1.0:
            raise ValueError(
                f"participation_target must be in [0, 1], got "
                f"{self.participation_target}"
            )

    def with_overrides(self, **overrides: Any) -> "ExperimentConfig":
        """A copy with some fields replaced (dataclasses.replace wrapper)."""
        return replace(self, **overrides)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-ready)."""
        return asdict(self)

    def save(self, path: str | Path) -> None:
        """Archive this config as JSON."""
        save_json(path, self.to_dict())

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentConfig":
        """Load a config archived with :meth:`save`."""
        data = load_json(path)
        return cls(**data)
