"""Seeded random-number management.

Every stochastic component in the library draws randomness from a
:class:`RngTree` rather than from the global numpy state.  A tree is created
from a single integer seed and hands out *named, independent* child generators
so that

* the whole simulation is reproducible from one seed, and
* adding a new consumer of randomness (a new client, a new harvesting
  process) does not perturb the streams seen by existing consumers.

Independence between named streams is obtained by hashing the child name into
the seed sequence, which is the mechanism :class:`numpy.random.SeedSequence`
provides for exactly this purpose.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngTree", "derive_seed"]


def derive_seed(seed: int, name: str) -> int:
    """Derive a deterministic 63-bit child seed from ``seed`` and ``name``.

    The derivation is stable across processes and Python versions (it does not
    rely on :func:`hash`, whose output is salted per process).
    """
    digest = hashlib.sha256(f"{seed}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


class RngTree:
    """A tree of named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root seed for the tree.  Two trees built from the same seed produce
        identical streams for identical child names.

    Examples
    --------
    >>> tree = RngTree(7)
    >>> a = tree.generator("clients/0")
    >>> b = tree.generator("clients/1")
    >>> float(a.random()) != float(b.random())
    True
    >>> tree2 = RngTree(7)
    >>> float(tree2.generator("clients/0").random()) == float(RngTree(7).generator("clients/0").random())
    True
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {type(seed).__name__}")
        self._seed = int(seed)
        self._generators: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed of this tree."""
        return self._seed

    def child_seed(self, name: str) -> int:
        """Return the derived integer seed for the child stream ``name``."""
        return derive_seed(self._seed, name)

    def generator(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for stream ``name``.

        Repeated calls with the same name return the *same* generator object,
        so draws continue where they left off.
        """
        if name not in self._generators:
            self._generators[name] = np.random.default_rng(self.child_seed(name))
        return self._generators[name]

    def fresh_generator(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name``, reset to its start state."""
        return np.random.default_rng(self.child_seed(name))

    def subtree(self, name: str) -> "RngTree":
        """Return an independent subtree rooted at ``name``.

        Useful for handing a whole component (e.g. one client) its own
        namespace of streams.
        """
        return RngTree(self.child_seed(name))

    def __repr__(self) -> str:
        return f"RngTree(seed={self._seed}, streams={len(self._generators)})"
