"""Fixed-bucket latency histograms with exact small-sample percentiles.

The recording side is built for hot loops: one ``math.log10`` and a dict
increment per sample, no allocation growth beyond the (bounded) bucket map.
Buckets are log-spaced — ``BUCKETS_PER_DECADE`` per factor of 10, spanning
``MIN_SECONDS`` to ``MAX_SECONDS`` — so a bucket index is meaningful across
processes and merges are plain per-index sums, the property the campaign
telemetry trail relies on (every worker serialises its sparse bucket map;
readers merge exactly).

Percentiles are *exact* while the histogram still holds every raw sample
(up to ``exact_cap``, default 4096 — far above any per-cell round count the
benchmarks use): the requested rank is read from the sorted samples, the
same number ``numpy.percentile(..., method="lower")`` would produce.  Past
the cap, or after a merge of serialised histograms (raw samples are not
shipped), percentiles degrade gracefully to the *upper edge* of the bucket
containing the rank — a conservative bound within one bucket width
(``10^(1/BUCKETS_PER_DECADE)``, about 12 % at the default resolution).

Jitter is the standard deviation, computed exactly from running
``sum``/``sum of squares`` regardless of the sample cap.
"""

from __future__ import annotations

import math

__all__ = ["Histogram"]

#: Bucket resolution: 20 buckets per decade => upper/lower edge ratio ~1.122.
BUCKETS_PER_DECADE = 20
#: Full scale: 100 ns .. 1000 s covers a numpy scalar op through a full
#: campaign cell; samples outside clamp into the edge buckets.
MIN_SECONDS = 1e-7
MAX_SECONDS = 1e3

_DECADES = int(round(math.log10(MAX_SECONDS / MIN_SECONDS)))
NUM_BUCKETS = _DECADES * BUCKETS_PER_DECADE + 1
_LOG_MIN = math.log10(MIN_SECONDS)


def _bucket_of(seconds: float) -> int:
    if seconds <= MIN_SECONDS:
        return 0
    if seconds >= MAX_SECONDS:
        return NUM_BUCKETS - 1
    return int((math.log10(seconds) - _LOG_MIN) * BUCKETS_PER_DECADE)


def bucket_upper_edge(index: int) -> float:
    """Upper boundary (seconds) of a bucket — the conservative percentile."""
    return 10.0 ** (_LOG_MIN + (index + 1) / BUCKETS_PER_DECADE)


class Histogram:
    """One latency distribution: sparse log buckets + capped raw samples."""

    __slots__ = (
        "buckets",
        "count",
        "total",
        "sumsq",
        "min",
        "max",
        "samples",
        "exact_cap",
    )

    def __init__(self, *, exact_cap: int = 4096) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.sumsq = 0.0
        self.min = math.inf
        self.max = 0.0
        self.samples: list[float] | None = []
        self.exact_cap = exact_cap

    def record(self, seconds: float) -> None:
        """Fold one latency sample (seconds) in."""
        index = _bucket_of(seconds)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += seconds
        self.sumsq += seconds * seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        if self.samples is not None:
            if len(self.samples) < self.exact_cap:
                self.samples.append(seconds)
            else:
                # Past the cap the sample list no longer covers every
                # record; drop it so percentiles honestly fall back to
                # bucket resolution instead of silently describing a prefix.
                self.samples = None

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (exact for every aggregate but samples)."""
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        self.count += other.count
        self.total += other.total
        self.sumsq += other.sumsq
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        if self.samples is not None and other.samples is not None and (
            len(self.samples) + len(other.samples) <= self.exact_cap
        ):
            self.samples.extend(other.samples)
        else:
            self.samples = None

    @property
    def exact(self) -> bool:
        """True while percentiles come from raw samples, not bucket edges."""
        return self.samples is not None

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile in seconds (``q`` in [0, 100]).

        Exact (rank statistic of the raw samples) while :attr:`exact` holds;
        otherwise the upper edge of the bucket containing the rank.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        # numpy's method="lower" rank: floor of the linear-interpolation
        # position over count-1 gaps.
        rank = int(q / 100.0 * (self.count - 1))
        if self.samples is not None:
            return sorted(self.samples)[rank]
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen > rank:
                return bucket_upper_edge(index)
        return bucket_upper_edge(max(self.buckets))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def jitter(self) -> float:
        """Standard deviation of the samples (exact at any count)."""
        if self.count == 0:
            return 0.0
        variance = self.sumsq / self.count - self.mean**2
        return math.sqrt(max(variance, 0.0))

    def summary(self, *, unit_ms: bool = True) -> dict[str, float]:
        """``{count, mean, p50, p95, p99, max, jitter}`` (milliseconds)."""
        scale = 1e3 if unit_ms else 1.0
        return {
            "count": self.count,
            "mean_ms": self.mean * scale,
            "p50_ms": self.percentile(50) * scale,
            "p95_ms": self.percentile(95) * scale,
            "p99_ms": self.percentile(99) * scale,
            "max_ms": (self.max if self.count else 0.0) * scale,
            "jitter_ms": self.jitter * scale,
        }

    # -- serialisation (the telemetry trail) --------------------------------

    def to_dict(self) -> dict:
        """Compact JSON form: sparse buckets + exact scalar aggregates.

        Raw samples are deliberately not shipped — a trail line must stay
        small — so percentiles of a deserialised histogram are
        bucket-resolution (see the module docstring).
        """
        return {
            "buckets": {str(index): count for index, count in self.buckets.items()},
            "count": self.count,
            "total": self.total,
            "sumsq": self.sumsq,
            "min": self.min if self.count else None,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, entry: dict) -> "Histogram":
        histogram = cls()
        histogram.buckets = {
            int(index): int(count)
            for index, count in dict(entry.get("buckets", {})).items()
        }
        histogram.count = int(entry.get("count", 0))
        histogram.total = float(entry.get("total", 0.0))
        histogram.sumsq = float(entry.get("sumsq", 0.0))
        minimum = entry.get("min")
        histogram.min = math.inf if minimum is None else float(minimum)
        histogram.max = float(entry.get("max", 0.0))
        histogram.samples = None if histogram.count else []
        return histogram
