"""Hierarchical span timers, latency histograms and counters.

The telemetry spine every latency/SLO harness in the repo reads from.  It
is engineered around one constraint: **instrumentation must cost nothing
when it is off**.  Probes sit on the mechanism and FL hot paths (winner
determination, payment engines, queue updates, local training), so the
disabled path of every primitive is a module-global integer compare and
nothing else — no allocation, no lock, no string formatting.  The overhead
gate in ``tests/utils/test_telemetry.py`` pins this below 2 % on a
microbenchmark loop.

Three instrumentation levels (config surface in
:mod:`repro.logging_utils`; knob ``REPRO_TELEMETRY=off|counters|spans``,
CLI ``--telemetry``):

* ``off`` — every probe is a no-op (the default);
* ``counters`` — :func:`add_counter` / :func:`set_gauge` record named
  scalars (solve-cache hit rates, batch sizes);
* ``spans`` — additionally, :func:`span` (context manager) and
  :func:`traced` (decorator) time hierarchical spans.  A span's *path* is
  its enclosing spans' names joined with ``/`` (per-thread stacks, so
  concurrent threads nest independently), and every path aggregates into a
  :class:`~repro.telemetry.histogram.Histogram` — count, total, self time
  (total minus child spans) and exact p50/p95/p99 latency percentiles.

Aggregation is in-process; crossing process boundaries uses the same
``O_APPEND`` JSONL discipline as :mod:`repro.orchestration.events`: a
worker serialises its :func:`snapshot` as one appended line on the
campaign's ``telemetry.jsonl`` trail (:class:`TelemetryTrail`), and
readers (``repro.cli profile``, ``report --timing``) merge lines exactly
via the histograms' sparse bucket maps.

Usage::

    from repro import telemetry

    with telemetry.span("round_decide"):
        outcome = mechanism.run_round(auction_round)

    @telemetry.traced("pay_greedy")
    def greedy_critical_scores(...): ...

    telemetry.add_counter("wd_cache_hit")
    snap = telemetry.snapshot()          # {"spans": {...}, "counters": ...}
"""

from __future__ import annotations

import functools
import threading
from time import perf_counter
from typing import Any, Callable, Iterable

from repro import logging_utils
from repro.logging_utils import (
    TELEMETRY_COUNTERS,
    TELEMETRY_ENV,
    TELEMETRY_LEVELS,
    TELEMETRY_OFF,
    TELEMETRY_SPANS,
    set_telemetry_level,
    telemetry_level,
)
from repro.telemetry.histogram import Histogram
from repro.telemetry.trail import (
    TELEMETRY_TRAIL_NAME,
    TelemetryTrail,
    read_trail,
    render_snapshot,
)

__all__ = [
    "span",
    "traced",
    "add_counter",
    "set_gauge",
    "enabled",
    "snapshot",
    "reset",
    "merge_snapshots",
    "decision_latency",
    "set_telemetry_level",
    "telemetry_level",
    "Histogram",
    "TelemetryTrail",
    "read_trail",
    "render_snapshot",
    "TELEMETRY_TRAIL_NAME",
    "TELEMETRY_ENV",
    "TELEMETRY_LEVELS",
    "TELEMETRY_OFF",
    "TELEMETRY_COUNTERS",
    "TELEMETRY_SPANS",
]


class _SpanStats:
    """Aggregate of every completed span sharing one path (lock-guarded)."""

    __slots__ = ("count", "total", "child_total", "histogram")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.child_total = 0.0
        self.histogram = Histogram()


_lock = threading.Lock()
_spans: dict[str, _SpanStats] = {}
_counters: dict[str, float] = {}
_gauges: dict[str, float] = {}
_local = threading.local()


def enabled(minimum: int = TELEMETRY_COUNTERS) -> bool:
    """True when the current level is at least ``minimum``.

    The guard for call sites whose probe *arguments* cost something to
    build (an f-string span name, a computed counter value)::

        if telemetry.enabled(telemetry.TELEMETRY_COUNTERS):
            telemetry.add_counter(f"wd/{method}")
    """
    return logging_utils.TELEMETRY_LEVEL_NUM >= minimum


class _NullSpan:
    """The disabled-path span: enter/exit do nothing, one shared instance."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span frame: resolves its path from the per-thread stack."""

    __slots__ = ("name", "path", "start", "child_seconds")

    def __init__(self, name: str) -> None:
        self.name = name

    def __enter__(self) -> "_Span":
        stack = getattr(_local, "stack", None)
        if stack is None:
            stack = _local.stack = []
        self.path = f"{stack[-1].path}/{self.name}" if stack else self.name
        self.child_seconds = 0.0
        stack.append(self)
        self.start = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        duration = perf_counter() - self.start
        stack = _local.stack
        stack.pop()
        if stack:
            stack[-1].child_seconds += duration
        with _lock:
            stats = _spans.get(self.path)
            if stats is None:
                stats = _spans[self.path] = _SpanStats()
            stats.count += 1
            stats.total += duration
            stats.child_total += self.child_seconds
            stats.histogram.record(duration)


def span(name: str) -> "_Span | _NullSpan":
    """Context manager timing one hierarchical span.

    Nested ``span``/:func:`traced` frames on the same thread extend the
    path with ``/``; when the level is below ``spans`` the shared no-op
    span is returned and nothing is recorded.
    """
    if logging_utils.TELEMETRY_LEVEL_NUM < TELEMETRY_SPANS:
        return _NULL_SPAN
    return _Span(name)


def traced(name: str | None = None) -> Callable:
    """Decorator form of :func:`span` (span name defaults to the qualname).

    The disabled path is one integer compare before calling through —
    cheap enough for per-round payment engines.
    """

    def decorate(fn: Callable) -> Callable:
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if logging_utils.TELEMETRY_LEVEL_NUM < TELEMETRY_SPANS:
                return fn(*args, **kwargs)
            with _Span(label):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def add_counter(name: str, value: float = 1.0) -> None:
    """Add to a named counter (no-op below the ``counters`` level)."""
    if logging_utils.TELEMETRY_LEVEL_NUM < TELEMETRY_COUNTERS:
        return
    with _lock:
        _counters[name] = _counters.get(name, 0.0) + value


def set_gauge(name: str, value: float) -> None:
    """Set a named gauge to its latest value (no-op below ``counters``)."""
    if logging_utils.TELEMETRY_LEVEL_NUM < TELEMETRY_COUNTERS:
        return
    with _lock:
        _gauges[name] = float(value)


def reset() -> None:
    """Drop every aggregated span, counter and gauge (not the level)."""
    with _lock:
        _spans.clear()
        _counters.clear()
        _gauges.clear()


def snapshot() -> dict[str, Any]:
    """The current aggregate state as one JSON-ready document.

    Per span path: ``count``, ``total_s``, ``self_s`` (total minus time in
    child spans), the latency summary (``p50_ms``/``p95_ms``/``p99_ms``/
    ``max_ms``/``jitter_ms`` — exact while the histogram still holds its
    raw samples) and the serialised histogram (``hist``) so snapshots from
    different processes merge exactly.  Reading does not reset; pair with
    :func:`reset` for per-cell capture.
    """
    with _lock:
        spans = {}
        for path, stats in _spans.items():
            entry: dict[str, Any] = {
                "count": stats.count,
                "total_s": stats.total,
                "self_s": max(stats.total - stats.child_total, 0.0),
            }
            entry.update(stats.histogram.summary())
            entry["hist"] = stats.histogram.to_dict()
            spans[path] = entry
        return {
            "level": telemetry_level(),
            "spans": spans,
            "counters": dict(_counters),
            "gauges": dict(_gauges),
        }


def merge_snapshots(snapshots: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Fold many snapshots (e.g. one per campaign cell) into one.

    Span counts/totals and counters add exactly; histograms merge through
    their bucket maps, so merged percentiles are bucket-resolution (see
    :mod:`repro.telemetry.histogram`).  Gauges keep the last value seen.
    """
    spans: dict[str, dict[str, Any]] = {}
    histograms: dict[str, Histogram] = {}
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    level = "off"
    for snap in snapshots:
        level = snap.get("level", level)
        for path, entry in snap.get("spans", {}).items():
            merged = spans.setdefault(
                path, {"count": 0, "total_s": 0.0, "self_s": 0.0}
            )
            merged["count"] += int(entry.get("count", 0))
            merged["total_s"] += float(entry.get("total_s", 0.0))
            merged["self_s"] += float(entry.get("self_s", 0.0))
            if "hist" in entry:
                histogram = Histogram.from_dict(entry["hist"])
                if path in histograms:
                    histograms[path].merge(histogram)
                else:
                    histograms[path] = histogram
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + float(value)
        gauges.update(snap.get("gauges", {}))
    for path, histogram in histograms.items():
        spans[path].update(histogram.summary())
        spans[path]["hist"] = histogram.to_dict()
    return {"level": level, "spans": spans, "counters": counters, "gauges": gauges}


#: Span paths carrying the per-round decision latency, in preference order
#: (the sequential loop's span first, then the batched window's).
DECISION_SPANS = ("round_decide", "round_decide_batch")


def decision_latency(snap: dict[str, Any]) -> dict[str, Any] | None:
    """Compact decision-latency record for the campaign event bus.

    Picks the per-round decision span out of a snapshot and strips it to
    what a live dashboard needs: the percentile summary plus the sparse
    histogram (so ``repro.cli watch`` can merge latency across cells
    exactly).  ``None`` when the snapshot has no decision span.
    """
    spans = snap.get("spans", {})
    for path in DECISION_SPANS:
        entry = spans.get(path)
        if entry is not None and entry.get("count"):
            record = {"span": path}
            for key in ("count", "p50_ms", "p95_ms", "p99_ms", "max_ms", "jitter_ms"):
                if key in entry:
                    record[key] = entry[key]
            if "hist" in entry:
                record["hist"] = entry["hist"]
            return record
    return None
