"""The telemetry trail: per-worker snapshot lines, and span-tree rendering.

A campaign's telemetry lives in ``<campaign>/telemetry.jsonl``: every
worker that executes a cell with spans enabled appends one line carrying
its :func:`repro.telemetry.snapshot` for that cell.  Writes follow the same
``O_APPEND`` one-line-per-record discipline as
:mod:`repro.orchestration.events`, so any number of processes — local pool
workers, ``repro.cli work`` drainers on other hosts sharing the directory —
interleave without locks, and readers skip torn lines instead of dying.

``repro.cli profile`` and ``repro.cli report --timing`` read the trail
back (:func:`read_trail`), merge the snapshots exactly through the
histograms' bucket maps, and render the result as an indented span tree
(:func:`render_snapshot`): count, total, self time and latency percentiles
per span path, followed by counters and gauges.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

__all__ = [
    "TELEMETRY_TRAIL_NAME",
    "TelemetryTrail",
    "read_trail",
    "render_snapshot",
]

TELEMETRY_TRAIL_NAME = "telemetry.jsonl"


def _worker_label() -> str:
    return f"{os.uname().nodename}:{os.getpid()}"


class TelemetryTrail:
    """Appends snapshot records to a trail file (no-op when path is None)."""

    def __init__(self, path: str | Path | None, *, worker: str | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self.worker = worker if worker is not None else _worker_label()

    def append(
        self,
        snapshot: dict[str, Any],
        *,
        cell_id: str | None = None,
        **data: Any,
    ) -> None:
        """Append one ``{"timestamp", "worker", "cell_id"?, "snapshot"}`` line."""
        if self.path is None:
            return
        record: dict[str, Any] = {
            "timestamp": time.time(),
            "worker": self.worker,
            "snapshot": snapshot,
        }
        if cell_id is not None:
            record["cell_id"] = cell_id
        if data:
            record.update(data)
        line = json.dumps(record, sort_keys=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(line + "\n")


def read_trail(path: str | Path) -> list[dict[str, Any]]:
    """Parse a trail; a missing file is an empty trail, torn lines skipped."""
    path = Path(path)
    if not path.exists():
        return []
    records = []
    with open(path) as handle:
        for line in handle:
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and isinstance(record.get("snapshot"), dict):
                records.append(record)
    return records


# -- rendering ---------------------------------------------------------------


def _tree_rows(spans: dict[str, dict[str, Any]]) -> list[tuple[int, str, dict]]:
    """``(depth, label, entry)`` rows in depth-first, total-descending order.

    Span paths nest on ``/``; a path segment that was never itself recorded
    as a span (possible after partial trails) renders as a bare grouping
    row with empty stats.
    """
    children: dict[str, list[str]] = {"": []}
    for path in spans:
        parts = path.split("/")
        for depth in range(len(parts)):
            parent = "/".join(parts[:depth])
            node = "/".join(parts[: depth + 1])
            siblings = children.setdefault(parent, [])
            if node not in siblings:
                siblings.append(node)
            children.setdefault(node, [])

    def total_of(node: str) -> float:
        entry = spans.get(node)
        if entry is not None:
            return float(entry.get("total_s", 0.0))
        return sum(total_of(child) for child in children.get(node, ()))

    rows: list[tuple[int, str, dict]] = []

    def visit(node: str, depth: int) -> None:
        if node:
            rows.append((depth - 1, node.rsplit("/", 1)[-1], spans.get(node, {})))
        for child in sorted(children.get(node, ()), key=total_of, reverse=True):
            visit(child, depth + 1)

    visit("", 0)
    return rows


def _fmt(value: Any, spec: str) -> str:
    if value is None or value == "":
        return ""
    return format(float(value), spec)


def render_snapshot(
    snap: dict[str, Any],
    *,
    title: str | None = None,
    include_counters: bool = True,
) -> str:
    """Render a (possibly merged) snapshot as an indented span-tree table."""
    spans = snap.get("spans", {})
    lines: list[str] = []
    if title:
        lines.append(title)
    if not spans:
        lines.append(
            "no spans recorded (run with REPRO_TELEMETRY=spans or --telemetry spans)"
        )
    else:
        rows = []
        for depth, label, entry in _tree_rows(spans):
            rows.append(
                [
                    "  " * depth + label,
                    str(entry.get("count", "")),
                    _fmt(entry.get("total_s"), ".3f"),
                    _fmt(entry.get("self_s"), ".3f"),
                    _fmt(entry.get("p50_ms"), ".3f"),
                    _fmt(entry.get("p95_ms"), ".3f"),
                    _fmt(entry.get("p99_ms"), ".3f"),
                    _fmt(entry.get("max_ms"), ".3f"),
                ]
            )
        headers = [
            "span",
            "count",
            "total s",
            "self s",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "max ms",
        ]
        widths = [len(h) for h in headers]
        for row in rows:
            for j, cell in enumerate(row):
                widths[j] = max(widths[j], len(cell))
        # The span column is a tree: left-justified; every stat right-justified.
        lines.append(
            " | ".join(
                (h.ljust(widths[j]) if j == 0 else h.rjust(widths[j]))
                for j, h in enumerate(headers)
            )
        )
        lines.append("-+-".join("-" * w for w in widths))
        for row in rows:
            lines.append(
                " | ".join(
                    (cell.ljust(widths[j]) if j == 0 else cell.rjust(widths[j]))
                    for j, cell in enumerate(row)
                )
            )
    if include_counters and (snap.get("counters") or snap.get("gauges")):
        lines.append("")
        for kind in ("counters", "gauges"):
            table = snap.get(kind, {})
            if not table:
                continue
            lines.append(f"{kind}:")
            width = max(len(name) for name in table)
            for name in sorted(table):
                lines.append(f"  {name.ljust(width)}  {table[name]:g}")
    return "\n".join(lines)
