"""Sustainable Federated Learning with a Long-term Online VCG Auction Mechanism.

Reproduction of the ICDCS 2022 paper (see DESIGN.md for the reconstruction
notes).  The public API re-exports the pieces a downstream user composes:

* the mechanism: :class:`LongTermVCGMechanism` + :class:`LongTermVCGConfig`,
* baselines from :mod:`repro.mechanisms`,
* the FL substrate from :mod:`repro.fl`,
* economics from :mod:`repro.economics`,
* the simulator: :class:`SimulationRunner` and scenario builders,
* analysis from :mod:`repro.analysis`.

Quickstart::

    from repro import (
        LongTermVCGConfig, LongTermVCGMechanism,
        SimulationRunner, build_mechanism_scenario,
    )

    scenario = build_mechanism_scenario(num_clients=40, seed=0)
    mechanism = LongTermVCGMechanism(
        LongTermVCGConfig(v=50.0, budget_per_round=5.0, max_winners=10)
    )
    log = SimulationRunner(mechanism, scenario.clients, scenario.valuation).run(300)
    print(log.total_welfare(), log.average_payment())
"""

from repro.config import ExperimentConfig
from repro.core import (
    AuctionRound,
    Bid,
    LongTermVCGConfig,
    LongTermVCGMechanism,
    Mechanism,
    RoundOutcome,
    SingleRoundVCGAuction,
    verify_individual_rationality,
    verify_monotonicity,
    verify_truthfulness,
)
from repro.rng import RngTree
from repro.simulation import (
    EventLog,
    SimulationRunner,
    build_fl_scenario,
    build_mechanism_scenario,
    icdcs_defaults,
)

__version__ = "1.0.0"

__all__ = [
    "AuctionRound",
    "Bid",
    "EventLog",
    "ExperimentConfig",
    "LongTermVCGConfig",
    "LongTermVCGMechanism",
    "Mechanism",
    "RngTree",
    "RoundOutcome",
    "SimulationRunner",
    "SingleRoundVCGAuction",
    "build_fl_scenario",
    "build_mechanism_scenario",
    "icdcs_defaults",
    "verify_individual_rationality",
    "verify_monotonicity",
    "verify_truthfulness",
    "__version__",
]
