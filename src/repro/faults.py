"""Deterministic fault injection for chaos-testing the campaign fabric.

The orchestration layer promises exactly-once cell execution under worker
crashes, stalls, torn writes, and transient I/O failures.  This module
makes those promises *testable* instead of asserted: named fault sites are
woven into the queue, store, event, and worker hot paths, and a seeded
injector arms them from one declarative plan::

    REPRO_FAULTS="queue.claim:crash@0.1,store.flush:torn_write@0.05" \\
        python -m repro.cli work results/camp

Plan syntax is a comma list of ``site:mode[@probability][#max_triggers]``
entries.  Four fault modes exist:

``crash``
    Hard process death (``os._exit``) — no cleanup, no finally blocks,
    exactly what ``kill -9`` or an OOM kill looks like to everyone else.
``stall``
    An injected sleep (``REPRO_FAULTS_STALL_SECONDS``, default 0.75 s)
    long enough to push a claimed cell past a short lease — the hung-
    worker scenario heartbeats and lease reclaim exist for.
``torn_write``
    Truncates the tail of the file the site just wrote, then crashes:
    a process that died while the kernel had flushed only part of its
    data.  Exercises the startup repair paths
    (:meth:`~repro.orchestration.queue.WorkQueue.repair`, the columnar
    store's ``.bak`` recovery) and torn-line tolerance in every reader.
``io_error``
    Raises :class:`TransientFaultError` (an ``OSError``) — the NFS blip /
    full-disk / EINTR class of failure the retry policy must absorb.

Sites are probed through :func:`fault_point` / :func:`torn_write_point`;
with no plan configured a probe is one module-global load and a ``None``
check.  The injector's RNG is seeded (``REPRO_FAULTS_SEED``), so a fault
schedule is reproducible for a given process and probe sequence; tests
that need full determinism pin ``@1.0`` probabilities with ``#N`` trigger
caps.  Worker processes forked by the coordinator inherit the parent's
resolved injector; fresh processes (``repro.cli work``) resolve the plan
from their own environment on first probe.

Registered sites (the plan parser rejects unknown names):

=================  =========================================================
``queue.enqueue``  coordinator, per task payload written
``queue.claim``    worker, after winning a lease (before reading the payload)
``queue.ack``      worker, between finishing a cell and durably acking it
``queue.reclaim``  whoever sweeps expired leases
``store.flush``    coordinator, around each columnar NPZ snapshot
``events.emit``    any process appending to the campaign event trail
``worker.run_cell``  worker, inside cell execution (after ``cell_started``)
``executor.record``  coordinator, before recording an outcome in the store
=================  =========================================================
"""

from __future__ import annotations

import os
import random
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.logging_utils import get_logger

__all__ = [
    "CRASH_EXIT_CODE",
    "FAULT_MODES",
    "FAULT_SITES",
    "FAULTS_ENV",
    "FAULTS_SEED_ENV",
    "STALL_SECONDS_ENV",
    "FaultSpec",
    "FaultInjector",
    "TransientFaultError",
    "configure",
    "configure_from_env",
    "enabled",
    "fault_point",
    "torn_write_point",
    "parse_fault_plan",
]

FAULTS_ENV = "REPRO_FAULTS"
FAULTS_SEED_ENV = "REPRO_FAULTS_SEED"
STALL_SECONDS_ENV = "REPRO_FAULTS_STALL_SECONDS"

#: Distinctive exit status for injected crashes, so a test (or a human
#: reading worker exit codes) can tell an injected death from a real one.
CRASH_EXIT_CODE = 86

FAULT_MODES = ("crash", "stall", "torn_write", "io_error")

FAULT_SITES = (
    "queue.enqueue",
    "queue.claim",
    "queue.ack",
    "queue.reclaim",
    "store.flush",
    "events.emit",
    "worker.run_cell",
    "executor.record",
)

_LOGGER = get_logger("faults")


class TransientFaultError(OSError):
    """Injected transient I/O failure (classified retryable, like any OSError)."""


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: where, what, how often, and for how long.

    ``max_triggers`` caps how many times this spec may fire *per process*
    — the knob that turns "fails forever" into "fails twice, then
    succeeds", which is what retry tests need.
    """

    site: str
    mode: str
    probability: float = 1.0
    max_triggers: int | None = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; "
                f"choose from {', '.join(FAULT_SITES)}"
            )
        if self.mode not in FAULT_MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; "
                f"choose from {', '.join(FAULT_MODES)}"
            )
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"fault probability must be in (0, 1], got {self.probability}"
            )
        if self.max_triggers is not None and self.max_triggers < 1:
            raise ValueError(
                f"max_triggers must be >= 1, got {self.max_triggers}"
            )


def parse_fault_plan(text: str) -> tuple[FaultSpec, ...]:
    """Parse ``site:mode[@prob][#max],...`` into fault specs.

    Empty text parses to an empty plan (fault injection disabled).
    """
    specs = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        body, _, max_text = token.partition("#")
        body, _, prob_text = body.partition("@")
        site, separator, mode = body.partition(":")
        if not separator:
            raise ValueError(
                f"bad fault entry {token!r}: expected site:mode[@prob][#max]"
            )
        specs.append(
            FaultSpec(
                site=site.strip(),
                mode=mode.strip(),
                probability=float(prob_text) if prob_text else 1.0,
                max_triggers=int(max_text) if max_text else None,
            )
        )
    return tuple(specs)


class FaultInjector:
    """Arms fault sites from a plan; every roll comes from one seeded RNG.

    Thread-safe: drainer heartbeat threads and the main loop may probe
    concurrently.  ``triggered`` counts fired faults per ``(site, mode)``
    so tests and post-mortems can see what the schedule actually did.
    """

    def __init__(
        self,
        specs: tuple[FaultSpec, ...],
        *,
        seed: int = 0,
        stall_seconds: float = 0.75,
    ) -> None:
        self.specs = tuple(specs)
        self.seed = int(seed)
        self.stall_seconds = float(stall_seconds)
        self._rng = random.Random(self.seed)
        self._pid = os.getpid()
        self._lock = threading.Lock()
        self._by_site: dict[str, list[FaultSpec]] = {}
        for spec in self.specs:
            self._by_site.setdefault(spec.site, []).append(spec)
        self.triggered: dict[tuple[str, str], int] = {}

    def _arm(self, site: str, modes: tuple[str, ...]) -> FaultSpec | None:
        """Roll the dice for each matching spec; returns the one that fires.

        One RNG draw per matching spec per probe keeps the schedule
        deterministic for a given seed and probe sequence.
        """
        with self._lock:
            pid = os.getpid()
            if pid != self._pid:
                # Forked child: derive an independent (still deterministic,
                # per-pid) stream and a fresh trigger budget.  Children all
                # inherit the parent's RNG state at fork, so without this a
                # crash-at-first-probe draw would kill every respawned
                # replacement at the same probe, forever.
                self._rng = random.Random(f"{self.seed}:{pid}")
                self.triggered = {}
                self._pid = pid
            for spec in self._by_site.get(site, ()):
                if spec.mode not in modes:
                    continue
                count = self.triggered.get((site, spec.mode), 0)
                if spec.max_triggers is not None and count >= spec.max_triggers:
                    continue
                if self._rng.random() >= spec.probability:
                    continue
                self.triggered[(site, spec.mode)] = count + 1
                return spec
        return None

    def fire(self, site: str) -> None:
        """Probe a control-flow site (crash / stall / io_error modes)."""
        spec = self._arm(site, ("crash", "stall", "io_error"))
        if spec is None:
            return
        if spec.mode == "crash":
            _LOGGER.warning("injected crash at %s (pid %d)", site, os.getpid())
            os._exit(CRASH_EXIT_CODE)
        if spec.mode == "stall":
            _LOGGER.warning(
                "injected %.2fs stall at %s", self.stall_seconds, site
            )
            import time

            time.sleep(self.stall_seconds)
            return
        _LOGGER.warning("injected transient I/O failure at %s", site)
        raise TransientFaultError(f"injected transient I/O failure at {site}")

    def torn_write(
        self, site: str, path: str | Path, tail_bytes: int | None = None
    ) -> None:
        """Probe a just-completed write: maybe tear its tail, then crash.

        Truncates between 1 byte and ``tail_bytes`` (default: the whole
        file) off the end of ``path`` and hard-exits — the on-disk state a
        reader sees when a writer died with only part of its data flushed.
        """
        spec = self._arm(site, ("torn_write",))
        if spec is None:
            return
        path = Path(path)
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        if size > 1:
            cut = self._rng.randint(1, max(1, min(tail_bytes or size, size - 1)))
            with open(path, "r+b") as handle:
                handle.truncate(size - cut)
                handle.flush()
                os.fsync(handle.fileno())
        _LOGGER.warning(
            "injected torn write at %s (%s truncated), crashing", site, path
        )
        os._exit(CRASH_EXIT_CODE)


#: Module-level injector: ``None`` = disabled.  ``_RESOLVED`` distinguishes
#: "explicitly disabled" from "environment not read yet" so the first probe
#: in any process (including fresh ``repro.cli work`` drainers) picks up
#: ``REPRO_FAULTS`` lazily, while forked workers inherit the parent's state.
_INJECTOR: FaultInjector | None = None
_RESOLVED = False


def configure(
    plan: str | tuple[FaultSpec, ...] | None = None,
    *,
    seed: int | None = None,
    stall_seconds: float | None = None,
) -> FaultInjector | None:
    """Install (or clear, with an empty plan) the process-wide injector."""
    global _INJECTOR, _RESOLVED
    _RESOLVED = True
    if not plan:
        _INJECTOR = None
        return None
    specs = parse_fault_plan(plan) if isinstance(plan, str) else tuple(plan)
    if not specs:
        _INJECTOR = None
        return None
    _INJECTOR = FaultInjector(
        specs,
        seed=seed if seed is not None else 0,
        stall_seconds=stall_seconds if stall_seconds is not None else 0.75,
    )
    _LOGGER.warning(
        "fault injection armed (seed %d): %s",
        _INJECTOR.seed,
        ", ".join(
            f"{s.site}:{s.mode}@{s.probability:g}"
            + (f"#{s.max_triggers}" if s.max_triggers else "")
            for s in specs
        ),
    )
    return _INJECTOR


def configure_from_env() -> FaultInjector | None:
    """Resolve the injector from ``REPRO_FAULTS`` / seed / stall env vars."""
    seed_text = os.environ.get(FAULTS_SEED_ENV, "").strip()
    stall_text = os.environ.get(STALL_SECONDS_ENV, "").strip()
    return configure(
        os.environ.get(FAULTS_ENV, ""),
        seed=int(seed_text) if seed_text else None,
        stall_seconds=float(stall_text) if stall_text else None,
    )


def _injector() -> FaultInjector | None:
    if not _RESOLVED:
        configure_from_env()
    return _INJECTOR


def enabled() -> bool:
    """True when a fault plan is armed in this process."""
    return _injector() is not None


def fault_point(site: str) -> None:
    """Probe a named control-flow fault site (no-op when disabled)."""
    injector = _injector()
    if injector is not None:
        injector.fire(site)


def torn_write_point(
    site: str, path: str | Path | None, tail_bytes: int | None = None
) -> None:
    """Probe a named write site against the file just written."""
    injector = _injector()
    if injector is not None and path is not None:
        injector.torn_write(site, path, tail_bytes)
