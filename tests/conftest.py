"""Shared fixtures and instance builders for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bids import AuctionRound, Bid


def make_round(
    costs: list[float],
    values: list[float] | None = None,
    *,
    index: int = 0,
    data_sizes: list[int] | None = None,
) -> AuctionRound:
    """Build an auction round from parallel cost/value lists."""
    n = len(costs)
    if values is None:
        values = [1.0] * n
    if data_sizes is None:
        data_sizes = [100] * n
    bids = tuple(
        Bid(client_id=i, cost=float(costs[i]), data_size=int(data_sizes[i]))
        for i in range(n)
    )
    return AuctionRound(
        index=index, bids=bids, values={i: float(values[i]) for i in range(n)}
    )


def random_instance(
    rng: np.random.Generator, n: int, *, value_range=(0.2, 3.0), cost_range=(0.1, 2.0)
) -> tuple[AuctionRound, dict[int, float]]:
    """Random truthful round plus its true-cost map."""
    costs = rng.uniform(*cost_range, size=n).tolist()
    values = rng.uniform(*value_range, size=n).tolist()
    auction_round = make_round(costs, values)
    return auction_round, {i: costs[i] for i in range(n)}


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def simple_round() -> AuctionRound:
    """Five clients with distinct costs and values."""
    return make_round(
        costs=[0.5, 0.8, 1.2, 2.0, 0.3],
        values=[1.0, 1.5, 2.0, 3.0, 0.4],
    )
