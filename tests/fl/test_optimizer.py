"""Tests for repro.fl.optimizer."""

import numpy as np
import pytest

from repro.fl.optimizer import SGD, Adam


def quadratic_grad(params: np.ndarray) -> np.ndarray:
    """Gradient of 0.5 * ||x - 3||^2."""
    return params - 3.0


class TestSGD:
    def test_plain_step(self):
        optimizer = SGD(learning_rate=0.1)
        params = np.array([1.0, 2.0])
        grad = np.array([1.0, -1.0])
        assert optimizer.step(params, grad).tolist() == [0.9, 2.1]

    def test_converges_on_quadratic(self):
        optimizer = SGD(learning_rate=0.2)
        params = np.zeros(3)
        for _ in range(100):
            params = optimizer.step(params, quadratic_grad(params))
        assert np.allclose(params, 3.0, atol=1e-6)

    def test_momentum_accelerates(self):
        def distance_after(momentum: float) -> float:
            optimizer = SGD(learning_rate=0.02, momentum=momentum)
            params = np.zeros(1)
            for _ in range(50):
                params = optimizer.step(params, quadratic_grad(params))
            return abs(float(params[0]) - 3.0)

        assert distance_after(0.9) < distance_after(0.0)

    def test_reset_clears_velocity(self):
        optimizer = SGD(learning_rate=0.1, momentum=0.9)
        params = np.zeros(2)
        params = optimizer.step(params, np.ones(2))
        optimizer.reset()
        fresh_step = optimizer.step(np.zeros(2), np.ones(2))
        assert np.allclose(fresh_step, -0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD(momentum=1.0)
        with pytest.raises(ValueError):
            SGD(momentum=-0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        optimizer = Adam(learning_rate=0.1)
        params = np.zeros(3)
        for _ in range(500):
            params = optimizer.step(params, quadratic_grad(params))
        assert np.allclose(params, 3.0, atol=1e-3)

    def test_first_step_magnitude_close_to_lr(self):
        """Bias correction makes the first step ~learning_rate in each coord."""
        optimizer = Adam(learning_rate=0.01)
        step = optimizer.step(np.zeros(2), np.array([5.0, -0.001]))
        assert np.allclose(np.abs(step), 0.01, rtol=1e-3)

    def test_state_resets(self):
        optimizer = Adam(learning_rate=0.01)
        first = optimizer.step(np.zeros(1), np.ones(1)).copy()
        optimizer.step(np.zeros(1), np.ones(1))
        optimizer.reset()
        assert np.allclose(optimizer.step(np.zeros(1), np.ones(1)), first)

    def test_validation(self):
        with pytest.raises(ValueError):
            Adam(learning_rate=-0.1)
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(beta2=0.0)
        with pytest.raises(ValueError):
            Adam(epsilon=0.0)

    def test_handles_shape_change(self):
        """A new parameter shape re-initialises moments instead of crashing."""
        optimizer = Adam()
        optimizer.step(np.zeros(2), np.ones(2))
        out = optimizer.step(np.zeros(3), np.ones(3))
        assert out.shape == (3,)
