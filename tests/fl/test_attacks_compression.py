"""Tests for repro.fl.attacks and repro.fl.compression."""

import numpy as np
import pytest

from repro.fl.aggregation import coordinate_median, trimmed_mean
from repro.fl.attacks import (
    GaussianNoiseClient,
    LabelFlippingClient,
    UpdateScalingClient,
)
from repro.fl.client import FLClient
from repro.fl.compression import Compressor, qsgd_quantize, top_k_sparsify
from repro.fl.datasets import make_gaussian_mixture, train_test_split
from repro.fl.linear import SoftmaxRegression
from repro.fl.optimizer import SGD
from repro.fl.partition import iid_partition
from repro.fl.server import FLServer
from repro.fl.trainer import FederatedTrainer


def build_client(cls, client_id, dataset, **kwargs):
    return cls(
        client_id,
        dataset,
        SoftmaxRegression(4, 3, seed=client_id + 1),
        lambda: SGD(0.3),
        local_steps=3,
        batch_size=16,
        rng=np.random.default_rng(client_id + 40),
        **kwargs,
    )


class TestAttackClients:
    def test_label_flipping_changes_labels(self, rng):
        dataset = make_gaussian_mixture(60, 4, 3, rng=rng)
        client = build_client(LabelFlippingClient, 0, dataset)
        assert not np.array_equal(client.dataset.labels, dataset.labels)
        # Same label multiset size, still valid classes.
        assert client.dataset.labels.max() < 3

    def test_scaling_client_scales(self, rng):
        dataset = make_gaussian_mixture(60, 4, 3, rng=rng)
        honest = build_client(FLClient, 0, dataset)
        attacker = build_client(UpdateScalingClient, 0, dataset, scale=-5.0)
        honest_update = honest.train(np.zeros(15))
        attacker_update = attacker.train(np.zeros(15))
        assert np.allclose(attacker_update.delta, -5.0 * honest_update.delta)

    def test_noise_client_ignores_data(self, rng):
        dataset = make_gaussian_mixture(60, 4, 3, rng=rng)
        client = build_client(GaussianNoiseClient, 0, dataset, noise_scale=2.0)
        update = client.train(np.zeros(15))
        assert np.std(update.delta) > 0.5

    def test_robust_aggregation_survives_attack(self, rng):
        """One -5x scaler among five clients: median-aggregated training
        still learns; weighted-mean training is wrecked."""
        data_rng = np.random.default_rng(4)
        dataset = make_gaussian_mixture(600, 4, 3, separation=3.0, rng=data_rng)
        train, test = train_test_split(dataset, 0.2, data_rng)
        shards = iid_partition(train.num_samples, 5, data_rng)

        def run(aggregation):
            clients = [
                build_client(FLClient, i, train.subset(shards[i])) for i in range(4)
            ]
            clients.append(
                build_client(
                    UpdateScalingClient, 4, train.subset(shards[4]), scale=-5.0
                )
            )
            server = FLServer(
                SoftmaxRegression(4, 3, seed=0), test, aggregation=aggregation
            )
            trainer = FederatedTrainer(server, clients, eval_every=30)
            return trainer.run(30).final_accuracy()

        from repro.fl.aggregation import weighted_mean

        robust = run(coordinate_median)
        fragile = run(weighted_mean)
        assert robust > 0.8
        assert robust > fragile + 0.1

    def test_trimmed_mean_also_robust(self, rng):
        honest = np.zeros((8, 4))
        byzantine = np.full((2, 4), 1e3)
        stacked = np.concatenate([honest, byzantine])
        out = trimmed_mean(stacked, np.ones(10), trim_fraction=0.2)
        assert np.all(np.abs(out) < 1.0)


class TestTopKSparsify:
    def test_keeps_largest(self):
        vector = np.array([0.1, -5.0, 0.2, 3.0])
        sparse = top_k_sparsify(vector, 2)
        assert sparse.tolist() == [0.0, -5.0, 0.0, 3.0]

    def test_k_at_least_size_is_identity(self):
        vector = np.array([1.0, 2.0])
        assert np.array_equal(top_k_sparsify(vector, 5), vector)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            top_k_sparsify(np.ones(3), 0)

    def test_original_untouched(self):
        vector = np.array([1.0, 2.0, 3.0])
        top_k_sparsify(vector, 1)
        assert vector.tolist() == [1.0, 2.0, 3.0]


class TestQSGD:
    def test_unbiased(self, rng):
        vector = rng.normal(size=50)
        samples = np.stack(
            [qsgd_quantize(vector, 2, np.random.default_rng(i)) for i in range(3000)]
        )
        assert np.allclose(samples.mean(axis=0), vector, atol=0.05)

    def test_zero_vector(self, rng):
        assert np.array_equal(qsgd_quantize(np.zeros(4), 4, rng), np.zeros(4))

    def test_more_bits_less_error(self, rng):
        vector = np.random.default_rng(3).normal(size=200)
        err2 = np.linalg.norm(qsgd_quantize(vector, 1, np.random.default_rng(0)) - vector)
        err8 = np.linalg.norm(qsgd_quantize(vector, 8, np.random.default_rng(0)) - vector)
        assert err8 < err2

    def test_rejects_bad_bits(self, rng):
        with pytest.raises(ValueError):
            qsgd_quantize(np.ones(3), 0, rng)
        with pytest.raises(ValueError):
            qsgd_quantize(np.ones(3), 20, rng)


class TestCompressor:
    def test_pipeline(self, rng):
        compressor = Compressor(top_k=10, bits=4, rng=rng)
        vector = np.random.default_rng(1).normal(size=100)
        out = compressor.compress(vector)
        assert np.count_nonzero(out) <= 10

    def test_compression_ratio_sane(self, rng):
        sparse_only = Compressor(top_k=10)
        assert sparse_only.compression_ratio(1000) > 5.0
        quant_only = Compressor(bits=4, rng=rng)
        assert quant_only.compression_ratio(1000) > 5.0

    def test_requires_some_configuration(self):
        with pytest.raises(ValueError):
            Compressor()

    def test_quantization_requires_rng(self):
        with pytest.raises(ValueError):
            Compressor(bits=4)
