"""Tests for repro.fl.hierarchical."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.aggregation import stack_updates, weighted_mean
from repro.fl.client import ClientUpdate
from repro.fl.hierarchical import HierarchicalAggregator, hierarchical_mean
from repro.simulation.topology import HierarchicalTopology


def make_topology(num_clients=6, num_edges=2, seed=0):
    return HierarchicalTopology.random(
        list(range(num_clients)), num_edges, np.random.default_rng(seed)
    )


def make_updates(num_clients, dim, rng):
    return [
        ClientUpdate(
            client_id=i,
            delta=rng.normal(size=dim),
            num_samples=int(rng.integers(1, 50)),
            final_loss=0.0,
        )
        for i in range(num_clients)
    ]


class TestHierarchicalMean:
    def test_matches_flat_fedavg(self, rng):
        topology = make_topology()
        updates = make_updates(6, 10, rng)
        hier = hierarchical_mean(updates, topology)
        stacked = stack_updates([u.delta for u in updates])
        weights = np.array([u.num_samples for u in updates], dtype=float)
        flat = weighted_mean(stacked, weights)
        assert np.allclose(hier, flat)

    def test_rejects_unknown_client(self, rng):
        topology = make_topology(num_clients=3)
        updates = make_updates(5, 4, rng)
        with pytest.raises(KeyError):
            hierarchical_mean(updates, topology)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            hierarchical_mean([], make_topology())


@settings(max_examples=30, deadline=None)
@given(
    num_clients=st.integers(2, 12),
    num_edges=st.integers(1, 5),
    seed=st.integers(0, 500),
)
def test_hierarchy_equals_flat_property(num_clients, num_edges, seed):
    """Two-tier weighted mean == flat weighted mean, any topology (hypothesis)."""
    rng = np.random.default_rng(seed)
    topology = make_topology(num_clients, num_edges, seed)
    updates = make_updates(num_clients, 6, rng)
    hier = hierarchical_mean(updates, topology)
    stacked = stack_updates([u.delta for u in updates])
    weights = np.array([u.num_samples for u in updates], dtype=float)
    assert np.allclose(hier, weighted_mean(stacked, weights), atol=1e-10)


class TestHierarchicalAggregator:
    def test_no_failures_matches_mean(self, rng):
        topology = make_topology()
        aggregator = HierarchicalAggregator(topology)
        updates = make_updates(6, 8, rng)
        out = aggregator.aggregate(updates)
        assert np.allclose(out, hierarchical_mean(updates, topology))

    def test_traffic_accounting(self, rng):
        topology = make_topology(num_clients=6, num_edges=2)
        aggregator = HierarchicalAggregator(topology)
        updates = make_updates(6, 8, rng)
        aggregator.aggregate(updates)
        assert aggregator.client_uplink_count == 6
        # One backbone upload per edge actually holding clients.
        active_edges = len({topology.edge_of[u.client_id] for u in updates})
        assert aggregator.backbone_uplink_count == active_edges
        assert aggregator.backbone_savings() == pytest.approx(
            1 - active_edges / 6
        )

    def test_total_failure_returns_none(self, rng):
        topology = make_topology()
        aggregator = HierarchicalAggregator(
            topology, edge_failure_prob=1.0, rng=np.random.default_rng(0)
        )
        assert aggregator.aggregate(make_updates(6, 4, rng)) is None
        assert aggregator.failed_edge_rounds > 0

    def test_partial_failure_uses_survivors(self, rng):
        topology = HierarchicalTopology(
            edge_of={0: 0, 1: 1},
            client_latency={0: 0.1, 1: 0.1},
            edge_latency={0: 0.1, 1: 0.1},
        )
        updates = [
            ClientUpdate(client_id=0, delta=np.ones(3), num_samples=1, final_loss=0.0),
            ClientUpdate(client_id=1, delta=-np.ones(3), num_samples=1, final_loss=0.0),
        ]
        # Find a draw where exactly one edge fails.
        for seed in range(50):
            aggregator = HierarchicalAggregator(
                topology, edge_failure_prob=0.5, rng=np.random.default_rng(seed)
            )
            out = aggregator.aggregate(updates)
            if out is not None and not np.allclose(out, 0.0):
                assert np.allclose(np.abs(out), 1.0)
                return
        pytest.fail("never saw a single-edge failure in 50 seeds")

    def test_validation(self):
        with pytest.raises(ValueError):
            HierarchicalAggregator(make_topology(), edge_failure_prob=1.5)
        with pytest.raises(ValueError):
            HierarchicalAggregator(make_topology(), edge_failure_prob=0.5)

    def test_empty_round(self):
        aggregator = HierarchicalAggregator(make_topology())
        assert aggregator.aggregate([]) is None
