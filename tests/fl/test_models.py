"""Tests for the numpy models: softmax regression, MLP, tiny CNN.

The decisive test for any manual-backprop implementation is the finite-
difference gradient check, run here for every model on random data.
"""

import numpy as np
import pytest

from repro.fl.cnn import TinyConvNet
from repro.fl.datasets import make_gaussian_mixture, make_synthetic_images
from repro.fl.linear import SoftmaxRegression
from repro.fl.mlp import MLPClassifier
from repro.fl.model import cross_entropy, one_hot, softmax
from repro.fl.optimizer import SGD


def finite_difference_check(model, features, labels, *, eps=1e-6, tol=1e-6):
    params = model.get_params()
    _, grad = model.loss_and_grad(features, labels)
    # Check a random subset of coordinates to keep runtime bounded.
    rng = np.random.default_rng(0)
    coords = rng.choice(params.size, size=min(60, params.size), replace=False)
    for j in coords:
        perturbed = params.copy()
        perturbed[j] += eps
        model.set_params(perturbed)
        loss_plus = model.loss(features, labels)
        perturbed[j] -= 2 * eps
        model.set_params(perturbed)
        loss_minus = model.loss(features, labels)
        numeric = (loss_plus - loss_minus) / (2 * eps)
        assert abs(grad[j] - numeric) < tol, f"coord {j}: {grad[j]} vs {numeric}"
    model.set_params(params)


class TestHelpers:
    def test_softmax_rows_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0], [-5.0, 0.0, 5.0]])
        probs = softmax(logits)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs > 0).all()

    def test_softmax_stability_with_huge_logits(self):
        probs = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()

    def test_one_hot(self):
        encoded = one_hot(np.array([0, 2]), 3)
        assert encoded.tolist() == [[1, 0, 0], [0, 0, 1]]

    def test_one_hot_range_check(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    def test_cross_entropy_perfect_prediction(self):
        probs = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert cross_entropy(probs, np.array([0, 1])) == pytest.approx(0.0, abs=1e-10)


class TestSoftmaxRegression:
    def test_gradient_matches_finite_differences(self, rng):
        dataset = make_gaussian_mixture(80, 5, 3, rng=rng)
        model = SoftmaxRegression(5, 3, l2=0.01, seed=1)
        finite_difference_check(model, dataset.features, dataset.labels)

    def test_param_round_trip(self):
        model = SoftmaxRegression(4, 3, seed=0)
        params = model.get_params()
        assert params.shape == (4 * 3 + 3,)
        model.set_params(np.arange(params.size, dtype=float))
        assert model.get_params().tolist() == list(range(params.size))

    def test_set_params_rejects_wrong_shape(self):
        model = SoftmaxRegression(4, 3)
        with pytest.raises(ValueError):
            model.set_params(np.zeros(5))

    def test_training_reduces_loss(self, rng):
        dataset = make_gaussian_mixture(300, 4, 3, separation=3.0, rng=rng)
        model = SoftmaxRegression(4, 3, seed=0)
        optimizer = SGD(0.5)
        params = model.get_params()
        initial = model.loss(dataset.features, dataset.labels)
        for _ in range(100):
            model.set_params(params)
            _, grad = model.loss_and_grad(dataset.features, dataset.labels)
            params = optimizer.step(params, grad)
        model.set_params(params)
        assert model.loss(dataset.features, dataset.labels) < initial / 2
        assert model.accuracy(dataset.features, dataset.labels) > 0.9

    def test_rejects_degenerate_dims(self):
        with pytest.raises(ValueError):
            SoftmaxRegression(0, 3)
        with pytest.raises(ValueError):
            SoftmaxRegression(4, 1)

    def test_empty_batch(self):
        model = SoftmaxRegression(4, 3)
        loss, grad = model.loss_and_grad(np.zeros((0, 4)), np.zeros(0, dtype=int))
        assert loss == 0.0
        assert np.all(grad == 0.0)


class TestMLPClassifier:
    @pytest.mark.parametrize("activation", ["relu", "tanh"])
    def test_gradient_matches_finite_differences(self, rng, activation):
        dataset = make_gaussian_mixture(60, 5, 3, rng=rng)
        model = MLPClassifier([5, 12, 3], activation=activation, l2=0.001, seed=2)
        # ReLU kinks can break FD at exactly-zero preactivations; tolerance
        # stays tight because random data rarely hits them.
        finite_difference_check(
            model, dataset.features, dataset.labels, tol=5e-6
        )

    def test_two_hidden_layers(self, rng):
        dataset = make_gaussian_mixture(60, 4, 2, rng=rng)
        model = MLPClassifier([4, 8, 6, 2], seed=3)
        finite_difference_check(model, dataset.features, dataset.labels, tol=5e-6)

    def test_param_count(self):
        model = MLPClassifier([4, 8, 3])
        assert model.num_params == (4 * 8 + 8) + (8 * 3 + 3)

    def test_requires_hidden_layer(self):
        with pytest.raises(ValueError):
            MLPClassifier([4, 3])

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            MLPClassifier([4, 8, 3], activation="swish")

    def test_learns_nonconvex_task(self, rng):
        from repro.fl.datasets import make_two_spirals

        dataset = make_two_spirals(400, noise=0.1, rng=rng)
        model = MLPClassifier([2, 32, 16, 2], seed=1)
        optimizer = SGD(0.05, momentum=0.9)
        params = model.get_params()
        for _ in range(800):
            idx = rng.choice(dataset.num_samples, 64, replace=False)
            model.set_params(params)
            _, grad = model.loss_and_grad(dataset.features[idx], dataset.labels[idx])
            params = optimizer.step(params, grad)
        model.set_params(params)
        assert model.accuracy(dataset.features, dataset.labels) > 0.8


class TestTinyConvNet:
    def test_gradient_matches_finite_differences(self, rng):
        dataset = make_synthetic_images(24, num_classes=3, shape=(8, 8), rng=rng)
        model = TinyConvNet((8, 8), 3, num_filters=2, l2=0.001, seed=4)
        finite_difference_check(
            model, dataset.features[:12], dataset.labels[:12], tol=5e-6
        )

    def test_accepts_flat_and_image_input(self, rng):
        dataset = make_synthetic_images(10, num_classes=2, shape=(8, 8), rng=rng)
        model = TinyConvNet((8, 8), 2, num_filters=2)
        flat = model.predict_proba(dataset.features)
        imaged = model.predict_proba(dataset.features.reshape(-1, 8, 8))
        assert np.allclose(flat, imaged)

    def test_rejects_odd_pool_geometry(self):
        with pytest.raises(ValueError, match="even"):
            TinyConvNet((8, 9), 3)  # 9-3+1=7 odd

    def test_rejects_too_small_images(self):
        with pytest.raises(ValueError):
            TinyConvNet((3, 3), 2)

    def test_param_round_trip(self):
        model = TinyConvNet((8, 8), 3, num_filters=2, seed=0)
        params = model.get_params()
        model.set_params(params * 2)
        assert np.allclose(model.get_params(), params * 2)

    def test_learns_image_task(self, rng):
        dataset = make_synthetic_images(600, num_classes=4, shape=(8, 8), rng=rng)
        model = TinyConvNet((8, 8), 4, num_filters=6, seed=1)
        optimizer = SGD(0.3, momentum=0.9)
        params = model.get_params()
        for _ in range(300):
            idx = rng.choice(dataset.num_samples, 32, replace=False)
            model.set_params(params)
            _, grad = model.loss_and_grad(dataset.features[idx], dataset.labels[idx])
            params = optimizer.step(params, grad)
        model.set_params(params)
        assert model.accuracy(dataset.features, dataset.labels) > 0.8
