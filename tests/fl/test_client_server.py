"""Tests for repro.fl.client and repro.fl.server."""

import numpy as np
import pytest

from repro.fl.aggregation import coordinate_median
from repro.fl.client import FLClient
from repro.fl.datasets import make_gaussian_mixture, train_test_split
from repro.fl.linear import SoftmaxRegression
from repro.fl.optimizer import SGD
from repro.fl.server import FLServer


def make_client(rng, client_id=0, n=60, local_steps=3, batch_size=16):
    dataset = make_gaussian_mixture(n, 4, 3, rng=rng)
    return FLClient(
        client_id,
        dataset,
        SoftmaxRegression(4, 3, seed=client_id),
        lambda: SGD(0.3),
        local_steps=local_steps,
        batch_size=batch_size,
        rng=np.random.default_rng(client_id + 10),
    )


class TestFLClient:
    def test_update_shape_and_bookkeeping(self, rng):
        client = make_client(rng)
        global_params = np.zeros(4 * 3 + 3)
        update = client.train(global_params)
        assert update.delta.shape == global_params.shape
        assert update.num_samples == 60
        assert update.client_id == 0
        assert np.isfinite(update.final_loss)

    def test_delta_relative_to_global(self, rng):
        """Training from params p yields delta d with local params = p + d."""
        client = make_client(rng)
        global_params = np.full(15, 0.1)
        update = client.train(global_params)
        assert np.allclose(client.model.get_params(), global_params + update.delta)

    def test_training_moves_parameters(self, rng):
        client = make_client(rng)
        update = client.train(np.zeros(15))
        assert np.linalg.norm(update.delta) > 0

    def test_batch_size_capped_at_shard(self, rng):
        client = make_client(rng, n=10, batch_size=100)
        assert client.batch_size == 10

    def test_validation(self, rng):
        dataset = make_gaussian_mixture(10, 4, 3, rng=rng)
        model = SoftmaxRegression(4, 3)
        with pytest.raises(ValueError):
            FLClient(0, dataset, model, lambda: SGD(0.1), local_steps=0, rng=rng)
        with pytest.raises(ValueError):
            FLClient(0, dataset, model, lambda: SGD(0.1), batch_size=0, rng=rng)

    def test_evaluate(self, rng):
        client = make_client(rng)
        loss, accuracy = client.evaluate(np.zeros(15))
        assert loss > 0
        assert 0.0 <= accuracy <= 1.0

    def test_deterministic_given_same_rng_state(self):
        def one_update(seed):
            rng = np.random.default_rng(3)
            client = make_client(rng, client_id=1)
            return client.train(np.zeros(15)).delta

        assert np.array_equal(one_update(0), one_update(0))


class TestFLServer:
    def test_apply_updates_weighted(self, rng):
        dataset = make_gaussian_mixture(40, 4, 3, rng=rng)
        train, test = train_test_split(dataset, 0.25, rng)
        server = FLServer(SoftmaxRegression(4, 3, seed=0), test)
        start = server.global_params()

        from repro.fl.client import ClientUpdate

        updates = [
            ClientUpdate(client_id=0, delta=np.ones(15), num_samples=10, final_loss=0.1),
            ClientUpdate(client_id=1, delta=np.zeros(15), num_samples=30, final_loss=0.1),
        ]
        new_params = server.apply_updates(updates)
        assert np.allclose(new_params - start, 0.25)  # 10/(10+30) weight on ones

    def test_no_updates_is_noop(self, rng):
        dataset = make_gaussian_mixture(40, 4, 3, rng=rng)
        _, test = train_test_split(dataset, 0.25, rng)
        server = FLServer(SoftmaxRegression(4, 3, seed=0), test)
        before = server.global_params()
        after = server.apply_updates([])
        assert np.array_equal(before, after)

    def test_custom_aggregation_rule(self, rng):
        dataset = make_gaussian_mixture(40, 4, 3, rng=rng)
        _, test = train_test_split(dataset, 0.25, rng)
        server = FLServer(
            SoftmaxRegression(4, 3, seed=0), test, aggregation=coordinate_median
        )
        from repro.fl.client import ClientUpdate

        start = server.global_params()
        deltas = [np.full(15, v) for v in (0.0, 1.0, 100.0)]
        updates = [
            ClientUpdate(client_id=i, delta=d, num_samples=1, final_loss=0.0)
            for i, d in enumerate(deltas)
        ]
        new_params = server.apply_updates(updates)
        assert np.allclose(new_params - start, 1.0)  # median

    def test_reset_restores_initial(self, rng):
        dataset = make_gaussian_mixture(40, 4, 3, rng=rng)
        _, test = train_test_split(dataset, 0.25, rng)
        server = FLServer(SoftmaxRegression(4, 3, seed=0), test)
        initial = server.global_params()
        server.model.set_params(initial + 1.0)
        server.reset()
        assert np.array_equal(server.global_params(), initial)

    def test_rejects_bad_server_lr(self, rng):
        dataset = make_gaussian_mixture(20, 4, 3, rng=rng)
        _, test = train_test_split(dataset, 0.25, rng)
        with pytest.raises(ValueError):
            FLServer(SoftmaxRegression(4, 3), test, server_learning_rate=0.0)
