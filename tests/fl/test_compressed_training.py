"""Integration: FL training with compressed uploads."""

import numpy as np
import pytest

from repro.fl.client import FLClient
from repro.fl.compression import Compressor
from repro.fl.datasets import make_gaussian_mixture, train_test_split
from repro.fl.linear import SoftmaxRegression
from repro.fl.optimizer import SGD
from repro.fl.partition import iid_partition
from repro.fl.server import FLServer
from repro.fl.trainer import FederatedTrainer


def run_federation(compressor_factory, rounds=40):
    rng = np.random.default_rng(11)
    dataset = make_gaussian_mixture(600, 4, 3, separation=3.0, rng=rng)
    train, test = train_test_split(dataset, 0.2, rng)
    shards = iid_partition(train.num_samples, 5, rng)
    clients = [
        FLClient(
            i,
            train.subset(shards[i]),
            SoftmaxRegression(4, 3, seed=i + 1),
            lambda: SGD(0.3),
            local_steps=3,
            batch_size=16,
            rng=np.random.default_rng(i + 60),
            compressor=compressor_factory(i),
        )
        for i in range(5)
    ]
    server = FLServer(SoftmaxRegression(4, 3, seed=0), test)
    trainer = FederatedTrainer(server, clients, eval_every=rounds)
    return trainer.run(rounds).final_accuracy()


class TestCompressedTraining:
    def test_sparsified_training_still_learns(self):
        accuracy = run_federation(lambda i: Compressor(top_k=5))  # of 15 params
        assert accuracy > 0.8

    def test_quantized_training_still_learns(self):
        accuracy = run_federation(
            lambda i: Compressor(bits=4, rng=np.random.default_rng(100 + i))
        )
        assert accuracy > 0.8

    def test_compression_does_not_beat_uncompressed(self):
        reference = run_federation(lambda i: None)
        sparsified = run_federation(lambda i: Compressor(top_k=5))
        assert reference > 0.8
        assert reference >= sparsified - 0.05  # lossy uploads can't help much

    def test_compressed_update_is_sparse(self):
        rng = np.random.default_rng(1)
        dataset = make_gaussian_mixture(100, 4, 3, rng=rng)
        client = FLClient(
            0,
            dataset,
            SoftmaxRegression(4, 3, seed=1),
            lambda: SGD(0.3),
            local_steps=3,
            batch_size=16,
            rng=np.random.default_rng(2),
            compressor=Compressor(top_k=4),
        )
        update = client.train(np.zeros(15))
        assert np.count_nonzero(update.delta) <= 4
