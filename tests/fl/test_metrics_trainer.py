"""Tests for repro.fl.metrics and repro.fl.trainer."""

import numpy as np
import pytest

from repro.fl.client import FLClient
from repro.fl.datasets import make_gaussian_mixture, train_test_split
from repro.fl.linear import SoftmaxRegression
from repro.fl.metrics import RoundMetrics, TrainingHistory
from repro.fl.optimizer import SGD
from repro.fl.partition import iid_partition
from repro.fl.server import FLServer
from repro.fl.trainer import (
    FederatedTrainer,
    all_clients_policy,
    uniform_sampling_policy,
)


class TestTrainingHistory:
    def test_records_in_order(self):
        history = TrainingHistory()
        history.record(RoundMetrics(round_index=0, participants=(0,)))
        history.record(RoundMetrics(round_index=1, participants=()))
        assert len(history) == 2
        with pytest.raises(ValueError):
            history.record(RoundMetrics(round_index=1, participants=()))

    def test_series_and_extras(self):
        history = TrainingHistory()
        history.record(
            RoundMetrics(
                round_index=0, participants=(), test_accuracy=0.5, extras={"q": 1.0}
            )
        )
        assert history.series("test_accuracy") == [0.5]
        assert history.series("q") == [1.0]
        assert np.isnan(history.series("missing")[0])

    def test_evaluated_series_drops_nan(self):
        history = TrainingHistory()
        history.record(RoundMetrics(round_index=0, participants=(), test_accuracy=0.3))
        history.record(RoundMetrics(round_index=1, participants=()))
        history.record(RoundMetrics(round_index=2, participants=(), test_accuracy=0.6))
        xs, ys = history.evaluated_series("test_accuracy")
        assert xs == [0, 2]
        assert ys == [0.3, 0.6]

    def test_rounds_to_accuracy(self):
        history = TrainingHistory()
        for i, acc in enumerate([0.2, 0.45, 0.8]):
            history.record(
                RoundMetrics(round_index=i, participants=(), test_accuracy=acc)
            )
        assert history.rounds_to_accuracy(0.4) == 1
        assert history.rounds_to_accuracy(0.9) is None
        assert history.best_accuracy() == 0.8
        assert history.final_accuracy() == 0.8

    def test_cumulative_payment_and_counts(self):
        history = TrainingHistory()
        history.record(RoundMetrics(round_index=0, participants=(1,), total_payment=2.0))
        history.record(RoundMetrics(round_index=1, participants=(1, 2), total_payment=3.0))
        assert history.cumulative_payment() == [2.0, 5.0]
        assert history.participation_counts() == {1: 2, 2: 1}


def build_federation(rng, num_clients=5):
    dataset = make_gaussian_mixture(300, 4, 3, separation=3.0, rng=rng)
    train, test = train_test_split(dataset, 0.2, rng)
    shards = iid_partition(train.num_samples, num_clients, rng)
    clients = [
        FLClient(
            i,
            train.subset(shard),
            SoftmaxRegression(4, 3, seed=i + 1),
            lambda: SGD(0.3),
            local_steps=3,
            batch_size=16,
            rng=np.random.default_rng(i + 50),
        )
        for i, shard in enumerate(shards)
    ]
    server = FLServer(SoftmaxRegression(4, 3, seed=0), test)
    return server, clients


class TestFederatedTrainer:
    def test_learning_happens(self, rng):
        server, clients = build_federation(rng)
        trainer = FederatedTrainer(server, clients)
        history = trainer.run(30)
        assert history.final_accuracy() > 0.8

    def test_eval_every_skips_evaluations(self, rng):
        server, clients = build_federation(rng)
        trainer = FederatedTrainer(server, clients, eval_every=10)
        history = trainer.run(20)
        xs, _ = history.evaluated_series("test_accuracy")
        assert xs == [0, 10, 19]  # multiples of 10 plus the final round

    def test_uniform_sampling_policy(self, rng):
        server, clients = build_federation(rng)
        policy = uniform_sampling_policy(0.4, np.random.default_rng(0))
        trainer = FederatedTrainer(server, clients, policy)
        history = trainer.run(10)
        for metrics in history.rounds:
            assert len(metrics.participants) == 2  # 40% of 5

    def test_policy_selecting_unknown_client_raises(self, rng):
        server, clients = build_federation(rng)
        trainer = FederatedTrainer(
            server, clients, lambda t, ids: ([999], {})
        )
        with pytest.raises(KeyError):
            trainer.run_round(0)

    def test_duplicate_client_ids_rejected(self, rng):
        server, clients = build_federation(rng)
        clients[1] = clients[0]
        with pytest.raises(ValueError):
            FederatedTrainer(server, clients)

    def test_all_clients_policy(self):
        selected, payments = all_clients_policy(0, [3, 1, 2])
        assert selected == [3, 1, 2]
        assert payments == {}

    def test_bad_sampling_fraction(self):
        with pytest.raises(ValueError):
            uniform_sampling_policy(0.0, np.random.default_rng(0))
