"""Equivalence suite for the vectorised local-training engine.

Pins :class:`~repro.fl.batch.VectorizedLocalSolver` to the scalar
:class:`~repro.fl.batch.SequentialLocalSolver` — per-client deltas and
final losses must agree on both stackable model families, every stackable
optimizer configuration, and ragged shard/minibatch shapes — plus the
fallback behaviour for clients the stack cannot absorb.
"""

import numpy as np
import pytest

from repro.fl.batch import (
    ClientBatch,
    SequentialLocalSolver,
    UpdateBatch,
    VectorizedLocalSolver,
)
from repro.fl.client import FLClient
from repro.fl.cnn import TinyConvNet
from repro.fl.datasets import make_gaussian_mixture, make_synthetic_images
from repro.fl.fedprox import FedProxClient
from repro.fl.linear import SoftmaxRegression, stacked_softmax_kernel
from repro.fl.mlp import MLPClassifier, stacked_mlp_kernel
from repro.fl.optimizer import SGD, Adam, stack_optimizers
from repro.fl.partition import dirichlet_partition
from repro.fl.server import FLServer
from repro.fl.trainer import FederatedTrainer

TOL = dict(rtol=1e-9, atol=1e-12)


def make_model(kind: str, seed: int, l2: float = 0.0):
    if kind == "softmax":
        return SoftmaxRegression(6, 4, l2=l2, seed=seed)
    if kind == "mlp":
        return MLPClassifier([6, 8, 4], l2=l2, seed=seed)
    raise ValueError(kind)


def build_clients(
    kind: str,
    optimizer_factory_for,
    *,
    num_clients: int = 10,
    seed: int = 0,
    local_steps: int = 4,
    batch_size: int = 8,
    l2: float = 0.0,
    client_cls=FLClient,
    **client_kwargs,
):
    """A fresh federation; identical seeds rebuild identical clients."""
    rng = np.random.default_rng(seed)
    data = make_gaussian_mixture(60 * num_clients, 6, 4, rng=rng)
    shards = dirichlet_partition(data.labels, num_clients, 0.5, rng)
    return [
        client_cls(
            i,
            data.subset(shard),
            make_model(kind, i + 1, l2=l2 * (i + 1)),
            optimizer_factory_for(i),
            local_steps=local_steps,
            batch_size=batch_size,
            rng=np.random.default_rng(1000 + i),
            **client_kwargs,
        )
        for i, shard in enumerate(shards)
    ]


def assert_batches_equal(a: UpdateBatch, b: UpdateBatch):
    assert a.client_ids == b.client_ids
    assert np.array_equal(a.num_samples, b.num_samples)
    np.testing.assert_allclose(a.deltas, b.deltas, **TOL)
    np.testing.assert_allclose(a.final_losses, b.final_losses, **TOL)


class TestVectorizedEquivalence:
    @pytest.mark.parametrize("kind", ["softmax", "mlp"])
    @pytest.mark.parametrize(
        "optimizer_factory_for",
        [
            lambda i: (lambda: SGD(0.1 + 0.01 * i)),
            lambda i: (lambda: SGD(0.1, momentum=0.5 + 0.04 * i)),
            lambda i: (lambda: Adam(0.01 + 0.001 * i)),
        ],
        ids=["sgd", "sgd-momentum", "adam"],
    )
    def test_batched_deltas_match_scalar(self, kind, optimizer_factory_for):
        global_params = make_model(kind, 0).get_params()
        sequential = SequentialLocalSolver().train(
            build_clients(kind, optimizer_factory_for, l2=0.01), global_params
        )
        vectorized = VectorizedLocalSolver().train(
            build_clients(kind, optimizer_factory_for, l2=0.01), global_params
        )
        assert_batches_equal(sequential, vectorized)

    @pytest.mark.parametrize("kind", ["softmax", "mlp"])
    def test_multi_round_equivalence_with_cache_reuse(self, kind):
        """Repeated rounds through one solver (stack cache warm) stay equal."""
        factory = lambda i: (lambda: SGD(0.2))  # noqa: E731
        seq_clients = build_clients(kind, factory)
        vec_clients = build_clients(kind, factory)
        solver = VectorizedLocalSolver()
        params = make_model(kind, 0).get_params()
        for _ in range(3):
            sequential = SequentialLocalSolver().train(seq_clients, params)
            vectorized = solver.train(vec_clients, params)
            assert_batches_equal(sequential, vectorized)
            params = params + vectorized.deltas.mean(axis=0)

    def test_ragged_shards_and_capped_batches(self):
        """Clients whose batch_size caps at tiny shard sizes (mask path)."""
        rng = np.random.default_rng(3)
        data = make_gaussian_mixture(200, 6, 4, rng=rng)

        def build():
            clients = []
            for i, size in enumerate([3, 9, 17, 40, 5]):
                shard = rng.integers(0, data.num_samples, size=size)
                clients.append(
                    FLClient(
                        i,
                        data.subset(shard),
                        SoftmaxRegression(6, 4, seed=i + 1),
                        lambda: SGD(0.2),
                        local_steps=3,
                        batch_size=16,
                        rng=np.random.default_rng(55 + i),
                    )
                )
            return clients

        rng_state = rng.bit_generator.state
        seq_clients = build()
        rng.bit_generator.state = rng_state
        vec_clients = build()
        params = SoftmaxRegression(6, 4, seed=0).get_params()
        assert_batches_equal(
            SequentialLocalSolver().train(seq_clients, params),
            VectorizedLocalSolver().train(vec_clients, params),
        )

    def test_cnn_federation_matches_scalar(self):
        """CNN federations stack through the conv kernels and match scalar."""
        rng = np.random.default_rng(5)
        images = make_synthetic_images(120, num_classes=4, shape=(4, 4), rng=rng)

        def build():
            return [
                FLClient(
                    i,
                    images.subset(np.arange(i * 30, (i + 1) * 30)),
                    TinyConvNet((4, 4), 4, num_filters=2, seed=i + 1),
                    lambda: SGD(0.1),
                    local_steps=2,
                    batch_size=8,
                    rng=np.random.default_rng(99 + i),
                )
                for i in range(4)
            ]

        params = TinyConvNet((4, 4), 4, num_filters=2, seed=0).get_params()
        reference = SequentialLocalSolver().train(build(), params)
        assert_batches_equal(
            reference, VectorizedLocalSolver().train(build(), params)
        )
        # Forced-scalar variant (group below min_group): the fallback path
        # must agree too.
        assert_batches_equal(
            reference,
            VectorizedLocalSolver(min_group=100).train(build(), params),
        )

    @pytest.mark.parametrize("kind", ["softmax", "mlp"])
    def test_fedprox_batched_matches_scalar(self, kind):
        """FedProx stacks: its proximal pull is one elementwise row op.

        Pins the batched engine to the scalar reference for a pure
        FedProx federation with *heterogeneous* per-client mu (the pull
        is carried as a coefficient vector, like L2).
        """

        def build():
            return build_clients(
                kind,
                lambda i: (lambda: SGD(0.1 + 0.01 * i)),
                client_cls=FedProxClient,
                proximal_mu=0.25,
            )

        assert all(client.supports_stacking for client in build())
        for i, client in enumerate(build()):
            assert client.proximal_mu == 0.25
        params = make_model(kind, 0).get_params()
        assert_batches_equal(
            SequentialLocalSolver().train(build(), params),
            VectorizedLocalSolver().train(build(), params),
        )

    def test_fedprox_mixes_with_plain_fedavg_in_one_stack(self):
        """Proximal and plain clients share one stacked group (mu=0 rows)."""

        def build():
            clients = build_clients(
                "softmax", lambda i: (lambda: SGD(0.1)), num_clients=6
            )
            prox = build_clients(
                "softmax",
                lambda i: (lambda: SGD(0.1)),
                num_clients=6,
                seed=1,
                client_cls=FedProxClient,
                proximal_mu=0.2,
            )
            for i, client in enumerate(prox):
                client.client_id = 100 + i
            return clients + prox

        clients = build()
        assert all(client.supports_stacking for client in clients)
        params = make_model("softmax", 0).get_params()
        sequential = SequentialLocalSolver().train(build(), params)
        vectorized = VectorizedLocalSolver().train(build(), params)
        assert_batches_equal(sequential, vectorized)
        # The proximal pull must actually bite: FedProx deltas differ from
        # what the same shards produce under plain FedAvg.
        plain = build()
        for client in plain[6:]:
            client.proximal_mu = 0.0
        unproxed = SequentialLocalSolver().train(plain, params)
        assert not np.allclose(vectorized.deltas[6:], unproxed.deltas[6:])

    def test_min_group_forces_scalar(self):
        factory = lambda i: (lambda: SGD(0.2))  # noqa: E731
        params = make_model("softmax", 0).get_params()
        reference = SequentialLocalSolver().train(
            build_clients("softmax", factory), params
        )
        forced = VectorizedLocalSolver(min_group=100).train(
            build_clients("softmax", factory), params
        )
        assert_batches_equal(reference, forced)

    def test_sync_models_writes_final_local_params(self):
        factory = lambda i: (lambda: SGD(0.2))  # noqa: E731
        params = make_model("softmax", 0).get_params()
        seq_clients = build_clients("softmax", factory)
        vec_clients = build_clients("softmax", factory)
        SequentialLocalSolver().train(seq_clients, params)
        VectorizedLocalSolver(sync_models=True).train(vec_clients, params)
        for seq_client, vec_client in zip(seq_clients, vec_clients):
            np.testing.assert_allclose(
                seq_client.model.get_params(), vec_client.model.get_params(), **TOL
            )

    def test_empty_selection(self):
        params = make_model("softmax", 0).get_params()
        batch = VectorizedLocalSolver().train([], params)
        assert len(batch) == 0
        assert batch.deltas.shape == (0, params.size)


class TestTrainerIntegration:
    def test_trainer_histories_match_across_solvers(self):
        rng = np.random.default_rng(11)
        data = make_gaussian_mixture(400, 6, 4, rng=rng)
        test = data.subset(np.arange(80))

        def build_trainer(solver):
            clients = [
                FLClient(
                    i,
                    data.subset(np.arange(80 + i * 40, 120 + i * 40)),
                    SoftmaxRegression(6, 4, seed=i + 1),
                    lambda: SGD(0.3),
                    local_steps=3,
                    batch_size=16,
                    rng=np.random.default_rng(7 + i),
                )
                for i in range(8)
            ]
            server = FLServer(SoftmaxRegression(6, 4, seed=0), test)
            return FederatedTrainer(server, clients, local_solver=solver)

        sequential = build_trainer(SequentialLocalSolver()).run(6)
        vectorized = build_trainer(VectorizedLocalSolver()).run(6)
        for seq_round, vec_round in zip(sequential.rounds, vectorized.rounds):
            assert seq_round.participants == vec_round.participants
            np.testing.assert_allclose(
                seq_round.test_accuracy, vec_round.test_accuracy, **TOL
            )
            np.testing.assert_allclose(
                seq_round.test_loss, vec_round.test_loss, **TOL
            )
            np.testing.assert_allclose(
                seq_round.mean_local_loss, vec_round.mean_local_loss, **TOL
            )


class TestBuildingBlocks:
    def test_client_batch_requires_uniform_local_steps(self):
        factory = lambda i: (lambda: SGD(0.2))  # noqa: E731
        clients = build_clients("softmax", factory, num_clients=3)
        clients[1].local_steps = 7
        with pytest.raises(ValueError, match="uniform local_steps"):
            ClientBatch(clients)

    def test_client_batch_rejects_empty(self):
        with pytest.raises(ValueError):
            ClientBatch([])

    def test_update_batch_round_trip(self):
        factory = lambda i: (lambda: SGD(0.2))  # noqa: E731
        params = make_model("softmax", 0).get_params()
        batch = SequentialLocalSolver().train(
            build_clients("softmax", factory, num_clients=4), params
        )
        rebuilt = UpdateBatch.from_updates(batch.updates(), num_params=params.size)
        assert_batches_equal(batch, rebuilt)

    def test_update_batch_shape_validation(self):
        with pytest.raises(ValueError, match="disagree"):
            UpdateBatch(
                client_ids=(0, 1),
                deltas=np.zeros((3, 4)),
                num_samples=np.array([1, 2]),
                final_losses=np.zeros(2),
            )

    def test_stack_optimizers_families(self):
        assert stack_optimizers([SGD(0.1), SGD(0.2, momentum=0.3)]) is not None
        assert stack_optimizers([Adam(0.1), Adam(0.2)]) is not None
        assert stack_optimizers([SGD(0.1), Adam(0.1)]) is None
        assert stack_optimizers([]) is None

    def test_stacked_optimizer_rows_match_scalar(self):
        rng = np.random.default_rng(0)
        params = rng.normal(size=(3, 12))
        scalars = [SGD(0.1), SGD(0.2), SGD(0.3)]
        stacked = stack_optimizers([SGD(0.1), SGD(0.2), SGD(0.3)])
        current = params.copy()
        scalar_current = [params[i].copy() for i in range(3)]
        for _ in range(4):
            grads = rng.normal(size=(3, 12))
            current = stacked.step(current, grads)
            for i, optimizer in enumerate(scalars):
                scalar_current[i] = optimizer.step(scalar_current[i], grads[i])
        for i in range(3):
            np.testing.assert_array_equal(current[i], scalar_current[i])

    def test_kernel_resolution_rules(self):
        softmax_models = [SoftmaxRegression(4, 3, seed=i) for i in range(3)]
        assert stacked_softmax_kernel(softmax_models) is not None
        assert stacked_softmax_kernel(
            softmax_models + [SoftmaxRegression(5, 3, seed=9)]
        ) is None
        assert stacked_softmax_kernel([]) is None
        mlp_models = [MLPClassifier([4, 6, 3], seed=i) for i in range(3)]
        assert stacked_mlp_kernel(mlp_models) is not None
        assert stacked_mlp_kernel(
            mlp_models + [MLPClassifier([4, 5, 3], seed=9)]
        ) is None
        assert stacked_mlp_kernel(
            [MLPClassifier([4, 6, 3], activation="tanh", seed=1)] + mlp_models
        ) is None
        # Cross-family stacks never resolve.
        assert stacked_softmax_kernel(mlp_models) is None
        assert stacked_mlp_kernel(softmax_models) is None
