"""Tests for repro.fl.evaluation."""

import numpy as np
import pytest

from repro.fl.evaluation import (
    confusion_matrix,
    evaluate_model,
    macro_accuracy,
    per_class_accuracy,
    worst_class_accuracy,
)


class TestConfusionMatrix:
    def test_counts(self):
        predictions = np.array([0, 1, 1, 2])
        labels = np.array([0, 1, 2, 2])
        matrix = confusion_matrix(predictions, labels, 3)
        assert matrix.tolist() == [[1, 0, 0], [0, 1, 0], [0, 1, 1]]

    def test_total_preserved(self, rng):
        predictions = rng.integers(0, 4, 100)
        labels = rng.integers(0, 4, 100)
        assert confusion_matrix(predictions, labels, 4).sum() == 100

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.zeros(3, dtype=int), np.zeros(4, dtype=int), 2)


class TestPerClassMetrics:
    def test_per_class_accuracy(self):
        matrix = np.array([[8, 2], [5, 5]])
        recalls = per_class_accuracy(matrix)
        assert recalls[0] == pytest.approx(0.8)
        assert recalls[1] == pytest.approx(0.5)

    def test_absent_class_is_nan(self):
        matrix = np.array([[3, 0], [0, 0]])
        recalls = per_class_accuracy(matrix)
        assert recalls[0] == 1.0
        assert np.isnan(recalls[1])

    def test_worst_class(self):
        matrix = np.array([[9, 1], [4, 6]])
        assert worst_class_accuracy(matrix) == pytest.approx(0.6)

    def test_macro_vs_micro_divergence(self):
        """Macro accuracy exposes a collapsed minority class that micro hides."""
        # 98 samples of class 0 all right; 2 of class 1 all wrong.
        matrix = np.array([[98, 0], [2, 0]])
        micro = np.diag(matrix).sum() / matrix.sum()
        assert micro == pytest.approx(0.98)
        assert macro_accuracy(matrix) == pytest.approx(0.5)  # (1.0 + 0.0) / 2
        assert worst_class_accuracy(matrix) == 0.0

    def test_empty_matrix(self):
        matrix = np.zeros((3, 3))
        assert np.isnan(worst_class_accuracy(matrix))
        assert np.isnan(macro_accuracy(matrix))


class TestEvaluateModel:
    def test_summary_keys_and_consistency(self, rng):
        from repro.fl.datasets import make_gaussian_mixture
        from repro.fl.linear import SoftmaxRegression
        from repro.fl.optimizer import SGD

        dataset = make_gaussian_mixture(300, 4, 3, separation=3.0, rng=rng)
        model = SoftmaxRegression(4, 3, seed=0)
        optimizer = SGD(0.5)
        params = model.get_params()
        for _ in range(150):
            model.set_params(params)
            _, grad = model.loss_and_grad(dataset.features, dataset.labels)
            params = optimizer.step(params, grad)
        model.set_params(params)

        summary = evaluate_model(model, dataset)
        assert set(summary) == {
            "accuracy", "macro_accuracy", "worst_class_accuracy", "loss",
        }
        assert summary["worst_class_accuracy"] <= summary["macro_accuracy"] + 1e-12
        assert summary["accuracy"] > 0.85
        assert summary["loss"] > 0.0
