"""Tests for repro.fl.datasets."""

import numpy as np
import pytest

from repro.fl.datasets import (
    Dataset,
    make_gaussian_mixture,
    make_synthetic_images,
    make_two_spirals,
    train_test_split,
)


class TestDataset:
    def test_validation(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3,)), np.zeros(3, dtype=int), 2)  # 1-D features
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(4, dtype=int), 2)  # length mismatch
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.array([0, 1, 5]), 2)  # label range
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 4)), np.zeros(3, dtype=int), 2, image_shape=(2, 3))

    def test_subset(self):
        dataset = Dataset(np.arange(12).reshape(6, 2).astype(float), np.array([0, 1] * 3), 2)
        sub = dataset.subset(np.array([0, 5]))
        assert sub.num_samples == 2
        assert sub.features[1].tolist() == [10.0, 11.0]

    def test_subset_is_a_copy(self):
        dataset = Dataset(np.zeros((3, 2)), np.zeros(3, dtype=int), 2)
        sub = dataset.subset(np.array([0]))
        sub.features[0, 0] = 99.0
        assert dataset.features[0, 0] == 0.0

    def test_label_histogram(self):
        dataset = Dataset(np.zeros((4, 1)), np.array([0, 0, 2, 1]), 3)
        assert dataset.label_histogram().tolist() == [2, 1, 1]


class TestGaussianMixture:
    def test_shapes_and_balance(self, rng):
        dataset = make_gaussian_mixture(100, 5, 4, rng=rng)
        assert dataset.features.shape == (100, 5)
        histogram = dataset.label_histogram()
        assert histogram.sum() == 100
        assert histogram.min() >= 100 // 4

    def test_separation_controls_difficulty(self, rng):
        from repro.fl.linear import SoftmaxRegression
        from repro.fl.optimizer import SGD

        def trained_accuracy(separation: float) -> float:
            local_rng = np.random.default_rng(0)
            dataset = make_gaussian_mixture(
                400, 4, 3, separation=separation, rng=local_rng
            )
            model = SoftmaxRegression(4, 3, seed=0)
            optimizer = SGD(0.5)
            params = model.get_params()
            for _ in range(150):
                model.set_params(params)
                _, grad = model.loss_and_grad(dataset.features, dataset.labels)
                params = optimizer.step(params, grad)
            model.set_params(params)
            return model.accuracy(dataset.features, dataset.labels)

        assert trained_accuracy(5.0) > trained_accuracy(0.5)

    def test_needs_one_sample_per_class(self, rng):
        with pytest.raises(ValueError):
            make_gaussian_mixture(2, 3, 4, rng=rng)


class TestSyntheticImages:
    def test_shapes(self, rng):
        dataset = make_synthetic_images(50, num_classes=10, shape=(8, 8), rng=rng)
        assert dataset.features.shape == (50, 64)
        assert dataset.image_shape == (8, 8)
        assert dataset.num_classes == 10

    def test_classes_are_distinguishable(self, rng):
        """A nearest-class-mean classifier should beat chance comfortably."""
        dataset = make_synthetic_images(500, num_classes=5, shape=(8, 8), rng=rng)
        means = np.stack(
            [
                dataset.features[dataset.labels == c].mean(axis=0)
                for c in range(5)
            ]
        )
        distances = ((dataset.features[:, None, :] - means[None]) ** 2).sum(axis=2)
        predictions = distances.argmin(axis=1)
        assert (predictions == dataset.labels).mean() > 0.6

    def test_deterministic_given_rng(self):
        a = make_synthetic_images(20, rng=np.random.default_rng(5))
        b = make_synthetic_images(20, rng=np.random.default_rng(5))
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)


class TestTwoSpirals:
    def test_two_balanced_classes(self, rng):
        dataset = make_two_spirals(200, rng=rng)
        histogram = dataset.label_histogram()
        assert histogram.tolist() == [100, 100]
        assert dataset.features.shape == (200, 2)

    def test_not_linearly_separable(self, rng):
        from repro.fl.linear import SoftmaxRegression
        from repro.fl.optimizer import SGD

        dataset = make_two_spirals(400, noise=0.05, rng=rng)
        model = SoftmaxRegression(2, 2, seed=0)
        optimizer = SGD(0.5)
        params = model.get_params()
        for _ in range(300):
            model.set_params(params)
            _, grad = model.loss_and_grad(dataset.features, dataset.labels)
            params = optimizer.step(params, grad)
        model.set_params(params)
        assert model.accuracy(dataset.features, dataset.labels) < 0.75


class TestTrainTestSplit:
    def test_partition_sizes(self, rng):
        dataset = make_gaussian_mixture(100, 3, 2, rng=rng)
        train, test = train_test_split(dataset, 0.25, rng)
        assert train.num_samples == 75
        assert test.num_samples == 25

    def test_no_overlap_and_full_cover(self, rng):
        dataset = Dataset(
            np.arange(40).reshape(20, 2).astype(float),
            np.zeros(20, dtype=int) , 2,
        )
        train, test = train_test_split(dataset, 0.3, rng)
        train_rows = {tuple(row) for row in train.features}
        test_rows = {tuple(row) for row in test.features}
        assert not train_rows & test_rows
        assert len(train_rows | test_rows) == 20

    def test_rejects_bad_fraction(self, rng):
        dataset = make_gaussian_mixture(10, 2, 2, rng=rng)
        with pytest.raises(ValueError):
            train_test_split(dataset, 0.0, rng)
        with pytest.raises(ValueError):
            train_test_split(dataset, 1.0, rng)
