"""Compressed and adversarial updates through the batched update path.

The columnar engine must not change what reaches the global model: a
federation with compressors and Byzantine wrappers trained through
:class:`~repro.fl.batch.VectorizedLocalSolver` +
``FLServer.apply_updates(UpdateBatch)`` must produce the same aggregate as
the scalar path (per-client ``train`` + ``apply_updates(list)``), under
FedAvg and the robust aggregation rules alike.
"""

import numpy as np
import pytest

from repro.fl.aggregation import coordinate_median, stack_updates, trimmed_mean
from repro.fl.attacks import (
    GaussianNoiseClient,
    LabelFlippingClient,
    UpdateScalingClient,
)
from repro.fl.batch import SequentialLocalSolver, UpdateBatch, VectorizedLocalSolver
from repro.fl.client import FLClient
from repro.fl.compression import Compressor
from repro.fl.datasets import make_gaussian_mixture
from repro.fl.linear import SoftmaxRegression
from repro.fl.optimizer import SGD
from repro.fl.server import FLServer

TOL = dict(rtol=1e-9, atol=1e-12)


def build_federation(*, compressed=False, byzantine=False, seed=0):
    """(server, clients); identical seeds rebuild identical federations."""
    rng = np.random.default_rng(seed)
    data = make_gaussian_mixture(520, 6, 4, rng=rng)
    test = data.subset(np.arange(120))
    clients = []
    for i in range(10):
        shard = np.arange(120 + i * 40, 160 + i * 40)
        kwargs = dict(
            local_steps=3,
            batch_size=16,
            rng=np.random.default_rng(300 + i),
        )
        if compressed and i % 2 == 0:
            kwargs["compressor"] = Compressor(
                top_k=10, bits=4, rng=np.random.default_rng(900 + i)
            )
        cls = FLClient
        extra = {}
        if byzantine:
            if i == 7:
                cls = LabelFlippingClient
            elif i == 8:
                cls, extra = UpdateScalingClient, {"scale": -5.0}
            elif i == 9:
                cls, extra = GaussianNoiseClient, {"noise_scale": 0.5}
        clients.append(
            cls(
                i,
                data.subset(shard),
                SoftmaxRegression(6, 4, seed=i + 1),
                lambda: SGD(0.2),
                **kwargs,
                **extra,
            )
        )
    server = FLServer(SoftmaxRegression(6, 4, seed=0), test)
    return server, clients


@pytest.mark.parametrize("compressed", [False, True], ids=["plain", "compressed"])
@pytest.mark.parametrize("byzantine", [False, True], ids=["honest", "byzantine"])
def test_batched_round_matches_scalar_round(compressed, byzantine):
    """Full round: train + aggregate, batched vs scalar, identical params."""
    seq_server, seq_clients = build_federation(
        compressed=compressed, byzantine=byzantine
    )
    vec_server, vec_clients = build_federation(
        compressed=compressed, byzantine=byzantine
    )
    vec_solver = VectorizedLocalSolver()
    for _ in range(3):
        seq_updates = [
            client.train(seq_server.global_params()) for client in seq_clients
        ]
        seq_params = seq_server.apply_updates(seq_updates)
        vec_batch = vec_solver.train(vec_clients, vec_server.global_params())
        vec_params = vec_server.apply_updates(vec_batch)
        np.testing.assert_allclose(vec_params, seq_params, **TOL)


def test_update_batch_aggregates_like_update_list():
    """apply_updates(UpdateBatch) == apply_updates(list) on the same deltas."""
    server_a, clients = build_federation(compressed=True)
    server_b, _ = build_federation(compressed=True)
    batch = SequentialLocalSolver().train(clients, server_a.global_params())
    params_list = server_a.apply_updates(batch.updates())
    params_batch = server_b.apply_updates(batch)
    np.testing.assert_array_equal(params_batch, params_list)


@pytest.mark.parametrize("rule", [trimmed_mean, coordinate_median])
def test_robust_aggregation_sees_identical_update_matrix(rule):
    """Robust rules get the same stacked matrix from either path."""
    _, clients = build_federation(byzantine=True)
    global_params = SoftmaxRegression(6, 4, seed=0).get_params()
    batch = VectorizedLocalSolver().train(clients, global_params)
    _, scalar_clients = build_federation(byzantine=True)
    scalar_updates = [c.train(global_params) for c in scalar_clients]
    weights = np.array([u.num_samples for u in scalar_updates], dtype=float)
    np.testing.assert_allclose(
        rule(stack_updates(batch.deltas), batch.num_samples.astype(float)),
        rule(stack_updates([u.delta for u in scalar_updates]), weights),
        **TOL,
    )


def test_compressed_rows_are_actually_sparse():
    """The compressor really ran inside the batched path (top-k kept)."""
    _, clients = build_federation(compressed=True)
    global_params = SoftmaxRegression(6, 4, seed=0).get_params()
    batch = VectorizedLocalSolver().train(clients, global_params)
    for row, client in enumerate(clients):
        nonzero = int(np.count_nonzero(batch.deltas[row]))
        if client.compressor is not None:
            assert nonzero <= 10
        else:
            assert nonzero > 10


def test_stack_updates_accepts_matrix_and_validates():
    matrix = np.arange(12, dtype=float).reshape(3, 4)
    assert stack_updates(matrix) is matrix
    with pytest.raises(ValueError):
        stack_updates(np.empty((0, 4)))
    with pytest.raises(ValueError):
        stack_updates(np.zeros(4))
    with pytest.raises(ValueError):
        stack_updates([])


def test_empty_update_batch_skips_round():
    server, _ = build_federation()
    before = server.global_params()
    after = server.apply_updates(
        UpdateBatch(
            client_ids=(),
            deltas=np.empty((0, before.size)),
            num_samples=np.empty(0, dtype=int),
            final_losses=np.empty(0),
        )
    )
    np.testing.assert_array_equal(before, after)
