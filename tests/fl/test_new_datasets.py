"""Tests for the rotated-image and sensor-stream dataset generators."""

import numpy as np
import pytest

from repro.fl.datasets import make_rotated_client_images, make_sensor_streams


class TestRotatedClientImages:
    def test_shapes(self, rng):
        shards, test = make_rotated_client_images(6, 40, num_classes=5, rng=rng)
        assert len(shards) == 6
        for shard in shards:
            assert shard.num_samples == 40
            assert shard.num_classes == 5
            assert shard.image_shape == (8, 8)
        assert test.num_samples >= 100

    def test_rotation_is_per_client(self, rng):
        """Clients 0 and 4 share rotation 0; client 1 differs from client 0."""
        shards, _ = make_rotated_client_images(
            8, 200, num_classes=4, noise=0.0, rng=rng
        )

        def class_mean(shard, label):
            return shard.features[shard.labels == label].mean(axis=0)

        same_rotation = np.linalg.norm(class_mean(shards[0], 0) - class_mean(shards[4], 0))
        different_rotation = np.linalg.norm(
            class_mean(shards[0], 0) - class_mean(shards[1], 0)
        )
        assert same_rotation < 1e-9
        assert different_rotation > 0.1

    def test_rejects_non_square(self, rng):
        with pytest.raises(ValueError, match="square"):
            make_rotated_client_images(2, 10, shape=(8, 10), rng=rng)

    def test_rejects_bad_counts(self, rng):
        with pytest.raises(ValueError):
            make_rotated_client_images(0, 10, rng=rng)


class TestSensorStreams:
    def test_shapes(self, rng):
        shards, test = make_sensor_streams(5, 100, num_features=4, rng=rng)
        assert len(shards) == 5
        assert all(s.num_classes == 2 for s in shards)
        assert test.num_features == 4

    def test_site_boundaries_disagree(self, rng):
        """With large spread, two sites label the same points differently."""
        from repro.fl.linear import SoftmaxRegression
        from repro.fl.optimizer import SGD

        shards, _ = make_sensor_streams(
            2, 800, num_features=4, boundary_spread=2.0, noise=0.05, rng=rng
        )

        def fit(shard):
            model = SoftmaxRegression(4, 2, seed=0)
            optimizer = SGD(0.5)
            params = model.get_params()
            for _ in range(200):
                model.set_params(params)
                _, grad = model.loss_and_grad(shard.features, shard.labels)
                params = optimizer.step(params, grad)
            model.set_params(params)
            return model

        model_a = fit(shards[0])
        # Model trained on site A performs worse on site B than on its own.
        own = model_a.accuracy(shards[0].features, shards[0].labels)
        other = model_a.accuracy(shards[1].features, shards[1].labels)
        assert own > other + 0.05

    def test_global_task_learnable_from_all_data(self, rng):
        from repro.fl.linear import SoftmaxRegression
        from repro.fl.optimizer import SGD

        shards, test = make_sensor_streams(
            6, 300, num_features=4, boundary_spread=0.5, noise=0.1, rng=rng
        )
        features = np.concatenate([s.features for s in shards])
        labels = np.concatenate([s.labels for s in shards])
        model = SoftmaxRegression(4, 2, seed=0)
        optimizer = SGD(0.5)
        params = model.get_params()
        for _ in range(300):
            model.set_params(params)
            _, grad = model.loss_and_grad(features, labels)
            params = optimizer.step(params, grad)
        model.set_params(params)
        assert model.accuracy(test.features, test.labels) > 0.8

    def test_deterministic(self):
        a_shards, a_test = make_sensor_streams(3, 50, rng=np.random.default_rng(4))
        b_shards, b_test = make_sensor_streams(3, 50, rng=np.random.default_rng(4))
        assert np.array_equal(a_shards[0].features, b_shards[0].features)
        assert np.array_equal(a_test.labels, b_test.labels)
