"""Tests for repro.fl.aggregation."""

import numpy as np
import pytest

from repro.fl.aggregation import (
    coordinate_median,
    stack_updates,
    trimmed_mean,
    weighted_mean,
)


class TestStackUpdates:
    def test_stacks(self):
        stacked = stack_updates([np.zeros(3), np.ones(3)])
        assert stacked.shape == (2, 3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            stack_updates([])

    def test_rejects_matrices(self):
        with pytest.raises(ValueError):
            stack_updates([np.zeros((2, 2))])


class TestWeightedMean:
    def test_matches_manual_computation(self):
        stacked = np.array([[1.0, 0.0], [3.0, 2.0]])
        out = weighted_mean(stacked, np.array([1.0, 3.0]))
        assert np.allclose(out, [0.25 * 1 + 0.75 * 3, 0.75 * 2])

    def test_identical_updates_fixed_point(self):
        update = np.array([0.5, -1.0, 2.0])
        stacked = np.stack([update] * 4)
        out = weighted_mean(stacked, np.array([1.0, 2.0, 3.0, 4.0]))
        assert np.allclose(out, update)

    def test_weight_validation(self):
        stacked = np.zeros((2, 3))
        with pytest.raises(ValueError):
            weighted_mean(stacked, np.array([1.0]))
        with pytest.raises(ValueError):
            weighted_mean(stacked, np.array([-1.0, 2.0]))
        with pytest.raises(ValueError):
            weighted_mean(stacked, np.array([0.0, 0.0]))


class TestTrimmedMean:
    def test_removes_outliers(self):
        stacked = np.array([[0.0], [0.1], [0.2], [0.1], [100.0]])
        weights = np.ones(5)
        out = trimmed_mean(stacked, weights, trim_fraction=0.2)
        assert out[0] < 1.0  # the 100 outlier trimmed away

    def test_degrades_to_mean_for_few_clients(self):
        stacked = np.array([[1.0], [3.0]])
        out = trimmed_mean(stacked, np.ones(2), trim_fraction=0.4)
        assert out[0] == pytest.approx(2.0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            trimmed_mean(np.zeros((2, 1)), np.ones(2), trim_fraction=0.5)


class TestCoordinateMedian:
    def test_median_per_coordinate(self):
        stacked = np.array([[0.0, 5.0], [1.0, 6.0], [100.0, 7.0]])
        out = coordinate_median(stacked, np.ones(3))
        assert out.tolist() == [1.0, 6.0]

    def test_robust_to_one_byzantine(self):
        honest = np.zeros((4, 3))
        byzantine = np.full((1, 3), 1e6)
        stacked = np.concatenate([honest, byzantine])
        out = coordinate_median(stacked, np.ones(5))
        assert np.all(np.abs(out) < 1.0)
